"""Immutable 2D points for device and charger placement.

The whole library works on a planar field, so a tiny dedicated point type
keeps position arithmetic explicit and unit-checked instead of spreading
bare ``(x, y)`` tuples everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from ..numeric import is_exact_zero

__all__ = ["Point", "centroid"]


@dataclass(frozen=True, order=True)
class Point:
    """A point in the plane, in meters.

    Frozen so points can be dictionary keys and shared between model objects
    without defensive copying.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to *other*, in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to *other*; used by grid-constrained mobility models."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def towards(self, other: "Point", distance: float) -> "Point":
        """Return the point *distance* meters from ``self`` on the segment to *other*.

        If *distance* exceeds the separation, returns *other* (travel never
        overshoots its destination).  A zero-length segment returns ``self``.
        """
        total = self.distance_to(other)
        if is_exact_zero(total) or distance >= total:
            return other
        if distance <= 0.0:
            return self
        frac = distance / total
        return Point(self.x + frac * (other.x - self.x), self.y + frac * (other.y - self.y))

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` for interop with numpy and plotting code."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of *points*.

    Used by rendezvous planners to propose a meeting location for a group.
    Raises ``ValueError`` on an empty iterable: the centroid of nothing is
    undefined and silently returning the origin would hide bugs.
    """
    xs, ys, n = 0.0, 0.0, 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid() of an empty point collection is undefined")
    return Point(xs / n, ys / n)
