"""Position generators for devices and chargers.

The paper's simulations deploy devices and chargers over a square field;
its field experiment uses a small fixed topology.  This module provides the
samplers the workload generators build on:

- :func:`uniform_deployment` — i.i.d. uniform positions (the simulation
  default in this literature);
- :func:`cluster_deployment` — Gaussian clusters, modelling sensor hot-spots
  where cooperation is most profitable;
- :func:`grid_deployment` — an evenly spaced grid, the usual choice for
  charger placement so that service coverage is uniform;
- :func:`perimeter_deployment` — positions along the field boundary,
  modelling chargers installed on walls/fences of a monitored area.

All samplers take an explicit RNG (see :mod:`repro.rng`) and return plain
lists of :class:`~repro.geometry.point.Point`.
"""

from __future__ import annotations

import math
from typing import List


from ..errors import ConfigurationError
from ..rng import RandomState, ensure_rng
from .field import Field
from .point import Point

__all__ = [
    "uniform_deployment",
    "cluster_deployment",
    "grid_deployment",
    "perimeter_deployment",
]


def _check_count(n: int) -> None:
    if n < 0:
        raise ConfigurationError(f"cannot deploy a negative number of points: {n}")


def uniform_deployment(field: Field, n: int, rng: RandomState = None) -> List[Point]:
    """Sample *n* positions i.i.d. uniformly over *field*."""
    _check_count(n)
    gen = ensure_rng(rng)
    xs = gen.uniform(0.0, field.width, size=n)
    ys = gen.uniform(0.0, field.height, size=n)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def cluster_deployment(
    field: Field,
    n: int,
    n_clusters: int = 3,
    spread: float = 0.08,
    rng: RandomState = None,
) -> List[Point]:
    """Sample *n* positions from *n_clusters* Gaussian hot-spots.

    Cluster centers are drawn uniformly over the field; each point picks a
    cluster uniformly and adds isotropic Gaussian noise with standard
    deviation ``spread * min(width, height)``.  Samples are clamped to the
    field so the deployment is always feasible.
    """
    _check_count(n)
    if n_clusters <= 0:
        raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
    if spread < 0:
        raise ConfigurationError(f"spread must be nonnegative, got {spread}")
    gen = ensure_rng(rng)
    centers = uniform_deployment(field, n_clusters, gen)
    sigma = spread * min(field.width, field.height)
    points = []
    for _ in range(n):
        c = centers[int(gen.integers(0, n_clusters))]
        raw = Point(
            float(c.x + gen.normal(0.0, sigma)),
            float(c.y + gen.normal(0.0, sigma)),
        )
        points.append(field.clamp(raw))
    return points


def grid_deployment(field: Field, n: int) -> List[Point]:
    """Place *n* points on a near-square grid covering *field*.

    The grid has ``ceil(sqrt(n))`` columns, with cells centered so no point
    sits on the boundary.  Deterministic — the canonical charger layout.
    """
    _check_count(n)
    if n == 0:
        return []
    cols = math.ceil(math.sqrt(n))
    rows = math.ceil(n / cols)
    points = []
    for k in range(n):
        r, c = divmod(k, cols)
        x = (c + 0.5) * field.width / cols
        y = (r + 0.5) * field.height / rows
        points.append(Point(x, y))
    return points


def perimeter_deployment(field: Field, n: int) -> List[Point]:
    """Place *n* points evenly along the field boundary, clockwise from origin."""
    _check_count(n)
    if n == 0:
        return []
    perimeter = 2.0 * (field.width + field.height)
    points = []
    for k in range(n):
        s = (k + 0.5) * perimeter / n
        if s < field.width:
            points.append(Point(s, 0.0))
        elif s < field.width + field.height:
            points.append(Point(field.width, s - field.width))
        elif s < 2.0 * field.width + field.height:
            points.append(Point(2.0 * field.width + field.height - s, field.height))
        else:
            points.append(Point(0.0, perimeter - s))
    return points
