"""Vectorised distance computations between device and charger layouts.

Solvers that repeatedly evaluate group costs need all device-to-charger
distances up front; computing them once as a dense matrix keeps the inner
loops of CCSA/CCSGA free of per-pair trigonometry.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .point import Point

__all__ = ["distance_matrix", "pairwise_distances", "nearest_index"]


def _as_array(points: Sequence[Point]) -> np.ndarray:
    return np.array([(p.x, p.y) for p in points], dtype=float).reshape(-1, 2)


def distance_matrix(sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
    """Return the ``len(sources) x len(targets)`` Euclidean distance matrix."""
    a = _as_array(sources)
    b = _as_array(targets)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Symmetric distance matrix among *points* (zero diagonal)."""
    return distance_matrix(points, points)


def nearest_index(source: Point, targets: Sequence[Point]) -> int:
    """Index of the target closest to *source*.

    Raises ``ValueError`` for an empty target list — the caller is asking
    for a nearest charger that does not exist.
    """
    if not targets:
        raise ValueError("nearest_index() requires at least one target")
    d = distance_matrix([source], targets)[0]
    return int(np.argmin(d))
