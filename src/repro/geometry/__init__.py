"""Planar geometry substrate: points, fields, deployments, distances."""

from .deployment import (
    cluster_deployment,
    grid_deployment,
    perimeter_deployment,
    uniform_deployment,
)
from .distance import distance_matrix, nearest_index, pairwise_distances
from .field import Field
from .point import Point, centroid

__all__ = [
    "Point",
    "centroid",
    "Field",
    "uniform_deployment",
    "cluster_deployment",
    "grid_deployment",
    "perimeter_deployment",
    "distance_matrix",
    "pairwise_distances",
    "nearest_index",
]
