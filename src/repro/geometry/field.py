"""The rectangular deployment field.

A :class:`Field` is the spatial boundary of one CCS scenario: devices and
chargers live inside it, deployment generators sample positions from it,
and the testbed simulator uses it to bound node movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .point import Point

__all__ = ["Field"]


@dataclass(frozen=True)
class Field:
    """An axis-aligned rectangular field ``[0, width] × [0, height]`` in meters."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"field dimensions must be positive, got {self.width} x {self.height}"
            )

    @classmethod
    def square(cls, side: float) -> "Field":
        """A square field of the given *side* length (the paper-style default)."""
        return cls(side, side)

    @property
    def area(self) -> float:
        """Field area in square meters."""
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        """Length of the field diagonal — the maximum possible travel distance."""
        return (self.width**2 + self.height**2) ** 0.5

    @property
    def center(self) -> Point:
        """Geometric center of the field."""
        return Point(self.width / 2.0, self.height / 2.0)

    def contains(self, point: Point) -> bool:
        """True if *point* lies inside the field (boundary inclusive)."""
        return 0.0 <= point.x <= self.width and 0.0 <= point.y <= self.height

    def clamp(self, point: Point) -> Point:
        """Project *point* onto the field, clipping each coordinate to bounds.

        The testbed simulator uses this so that noisy movement never carries
        a node outside the deployment area.
        """
        return Point(
            min(max(point.x, 0.0), self.width),
            min(max(point.y, 0.0), self.height),
        )
