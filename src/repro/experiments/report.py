"""Plain-text rendering of experiment results.

The reproduction reports tables and figure-series as aligned text — the
form EXPERIMENTS.md and the benchmark console output use.  Rendering is
separated from experiment logic so tests can assert on numbers without
parsing strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["SeriesResult", "TableResult", "render_series", "render_table"]


@dataclass
class SeriesResult:
    """A figure: one x-axis and one y-series per algorithm/configuration."""

    name: str
    title: str
    x_label: str
    x_values: Sequence[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, label: str, values: Sequence[float]) -> None:
        """Attach a named series; must align with the x axis."""
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points for "
                f"{len(self.x_values)} x values"
            )
        self.series[label] = values


@dataclass
class TableResult:
    """A table: a header row and uniform data rows of strings."""

    name: str
    title: str
    header: Sequence[str]
    rows: List[Sequence[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row, formatting floats to 4 significant digits."""
        formatted = [
            f"{c:.4g}" if isinstance(c, float) else str(c) for c in cells
        ]
        if len(formatted) != len(self.header):
            raise ValueError(
                f"row has {len(formatted)} cells for {len(self.header)} columns"
            )
        self.rows.append(formatted)


def _render_grid(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_series(result: SeriesResult, precision: int = 2) -> str:
    """Render a figure-series as an aligned text table (x column first)."""
    header = [result.x_label] + list(result.series)
    rows = []
    for k, x in enumerate(result.x_values):
        row = [f"{x:g}"]
        for label in result.series:
            row.append(f"{result.series[label][k]:.{precision}f}")
        rows.append(row)
    return f"{result.title}\n{_render_grid(header, rows)}"


def render_table(result: TableResult) -> str:
    """Render a table result as aligned text."""
    return f"{result.title}\n{_render_grid(result.header, result.rows)}"
