"""ASCII line charts for figure series.

Matplotlib is unavailable in offline reproduction environments, so the
harness renders figures as terminal plots: each series gets a glyph,
points are placed on a character canvas with linear x/y scaling, and the
legend maps glyphs back to algorithms.  Intended for the CLI and bench
output next to the exact numeric tables from :mod:`.report`.
"""

from __future__ import annotations

import math
from typing import List

from .report import SeriesResult

__all__ = ["ascii_plot"]

_GLYPHS = "ox+*#@%&"


def _finite(values: List[float]) -> List[float]:
    return [v for v in values if not math.isnan(v) and not math.isinf(v)]


def ascii_plot(result: SeriesResult, width: int = 64, height: int = 16) -> str:
    """Render *result* as an ASCII chart with axes and a legend.

    NaN points (e.g. OPT beyond its tractable range) are simply skipped.
    Raises ``ValueError`` if there is nothing finite to plot.
    """
    if width < 16 or height < 4:
        raise ValueError(f"canvas too small: {width}x{height}")
    if not result.series:
        raise ValueError("nothing to plot: result has no series")

    xs = [float(x) for x in result.x_values]
    all_y = _finite([y for ys in result.series.values() for y in ys])
    if not all_y or not xs:
        raise ValueError("nothing finite to plot")

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, glyph: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        canvas[height - 1 - row][col] = glyph

    legend = []
    for k, (label, ys) in enumerate(result.series.items()):
        glyph = _GLYPHS[k % len(_GLYPHS)]
        legend.append(f"{glyph} {label}")
        for x, y in zip(xs, ys):
            if math.isnan(y) or math.isinf(y):
                continue
            put(x, y, glyph)

    y_top = f"{y_hi:.4g}"
    y_bot = f"{y_lo:.4g}"
    margin = max(len(y_top), len(y_bot))
    lines = [result.title]
    for r, row in enumerate(canvas):
        prefix = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{prefix:>{margin}} |{''.join(row)}")
    lines.append(f"{'':>{margin}} +{'-' * width}")
    x_axis = f"{x_lo:.4g}".ljust(width - len(f"{x_hi:.4g}")) + f"{x_hi:.4g}"
    lines.append(f"{'':>{margin}}  {x_axis}")
    lines.append(f"{'':>{margin}}  {result.x_label}   [{',  '.join(legend)}]")
    return "\n".join(lines)
