"""ASCII maps of deployments and schedules.

Renders a bird's-eye view of an instance on a character grid: chargers as
uppercase letters, devices as the lowercase letter of the charger their
session was assigned to (or ``.`` when no schedule is given).  One glance
shows whether a scheduler formed geographically sensible coalitions —
the debugging view every example and bug report wants.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import CCSInstance, Schedule

__all__ = ["field_map"]

_CHARGER_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def field_map(
    instance: CCSInstance,
    schedule: Optional[Schedule] = None,
    width: int = 60,
    height: int = 24,
) -> str:
    """Render *instance* (and optionally *schedule*) as an ASCII map.

    Uses the instance's field when present, otherwise the bounding box of
    all positions.  Chargers overwrite devices on collisions (they are the
    landmarks).  Raises ``ValueError`` for canvases too small to be
    legible or for more chargers than glyphs.
    """
    if width < 10 or height < 5:
        raise ValueError(f"canvas too small: {width}x{height}")
    if instance.n_chargers > len(_CHARGER_GLYPHS):
        raise ValueError(
            f"cannot label {instance.n_chargers} chargers with "
            f"{len(_CHARGER_GLYPHS)} glyphs"
        )

    if instance.field_area is not None:
        x0, y0 = 0.0, 0.0
        x1, y1 = instance.field_area.width, instance.field_area.height
    else:
        xs = [p.x for p in (
            [d.position for d in instance.devices]
            + [c.position for c in instance.chargers]
        )]
        ys = [p.y for p in (
            [d.position for d in instance.devices]
            + [c.position for c in instance.chargers]
        )]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    canvas: List[List[str]] = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, glyph: str) -> None:
        col = round((x - x0) / (x1 - x0) * (width - 1))
        row = round((y - y0) / (y1 - y0) * (height - 1))
        canvas[height - 1 - row][col] = glyph

    assigned = {}
    if schedule is not None:
        for session in schedule.sessions:
            for i in session.members:
                assigned[i] = session.charger

    for i, device in enumerate(instance.devices):
        if i in assigned:
            glyph = _CHARGER_GLYPHS[assigned[i]].lower()
        else:
            glyph = "."
        put(device.position.x, device.position.y, glyph)
    for j, charger in enumerate(instance.chargers):
        put(charger.position.x, charger.position.y, _CHARGER_GLYPHS[j])

    border = "+" + "-" * width + "+"
    lines = [border]
    lines.extend("|" + "".join(row) + "|" for row in canvas)
    lines.append(border)

    legend = ", ".join(
        f"{_CHARGER_GLYPHS[j]}={c.charger_id}" for j, c in enumerate(instance.chargers)
    )
    lines.append(f"chargers: {legend}")
    lines.append(
        "devices: lowercase letter = assigned charger"
        if schedule is not None
        else "devices: ."
    )
    return "\n".join(lines)
