"""The evaluation figures (Figs 5–12 of the reconstructed evaluation).

Each function regenerates one figure as a :class:`SeriesResult`; the
matching benchmark in ``benchmarks/`` runs it and prints the series, and
EXPERIMENTS.md records the observed shape against the paper's claims.
All functions take ``trials``/``seed`` so benchmarks can run quickly while
the CLI runs full-size sweeps, plus an optional ``executor`` — each
``(sweep value, trial)`` point is one independent
:class:`~repro.experiments.exec.Task`, so figures parallelize and cache
through the ambient executor (see docs/EXECUTION.md).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads import DEFAULT_SPEC, WorkloadSpec
from .exec import Executor, Task, resolve_executor, spec_to_params
from .report import SeriesResult
from .sweep import sweep_costs, sweep_runtime

__all__ = [
    "fig5_cost_vs_devices",
    "fig6_cost_vs_chargers",
    "fig7_cost_vs_base_price",
    "fig8_cost_vs_field_side",
    "fig9_runtime",
    "fig10_convergence",
    "fig11_sharing_fairness",
    "fig12_ablation_tariff",
    "fig12_ablation_capacity",
]

#: The cost-sharing schemes compared in Fig 11 (see exec.kinds.SCHEME_NAMES).
_FIG11_SCHEMES = ("egalitarian", "proportional", "shapley")


def fig5_cost_vs_devices(
    values: Sequence[int] = (10, 20, 40, 60, 80, 100),
    trials: int = 3,
    seed: int = 5,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Comprehensive cost vs number of devices (CCSA / CCSGA / NCA)."""
    return sweep_costs(
        "fig5",
        "Fig 5: comprehensive cost vs number of devices",
        DEFAULT_SPEC,
        "n_devices",
        list(values),
        trials=trials,
        seed=seed,
        x_label="n",
        executor=executor,
    )


def fig6_cost_vs_chargers(
    values: Sequence[int] = (2, 4, 6, 9, 12, 16),
    trials: int = 3,
    seed: int = 6,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Comprehensive cost vs number of chargers."""
    return sweep_costs(
        "fig6",
        "Fig 6: comprehensive cost vs number of chargers",
        DEFAULT_SPEC,
        "n_chargers",
        list(values),
        trials=trials,
        seed=seed,
        x_label="m",
        executor=executor,
    )


def fig7_cost_vs_base_price(
    values: Sequence[float] = (0.0, 10.0, 20.0, 40.0, 60.0, 80.0),
    trials: int = 3,
    seed: int = 7,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Comprehensive cost vs session base price.

    The base fee is the cooperation incentive: at zero, grouping only saves
    via the volume discount; as it grows, NCA pays it per device while the
    cooperative algorithms amortize it per group — the gap should widen.
    """
    return sweep_costs(
        "fig7",
        "Fig 7: comprehensive cost vs session base price",
        DEFAULT_SPEC.with_(heterogeneous_prices=False),
        "base_price",
        list(values),
        trials=trials,
        seed=seed,
        x_label="base_price",
        executor=executor,
    )


def fig8_cost_vs_field_side(
    values: Sequence[float] = (100.0, 200.0, 400.0, 600.0, 800.0, 1000.0),
    trials: int = 3,
    seed: int = 8,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Comprehensive cost vs field side length.

    Larger fields raise moving costs; gathering a group at one pad gets
    more expensive, so cooperation's advantage should shrink (but not
    invert).
    """
    return sweep_costs(
        "fig8",
        "Fig 8: comprehensive cost vs field side length",
        DEFAULT_SPEC,
        "side",
        list(values),
        trials=trials,
        seed=seed,
        x_label="side_m",
        executor=executor,
    )


def fig9_runtime(
    values: Sequence[int] = (10, 20, 40, 60, 80, 100),
    trials: int = 2,
    seed: int = 9,
    include_optimal_upto: int = 14,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Wall-clock runtime vs number of devices (the CCSGA-speed claim).

    OPT is exponential, so its series is only measured up to
    *include_optimal_upto* devices and reported as ``nan`` beyond.
    """
    executor = resolve_executor(executor)
    result = sweep_runtime(
        "fig9",
        "Fig 9: solver runtime (seconds) vs number of devices",
        DEFAULT_SPEC,
        "n_devices",
        list(values),
        trials=trials,
        seed=seed,
        x_label="n",
        executor=executor,
    )
    opt_values = [n for n in values if n <= include_optimal_upto]
    tasks = [
        Task(
            kind="point_runtime",
            params={
                "spec": spec_to_params(DEFAULT_SPEC.with_(n_devices=int(n))),
                "algos": ["OPT"],
            },
            seed=seed,
            trial=t,
        )
        for n in opt_values
        for t in range(trials)
    ]
    points = executor.run(tasks)
    opt_series: List[float] = []
    for n in values:
        if n > include_optimal_upto:
            opt_series.append(float("nan"))
            continue
        k = opt_values.index(n)
        total = sum(points[k * trials + t]["OPT"] for t in range(trials))
        opt_series.append(total / trials)
    result.add("OPT", opt_series)
    return result


def fig10_convergence(
    values: Sequence[int] = (10, 25, 50, 75, 100, 150),
    trials: int = 3,
    seed: int = 10,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """CCSGA switch operations and sweeps to reach the pure Nash equilibrium.

    The abstract's convergence theorem, measured: switches grow gently with
    n, every terminal state certifies as a pure NE, and the potential trace
    is strictly decreasing (asserted inside each task — a failed run raises).
    """
    result = SeriesResult(
        name="fig10",
        title="Fig 10: CCSGA convergence vs number of devices",
        x_label="n",
        x_values=list(values),
    )
    tasks = [
        Task(
            kind="point_convergence",
            params={"spec": spec_to_params(DEFAULT_SPEC.with_(n_devices=int(n)))},
            seed=seed,
            trial=t,
        )
        for n in values
        for t in range(trials)
    ]
    points = resolve_executor(executor).run(tasks)
    switches: List[float] = []
    sweeps: List[float] = []
    for k in range(len(values)):
        s_total = sum(points[k * trials + t]["switches"] for t in range(trials))
        p_total = sum(points[k * trials + t]["sweeps"] for t in range(trials))
        switches.append(s_total / trials)
        sweeps.append(p_total / trials)
    result.add("switches", switches)
    result.add("sweeps", sweeps)
    return result


def fig11_sharing_fairness(
    trials: int = 5,
    seed: int = 11,
    spec: Optional[WorkloadSpec] = None,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Cost-sharing schemes compared on heterogeneous-demand instances.

    For each scheme, runs CCSGA under it and reports the mean member cost
    and the dispersion (std) of the ratio ``share_i / demand_i`` — the
    per-joule price members effectively pay.  Egalitarian sharing spreads
    per-joule prices widely (light users subsidize heavy ones); the
    proportional and Shapley schemes compress them.
    """
    spec = spec or DEFAULT_SPEC.with_(demand_model="lognormal", n_devices=24)
    result = SeriesResult(
        name="fig11",
        title="Fig 11: cost-sharing schemes — mean member cost and per-joule dispersion",
        x_label="metric",
        x_values=[0, 1],  # 0 = mean member cost, 1 = per-joule price std
    )
    tasks = [
        Task(
            kind="point_sharing",
            params={"spec": spec_to_params(spec), "scheme": label},
            seed=seed,
            trial=t,
        )
        for label in _FIG11_SCHEMES
        for t in range(trials)
    ]
    points = resolve_executor(executor).run(tasks)
    for k, label in enumerate(_FIG11_SCHEMES):
        mean_costs = [points[k * trials + t]["mean_cost"] for t in range(trials)]
        dispersions = [points[k * trials + t]["dispersion"] for t in range(trials)]
        result.add(
            label,
            [
                sum(mean_costs) / len(mean_costs),
                sum(dispersions) / len(dispersions) * 1e3,  # m$/J for readability
            ],
        )
    return result


def fig12_ablation_tariff(
    exponents: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0),
    trials: int = 3,
    seed: int = 12,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Ablation: tariff concavity sweep.

    At exponent 1 (linear tariff) cooperation only shares the base fee; as
    the volume discount deepens, cooperative schedules pull further ahead
    of NCA.  Reported as CCSA's percentage saving over NCA per exponent.
    """
    result = SeriesResult(
        name="fig12",
        title="Fig 12: CCSA saving over NCA (%) vs tariff exponent",
        x_label="exponent",
        x_values=list(exponents),
    )
    tasks = [
        Task(
            kind="point_saving",
            params={
                "spec": spec_to_params(DEFAULT_SPEC.with_(tariff_exponent=float(alpha)))
            },
            seed=seed,
            trial=t,
        )
        for alpha in exponents
        for t in range(trials)
    ]
    points = resolve_executor(executor).run(tasks)
    savings: List[float] = []
    for k in range(len(exponents)):
        total = sum(points[k * trials + t]["saving_pct"] for t in range(trials))
        savings.append(total / trials)
    result.add("CCSA saving %", savings)
    return result


def fig12_ablation_capacity(
    capacities: Sequence[int] = (1, 2, 3, 4, 6, 8),
    trials: int = 3,
    seed: int = 13,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Ablation: slot-capacity sweep.

    Capacity 1 forbids cooperation entirely (CCSA degenerates to NCA);
    each extra slot unlocks more sharing, with diminishing returns once
    groups reach their economically natural size.  Reported as CCSA's
    saving over NCA and its mean group size per capacity.
    """
    result = SeriesResult(
        name="fig12b",
        title="Fig 12b: CCSA saving over NCA (%) and mean group size vs slot capacity",
        x_label="capacity",
        x_values=list(capacities),
    )
    tasks = [
        Task(
            kind="point_capacity",
            params={"spec": spec_to_params(DEFAULT_SPEC.with_(capacity=int(cap)))},
            seed=seed,
            trial=t,
        )
        for cap in capacities
        for t in range(trials)
    ]
    points = resolve_executor(executor).run(tasks)
    savings: List[float] = []
    group_sizes: List[float] = []
    for k in range(len(capacities)):
        savings.append(
            sum(points[k * trials + t]["saving_pct"] for t in range(trials)) / trials
        )
        group_sizes.append(
            sum(points[k * trials + t]["mean_group_size"] for t in range(trials)) / trials
        )
    result.add("CCSA saving %", savings)
    result.add("mean group size", group_sizes)
    return result
