"""The evaluation figures (Figs 5–12 of the reconstructed evaluation).

Each function regenerates one figure as a :class:`SeriesResult`; the
matching benchmark in ``benchmarks/`` runs it and prints the series, and
EXPERIMENTS.md records the observed shape against the paper's claims.
All functions take ``trials``/``seed`` so benchmarks can run quickly while
the CLI runs full-size sweeps.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core import (
    EgalitarianSharing,
    ProportionalSharing,
    ShapleySharing,
    ccsa,
    ccsga,
    comprehensive_cost,
    member_costs,
    noncooperation,
    optimal_schedule,
)
from ..game import SelfishSwitch, SociallyAwareSwitch
from ..workloads import DEFAULT_SPEC, LARGE_SCALE_SPEC, WorkloadSpec, generate_instance
from .report import SeriesResult
from .sweep import sweep_costs, sweep_runtime

__all__ = [
    "fig5_cost_vs_devices",
    "fig6_cost_vs_chargers",
    "fig7_cost_vs_base_price",
    "fig8_cost_vs_field_side",
    "fig9_runtime",
    "fig10_convergence",
    "fig11_sharing_fairness",
    "fig12_ablation_tariff",
    "fig12_ablation_capacity",
]


def fig5_cost_vs_devices(
    values: Sequence[int] = (10, 20, 40, 60, 80, 100),
    trials: int = 3,
    seed: int = 5,
) -> SeriesResult:
    """Comprehensive cost vs number of devices (CCSA / CCSGA / NCA)."""
    return sweep_costs(
        "fig5",
        "Fig 5: comprehensive cost vs number of devices",
        DEFAULT_SPEC,
        "n_devices",
        list(values),
        trials=trials,
        seed=seed,
        x_label="n",
    )


def fig6_cost_vs_chargers(
    values: Sequence[int] = (2, 4, 6, 9, 12, 16),
    trials: int = 3,
    seed: int = 6,
) -> SeriesResult:
    """Comprehensive cost vs number of chargers."""
    return sweep_costs(
        "fig6",
        "Fig 6: comprehensive cost vs number of chargers",
        DEFAULT_SPEC,
        "n_chargers",
        list(values),
        trials=trials,
        seed=seed,
        x_label="m",
    )


def fig7_cost_vs_base_price(
    values: Sequence[float] = (0.0, 10.0, 20.0, 40.0, 60.0, 80.0),
    trials: int = 3,
    seed: int = 7,
) -> SeriesResult:
    """Comprehensive cost vs session base price.

    The base fee is the cooperation incentive: at zero, grouping only saves
    via the volume discount; as it grows, NCA pays it per device while the
    cooperative algorithms amortize it per group — the gap should widen.
    """
    return sweep_costs(
        "fig7",
        "Fig 7: comprehensive cost vs session base price",
        DEFAULT_SPEC.with_(heterogeneous_prices=False),
        "base_price",
        list(values),
        trials=trials,
        seed=seed,
        x_label="base_price",
    )


def fig8_cost_vs_field_side(
    values: Sequence[float] = (100.0, 200.0, 400.0, 600.0, 800.0, 1000.0),
    trials: int = 3,
    seed: int = 8,
) -> SeriesResult:
    """Comprehensive cost vs field side length.

    Larger fields raise moving costs; gathering a group at one pad gets
    more expensive, so cooperation's advantage should shrink (but not
    invert).
    """
    return sweep_costs(
        "fig8",
        "Fig 8: comprehensive cost vs field side length",
        DEFAULT_SPEC,
        "side",
        list(values),
        trials=trials,
        seed=seed,
        x_label="side_m",
    )


def fig9_runtime(
    values: Sequence[int] = (10, 20, 40, 60, 80, 100),
    trials: int = 2,
    seed: int = 9,
    include_optimal_upto: int = 14,
) -> SeriesResult:
    """Wall-clock runtime vs number of devices (the CCSGA-speed claim).

    OPT is exponential, so its series is only measured up to
    *include_optimal_upto* devices and reported as ``nan`` beyond.
    """
    result = sweep_runtime(
        "fig9",
        "Fig 9: solver runtime (seconds) vs number of devices",
        DEFAULT_SPEC,
        "n_devices",
        list(values),
        trials=trials,
        seed=seed,
        x_label="n",
    )
    opt_series: List[float] = []
    for n in values:
        if n > include_optimal_upto:
            opt_series.append(float("nan"))
            continue
        spec = DEFAULT_SPEC.with_(n_devices=int(n))
        total = 0.0
        for t in range(trials):
            instance = generate_instance(spec, seed=seed * 1_000_003 + t)
            t0 = time.perf_counter()
            optimal_schedule(instance)
            total += time.perf_counter() - t0
        opt_series.append(total / trials)
    result.add("OPT", opt_series)
    return result


def fig10_convergence(
    values: Sequence[int] = (10, 25, 50, 75, 100, 150),
    trials: int = 3,
    seed: int = 10,
) -> SeriesResult:
    """CCSGA switch operations and sweeps to reach the pure Nash equilibrium.

    The abstract's convergence theorem, measured: switches grow gently with
    n, every terminal state certifies as a pure NE, and the potential trace
    is strictly decreasing (asserted here — a failed run raises).
    """
    result = SeriesResult(
        name="fig10",
        title="Fig 10: CCSGA convergence vs number of devices",
        x_label="n",
        x_values=list(values),
    )
    switches: List[float] = []
    sweeps: List[float] = []
    for n in values:
        spec = DEFAULT_SPEC.with_(n_devices=int(n))
        s_total, p_total = 0.0, 0.0
        for t in range(trials):
            instance = generate_instance(spec, seed=seed * 1_000_003 + t)
            run = ccsga(instance)
            if not run.nash_certified:
                raise AssertionError(f"CCSGA terminal state not a NE at n={n}")
            if not run.trace.is_strictly_decreasing():
                raise AssertionError(f"potential not strictly decreasing at n={n}")
            s_total += run.switches
            p_total += run.sweeps
        switches.append(s_total / trials)
        sweeps.append(p_total / trials)
    result.add("switches", switches)
    result.add("sweeps", sweeps)
    return result


def fig11_sharing_fairness(
    trials: int = 5,
    seed: int = 11,
    spec: Optional[WorkloadSpec] = None,
) -> SeriesResult:
    """Cost-sharing schemes compared on heterogeneous-demand instances.

    For each scheme, runs CCSGA under it and reports the mean member cost
    and the dispersion (std) of the ratio ``share_i / demand_i`` — the
    per-joule price members effectively pay.  Egalitarian sharing spreads
    per-joule prices widely (light users subsidize heavy ones); the
    proportional and Shapley schemes compress them.
    """
    spec = spec or DEFAULT_SPEC.with_(demand_model="lognormal", n_devices=24)
    schemes = {
        "egalitarian": EgalitarianSharing(),
        "proportional": ProportionalSharing(),
        "shapley": ShapleySharing(exact_limit=6, samples=400),
    }
    result = SeriesResult(
        name="fig11",
        title="Fig 11: cost-sharing schemes — mean member cost and per-joule dispersion",
        x_label="metric",
        x_values=[0, 1],  # 0 = mean member cost, 1 = per-joule price std
    )
    for label, scheme in schemes.items():
        mean_costs, dispersions = [], []
        for t in range(trials):
            instance = generate_instance(spec, seed=seed * 1_000_003 + t)
            run = ccsga(instance, scheme=scheme, certify=False)
            costs = member_costs(run.schedule, instance, scheme)
            per_joule = [
                (costs[i] - instance.moving_cost(i, run.schedule.session_of(i).charger))
                / instance.devices[i].demand
                for i in range(instance.n_devices)
            ]
            mean_costs.append(sum(costs.values()) / len(costs))
            mu = sum(per_joule) / len(per_joule)
            dispersions.append(
                (sum((x - mu) ** 2 for x in per_joule) / len(per_joule)) ** 0.5
            )
        result.add(
            label,
            [
                sum(mean_costs) / len(mean_costs),
                sum(dispersions) / len(dispersions) * 1e3,  # m$/J for readability
            ],
        )
    return result


def fig12_ablation_tariff(
    exponents: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0),
    trials: int = 3,
    seed: int = 12,
) -> SeriesResult:
    """Ablation: tariff concavity sweep.

    At exponent 1 (linear tariff) cooperation only shares the base fee; as
    the volume discount deepens, cooperative schedules pull further ahead
    of NCA.  Reported as CCSA's percentage saving over NCA per exponent.
    """
    result = SeriesResult(
        name="fig12",
        title="Fig 12: CCSA saving over NCA (%) vs tariff exponent",
        x_label="exponent",
        x_values=list(exponents),
    )
    savings: List[float] = []
    for alpha in exponents:
        spec = DEFAULT_SPEC.with_(tariff_exponent=float(alpha))
        total = 0.0
        for t in range(trials):
            instance = generate_instance(spec, seed=seed * 1_000_003 + t)
            c_ccsa = comprehensive_cost(ccsa(instance), instance)
            c_nca = comprehensive_cost(noncooperation(instance), instance)
            total += 100.0 * (c_nca - c_ccsa) / c_nca
        savings.append(total / trials)
    result.add("CCSA saving %", savings)
    return result


def fig12_ablation_capacity(
    capacities: Sequence[int] = (1, 2, 3, 4, 6, 8),
    trials: int = 3,
    seed: int = 13,
) -> SeriesResult:
    """Ablation: slot-capacity sweep.

    Capacity 1 forbids cooperation entirely (CCSA degenerates to NCA);
    each extra slot unlocks more sharing, with diminishing returns once
    groups reach their economically natural size.  Reported as CCSA's
    saving over NCA and its mean group size per capacity.
    """
    result = SeriesResult(
        name="fig12b",
        title="Fig 12b: CCSA saving over NCA (%) and mean group size vs slot capacity",
        x_label="capacity",
        x_values=list(capacities),
    )
    savings: List[float] = []
    group_sizes: List[float] = []
    for cap in capacities:
        spec = DEFAULT_SPEC.with_(capacity=int(cap))
        s_total, g_total = 0.0, 0.0
        for t in range(trials):
            instance = generate_instance(spec, seed=seed * 1_000_003 + t)
            sched = ccsa(instance)
            c_ccsa = comprehensive_cost(sched, instance)
            c_nca = comprehensive_cost(noncooperation(instance), instance)
            s_total += 100.0 * (c_nca - c_ccsa) / c_nca
            sizes = sched.group_sizes()
            g_total += sum(sizes) / len(sizes)
        savings.append(s_total / trials)
        group_sizes.append(g_total / trials)
    result.add("CCSA saving %", savings)
    result.add("mean group size", group_sizes)
    return result
