"""Task executors: serial, process-parallel, and the ambient context.

Both executors share one contract: ``run(tasks)`` returns results in task
order, consulting the optional :class:`~repro.experiments.exec.cache.ResultCache`
first and storing every freshly computed result back.  Because tasks are
independent (seeds derive from ``(seed, trial)`` spawn keys, not stream
order) the two executors — and any ``--jobs`` level — produce identical
results; ``tests/test_exec_equivalence.py`` pins that byte-for-byte.

Counters ``computed`` / ``cache_hits`` accumulate per executor instance,
so a resumed run can prove it did not redo finished work.

The *ambient* executor (:func:`get_executor` / :func:`use_executor`) is
how the CLI threads ``--jobs``/``--cache-dir`` through the experiment
registry without changing every figure function's signature; library code
that wants explicit control passes ``executor=`` instead.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from contextlib import contextmanager
from typing import Any, List, Optional, Sequence

from .cache import ResultCache
from .task import Task, execute_task

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "use_executor",
    "resolve_executor",
]


class Executor:
    """Common cache/bookkeeping machinery; subclasses provide ``run``."""

    #: Worker count (1 for the serial executor) — informational.
    jobs: int = 1

    def __init__(self, cache: Optional[ResultCache] = None):
        self.cache = cache
        #: Tasks actually executed (cache misses) over this executor's life.
        self.computed = 0
        #: Tasks answered from the cache over this executor's life.
        self.cache_hits = 0

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        raise NotImplementedError

    def _load_cached(self, task: Task) -> tuple:
        if self.cache is None:
            return False, None
        hit, value = self.cache.load(task)
        if hit:
            self.cache_hits += 1
        return hit, value

    def _record(self, task: Task, result: Any) -> Any:
        self.computed += 1
        if self.cache is not None:
            self.cache.store(task, result)
        return result


class SerialExecutor(Executor):
    """Execute tasks one after another in the current process."""

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        results = []
        for task in tasks:
            hit, value = self._load_cached(task)
            if not hit:
                value = self._record(task, execute_task(task))
            results.append(value)
        return results


class ParallelExecutor(Executor):
    """Execute cache misses on a :class:`ProcessPoolExecutor`.

    Results are cached (in the parent) as soon as each task finishes, so a
    run killed mid-way leaves every completed task behind and a restart
    with the same cache directory resumes instead of recomputing.  A task
    failure re-raises in the parent after letting already-running tasks
    finish (and be cached).
    """

    def __init__(self, jobs: int, cache: Optional[ResultCache] = None):
        super().__init__(cache)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        results: List[Any] = [None] * len(tasks)
        misses = []
        for k, task in enumerate(tasks):
            hit, value = self._load_cached(task)
            if hit:
                results[k] = value
            else:
                misses.append(k)
        if not misses:
            return results

        with ProcessPoolExecutor(max_workers=min(self.jobs, len(misses))) as pool:
            futures = {pool.submit(execute_task, tasks[k]): k for k in misses}
            pending = set(futures)
            failure: Optional[BaseException] = None
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for fut in done:
                    k = futures[fut]
                    exc = fut.exception()
                    if exc is not None:
                        failure = failure or exc
                        continue
                    results[k] = self._record(tasks[k], fut.result())
                if failure is not None:
                    # ccs-lint: ignore[CCS006] -- cancellation order is
                    # immaterial: no result is recorded here, and completed
                    # results are keyed by task index, not arrival order.
                    for fut in pending:
                        fut.cancel()
                    break
            if failure is not None:
                raise failure
        return results


#: Ambient executor stack; the base entry is a plain cache-less serial
#: executor, so library calls outside any context behave exactly like the
#: pre-executor code path.
_AMBIENT: List[Executor] = [SerialExecutor()]


def get_executor() -> Executor:
    """The innermost ambient executor (a cache-less serial one by default)."""
    return _AMBIENT[-1]


@contextmanager
def use_executor(executor: Executor):
    """Make *executor* ambient for the duration of the ``with`` block."""
    _AMBIENT.append(executor)
    try:
        yield executor
    finally:
        _AMBIENT.pop()


def resolve_executor(executor: Optional[Executor]) -> Executor:
    """An explicit executor if given, else the ambient one."""
    return executor if executor is not None else get_executor()
