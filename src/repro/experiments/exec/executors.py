"""Task executors: serial, process-parallel, and the ambient context.

Both executors share one contract: ``run(tasks)`` returns results in task
order, consulting the optional :class:`~repro.experiments.exec.cache.ResultCache`
first and storing every freshly computed result back.  Because tasks are
independent (seeds derive from ``(seed, trial)`` spawn keys, not stream
order) the two executors — and any ``--jobs`` level — produce identical
results; ``tests/test_exec_equivalence.py`` pins that byte-for-byte.

Counters ``computed`` / ``cache_hits`` accumulate per executor instance,
so a resumed run can prove it did not redo finished work.

Failure semantics (see docs/FAULTS.md):

- A task raising inside a worker fails *that task only*.  Every other
  task still runs to completion and is cached; the terminal failures are
  collected and raised at the end as one typed
  :class:`~repro.errors.TaskFailedError` carrying the partial results.
- A worker *dying* mid-task (segfault, ``os._exit``, OOM-kill) breaks the
  process pool; the pool is rebuilt and every task it took down is
  re-enqueued, so a crash domain is one worker, never the run.
- Each task has a retry budget (``retries``) and an optional per-task
  deadline (``task_timeout``, seconds of no pool progress) after which
  stuck workers are terminated and the in-flight attempts charged.
  Waiting between retry waves uses bounded exponential backoff with
  seed-derived jitter — deterministic, never wall-clock-dependent
  (``backoff_base=0`` by default: no sleeping in tests or benchmarks).

The serial executor is deliberately still fail-fast: in-process, the
"worker" *is* the run, so the first exception is the crash — resumability
comes from the cache, which already holds every earlier result.

The *ambient* executor (:func:`get_executor` / :func:`use_executor`) is
how the CLI threads ``--jobs``/``--cache-dir`` through the experiment
registry without changing every figure function's signature; library code
that wants explicit control passes ``executor=`` instead.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence

from ...errors import TaskFailedError
from ...rng import derive_seed
from .cache import ResultCache
from .task import Task, execute_task

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "use_executor",
    "resolve_executor",
]


class Executor:
    """Common cache/bookkeeping machinery; subclasses provide ``run``."""

    #: Worker count (1 for the serial executor) — informational.
    jobs: int = 1

    def __init__(self, cache: Optional[ResultCache] = None):
        self.cache = cache
        #: Tasks actually executed (cache misses) over this executor's life.
        self.computed = 0
        #: Tasks answered from the cache over this executor's life.
        self.cache_hits = 0

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        raise NotImplementedError

    def _load_cached(self, task: Task) -> tuple:
        if self.cache is None:
            return False, None
        hit, value = self.cache.load(task)
        if hit:
            self.cache_hits += 1
        return hit, value

    def _record(self, task: Task, result: Any) -> Any:
        self.computed += 1
        if self.cache is not None:
            self.cache.store(task, result)
        return result


class SerialExecutor(Executor):
    """Execute tasks one after another in the current process."""

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        results = []
        for task in tasks:
            hit, value = self._load_cached(task)
            if not hit:
                value = self._record(task, execute_task(task))
            results.append(value)
        return results


class ParallelExecutor(Executor):
    """Execute cache misses on a :class:`ProcessPoolExecutor`.

    Results are cached (in the parent) as soon as each task finishes, so a
    run killed mid-way leaves every completed task behind and a restart
    with the same cache directory resumes instead of recomputing.

    Parameters
    ----------
    jobs:
        Worker process count.
    retries:
        Re-attempts allowed per task after its first failure (exception,
        worker crash, or timeout) before it is terminal.  ``retries=2``
        means up to three attempts total.
    task_timeout:
        Optional deadline in seconds: if no task completes for this long,
        the in-flight attempts are presumed stuck, their workers are
        terminated, and each charged one attempt.  ``None`` (default)
        waits forever — the historical behavior.
    backoff_base:
        Base delay for exponential backoff between retry waves; wave *a*
        sleeps ``backoff_base · 2^(a-1) · (1 + jitter)`` seconds, capped
        at ``backoff_cap``, with jitter in ``[0, 1)`` derived from
        ``derive_seed(seed, wave)`` — fully deterministic.  The default
        ``0.0`` disables sleeping entirely.
    seed:
        Root of the jitter derivation (unrelated to task seeds).
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).
    """

    def __init__(
        self,
        jobs: int,
        cache: Optional[ResultCache] = None,
        retries: int = 2,
        task_timeout: Optional[float] = None,
        backoff_base: float = 0.0,
        backoff_cap: float = 30.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        super().__init__(cache)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        self.jobs = int(jobs)
        self.retries = int(retries)
        self.task_timeout = task_timeout
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.seed = int(seed)
        self._sleep = sleep

    # -- retry machinery ------------------------------------------------ #

    def backoff_delay(self, wave: int) -> float:
        """Deterministic backoff before retry wave *wave* (1-based)."""
        if self.backoff_base <= 0.0 or wave < 1:
            return 0.0
        jitter = (derive_seed(self.seed, wave) % 1024) / 1024.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (wave - 1)) * (1.0 + jitter))

    def _submit(self, pool: ProcessPoolExecutor, task: Task, index: int) -> Future:
        """Submission hook; fault injectors override to wrap the call."""
        return pool.submit(execute_task, task)

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Kill a pool's worker processes (stuck-task escalation)."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            proc.terminate()

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        results: List[Any] = [None] * len(tasks)
        misses = []
        for k, task in enumerate(tasks):
            hit, value = self._load_cached(task)
            if hit:
                results[k] = value
            else:
                misses.append(k)
        if misses:
            failures = self._run_misses(tasks, misses, results)
            if failures:
                raise TaskFailedError(failures, results)
        return results

    def _run_misses(
        self,
        tasks: Sequence[Task],
        misses: List[int],
        results: List[Any],
    ) -> Dict[int, BaseException]:
        """Run the cache-missing task indices; returns terminal failures.

        Wave loop: submit everything pending, harvest completions as they
        arrive (each cached immediately), classify failures, and carry
        retry-eligible tasks into the next wave.  A broken pool (dead
        worker) or a stalled wave (``task_timeout``) rebuilds the pool;
        ordinary task exceptions do not.
        """
        attempts: Dict[int, int] = {k: 0 for k in misses}
        failures: Dict[int, BaseException] = {}
        queue: List[int] = list(misses)
        wave = 0
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(misses)))
        try:
            while queue:
                if wave > 0:
                    delay = self.backoff_delay(wave)
                    if delay > 0.0:
                        self._sleep(delay)
                wave += 1
                batch, queue = queue, []
                futures: Dict[Future, int] = {}
                for k in batch:
                    attempts[k] += 1
                    futures[self._submit(pool, tasks[k], k)] = k
                pending = set(futures)
                rebuild = False
                while pending:
                    done, pending = wait(
                        pending, timeout=self.task_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # No progress for a whole deadline: the in-flight
                        # attempts are stuck.  Kill the workers; the
                        # resulting BrokenProcessPool futures are charged
                        # below like any other crash.
                        rebuild = True
                        self._terminate_workers(pool)
                        done, pending = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                    for fut in sorted(done, key=lambda f: futures[f]):
                        k = futures[fut]
                        exc = fut.exception()
                        if exc is None:
                            results[k] = self._record(tasks[k], fut.result())
                            continue
                        if isinstance(exc, BrokenProcessPool):
                            rebuild = True
                        if attempts[k] <= self.retries:
                            queue.append(k)
                        else:
                            failures[k] = exc
                if rebuild:
                    # A dead worker poisons the whole pool object (every
                    # outstanding future breaks); isolate the crash domain
                    # by starting a fresh pool for the retry wave.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(
                        max_workers=min(self.jobs, max(1, len(queue)))
                    )
                queue.sort()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return failures


#: Ambient executor stack; the base entry is a plain cache-less serial
#: executor, so library calls outside any context behave exactly like the
#: pre-executor code path.
_AMBIENT: List[Executor] = [SerialExecutor()]


def get_executor() -> Executor:
    """The innermost ambient executor (a cache-less serial one by default)."""
    return _AMBIENT[-1]


@contextmanager
def use_executor(executor: Executor):
    """Make *executor* ambient for the duration of the ``with`` block."""
    _AMBIENT.append(executor)
    try:
        yield executor
    finally:
        _AMBIENT.pop()


def resolve_executor(executor: Optional[Executor]) -> Executor:
    """An explicit executor if given, else the ambient one."""
    return executor if executor is not None else get_executor()
