"""Built-in task kinds: the per-point computations of the evaluation.

Each kind is a pure function of ``(params, seed, trial)`` returning plain
JSON data.  Instance randomness comes from
``derive_seed(seed, trial)`` — a :mod:`repro.rng` spawn key — so a kind's
result is independent of every other task and of execution order.

Algorithms and cost-sharing schemes are referenced *by name* (the
registries below) so tasks stay picklable and fingerprintable; sweeps
with ad-hoc callables fall back to the in-process path in
:mod:`repro.experiments.sweep`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Mapping

from ...rng import derive_seed
from .task import task_kind

__all__ = [
    "ALGORITHM_NAMES",
    "SCHEME_NAMES",
    "perf_timer",
    "spec_to_params",
    "spec_from_params",
]

#: Set (any value) to make :func:`perf_timer` return 0.0 — used by the
#: equivalence suite and the benchmark's byte-identity check to strip
#: wall-clock noise from runtime figures.  Inherited by worker processes.
ZERO_TIMER_ENV = "CCS_BENCH_ZERO_TIMER"


def perf_timer() -> float:
    """``time.perf_counter()`` unless :data:`ZERO_TIMER_ENV` is set."""
    if os.environ.get(ZERO_TIMER_ENV):
        return 0.0
    return time.perf_counter()


def spec_to_params(spec) -> Dict[str, Any]:
    """Serialize a :class:`~repro.workloads.WorkloadSpec` to task params."""
    from dataclasses import asdict

    return asdict(spec)


def spec_from_params(params: Mapping[str, Any]):
    """Rebuild a :class:`~repro.workloads.WorkloadSpec` from task params."""
    from ...workloads import WorkloadSpec

    return WorkloadSpec(**params)


def _ccsga_schedule(instance):
    from ...core import ccsga

    return ccsga(instance, certify=False).schedule


def _algorithm_registry() -> Dict[str, Callable]:
    from ...core import ccsa, noncooperation, optimal_schedule

    return {
        "NCA": noncooperation,
        "CCSA": ccsa,
        "CCSGA": _ccsga_schedule,
        "OPT": optimal_schedule,
    }


#: Algorithm names usable in ``point_costs`` / ``point_runtime`` params.
ALGORITHM_NAMES = ("NCA", "CCSA", "CCSGA", "OPT")


def _scheme_registry() -> Dict[str, Callable[[], Any]]:
    from ...core import EgalitarianSharing, ProportionalSharing, ShapleySharing

    return {
        "egalitarian": EgalitarianSharing,
        "proportional": ProportionalSharing,
        # Fixed configuration: part of the task fingerprint via the name.
        "shapley": lambda: ShapleySharing(exact_limit=6, samples=400),
    }


#: Cost-sharing scheme names usable in ``point_sharing`` params.
SCHEME_NAMES = ("egalitarian", "proportional", "shapley")


def _instance(params: Mapping[str, Any], seed: int, trial: int):
    from ...workloads import generate_instance

    return generate_instance(spec_from_params(params["spec"]), seed=derive_seed(seed, trial))


@task_kind("point_costs")
def point_costs(params: Mapping[str, Any], seed: int, trial: int) -> Dict[str, float]:
    """Comprehensive cost of each named algorithm on one seeded instance."""
    from ...core import comprehensive_cost

    algos = _algorithm_registry()
    instance = _instance(params, seed, trial)
    return {
        name: float(comprehensive_cost(algos[name](instance), instance))
        for name in params["algos"]
    }


@task_kind("point_runtime")
def point_runtime(params: Mapping[str, Any], seed: int, trial: int) -> Dict[str, float]:
    """Wall-clock solver seconds of each named algorithm on one instance."""
    algos = _algorithm_registry()
    instance = _instance(params, seed, trial)
    out = {}
    for name in params["algos"]:
        t0 = perf_timer()
        algos[name](instance)
        out[name] = float(perf_timer() - t0)
    return out


@task_kind("point_convergence")
def point_convergence(params: Mapping[str, Any], seed: int, trial: int) -> Dict[str, float]:
    """CCSGA switch/sweep counts on one instance, with NE certification."""
    from ...core import ccsga

    instance = _instance(params, seed, trial)
    run = ccsga(instance)
    n = instance.n_devices
    if not run.nash_certified:
        raise AssertionError(f"CCSGA terminal state not a NE at n={n}")
    if not run.trace.is_strictly_decreasing():
        raise AssertionError(f"potential not strictly decreasing at n={n}")
    return {"switches": float(run.switches), "sweeps": float(run.sweeps)}


@task_kind("point_sharing")
def point_sharing(params: Mapping[str, Any], seed: int, trial: int) -> Dict[str, float]:
    """Mean member cost and per-joule price dispersion under one scheme."""
    from ...core import ccsga, member_costs

    scheme = _scheme_registry()[params["scheme"]]()
    instance = _instance(params, seed, trial)
    run = ccsga(instance, scheme=scheme, certify=False)
    costs = member_costs(run.schedule, instance, scheme)
    per_joule = [
        (costs[i] - instance.moving_cost(i, run.schedule.session_of(i).charger))
        / instance.devices[i].demand
        for i in range(instance.n_devices)
    ]
    mu = sum(per_joule) / len(per_joule)
    dispersion = (sum((x - mu) ** 2 for x in per_joule) / len(per_joule)) ** 0.5
    return {
        "mean_cost": float(sum(costs.values()) / len(costs)),
        "dispersion": float(dispersion),
    }


@task_kind("point_saving")
def point_saving(params: Mapping[str, Any], seed: int, trial: int) -> Dict[str, float]:
    """CCSA's percentage saving over NCA on one instance."""
    from ...core import ccsa, comprehensive_cost, noncooperation

    instance = _instance(params, seed, trial)
    c_ccsa = comprehensive_cost(ccsa(instance), instance)
    c_nca = comprehensive_cost(noncooperation(instance), instance)
    return {"saving_pct": float(100.0 * (c_nca - c_ccsa) / c_nca)}


@task_kind("point_capacity")
def point_capacity(params: Mapping[str, Any], seed: int, trial: int) -> Dict[str, float]:
    """CCSA saving over NCA plus its mean group size on one instance."""
    from ...core import ccsa, comprehensive_cost, noncooperation

    instance = _instance(params, seed, trial)
    sched = ccsa(instance)
    c_ccsa = comprehensive_cost(sched, instance)
    c_nca = comprehensive_cost(noncooperation(instance), instance)
    sizes = sched.group_sizes()
    return {
        "saving_pct": float(100.0 * (c_nca - c_ccsa) / c_nca),
        "mean_group_size": float(sum(sizes) / len(sizes)),
    }


@task_kind("point_optimality")
def point_optimality(params: Mapping[str, Any], seed: int, trial: int) -> Dict[str, float]:
    """OPT / CCSA / NCA comprehensive costs on one small instance."""
    from ...core import ccsa, comprehensive_cost, noncooperation, optimal_schedule

    instance = _instance(params, seed, trial)
    return {
        "opt": float(comprehensive_cost(optimal_schedule(instance), instance)),
        "ccsa": float(comprehensive_cost(ccsa(instance), instance)),
        "nca": float(comprehensive_cost(noncooperation(instance), instance)),
    }


@task_kind("field_trial")
def field_trial(params: Mapping[str, Any], seed: int, trial: int) -> Dict[str, Any]:
    """One CCSA-vs-NCA paired field trial on the simulated testbed.

    The testbed keys all noise by ``(config seed, round, entity)``
    internally, so the task seed is the config seed verbatim and *trial*
    is unused; one task covers the whole trial.
    """
    from ...core import ccsa, noncooperation
    from ...sim import FieldTrialConfig, compare_field_trial

    config = FieldTrialConfig(rounds=int(params["rounds"]), seed=int(seed))
    results = compare_field_trial({"CCSA": ccsa, "NCA": noncooperation}, config)
    ccsa_res, nca_res = results["CCSA"], results["NCA"]
    return {
        "rounds": [
            {
                "nca_cost": float(nca_round.total_cost),
                "ccsa_cost": float(ccsa_round.total_cost),
                "ccsa_sessions": int(ccsa_round.n_sessions),
                "ccsa_makespan": float(ccsa_round.makespan),
            }
            for nca_round, ccsa_round in zip(nca_res.rounds, ccsa_res.rounds)
        ],
        "nca_mean_cost": float(nca_res.mean_cost),
        "ccsa_mean_cost": float(ccsa_res.mean_cost),
    }
