"""Parallel, resumable experiment execution.

The evaluation decomposes into independent ``(experiment, params, seed,
trial)`` tasks (:mod:`.task`), executed serially or on a process pool
(:mod:`.executors`) behind a content-addressed, checksummed result cache
(:mod:`.cache`).  See ``docs/EXECUTION.md`` for the task model, the
seed-derivation contract, and the cache layout.
"""

from .cache import ResultCache
from .executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    get_executor,
    resolve_executor,
    use_executor,
)
from .kinds import (
    ALGORITHM_NAMES,
    SCHEME_NAMES,
    ZERO_TIMER_ENV,
    perf_timer,
    spec_from_params,
    spec_to_params,
)
from .task import Task, TaskKindError, canonical_json, execute_task, task_kind

__all__ = [
    "ALGORITHM_NAMES",
    "SCHEME_NAMES",
    "ZERO_TIMER_ENV",
    "Executor",
    "ParallelExecutor",
    "ResultCache",
    "SerialExecutor",
    "Task",
    "TaskKindError",
    "canonical_json",
    "execute_task",
    "get_executor",
    "perf_timer",
    "resolve_executor",
    "spec_from_params",
    "spec_to_params",
    "task_kind",
    "use_executor",
]
