"""The experiment task model: small, pure, fingerprintable units of work.

A :class:`Task` names a registered *kind* (the computation), a
JSON-serializable ``params`` mapping (typically a serialized
:class:`~repro.workloads.WorkloadSpec`), a root ``seed``, and a ``trial``
index.  Every sweep point / table cell of the evaluation is one task, so

- tasks are independent: the instance seed is derived from
  ``(seed, trial)`` via :func:`repro.rng.derive_seed` spawn keys, never
  from shared-stream order, so results do not depend on which tasks ran
  before (or concurrently);
- tasks are addressable: :attr:`Task.fingerprint` is the SHA-256 of a
  canonical JSON payload, the key of the on-disk result cache;
- tasks are portable: both the task and its result are plain JSON data,
  so they survive pickling to a worker process and a cache round-trip
  byte-identically.

Task kinds are registered with :func:`task_kind`; the built-in kinds live
in :mod:`repro.experiments.exec.kinds` and are loaded lazily on first
execution so this module stays import-light.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

from ...numeric import is_exact_zero

__all__ = [
    "Task",
    "TaskKindError",
    "canonical_json",
    "execute_task",
    "task_kind",
]

#: Bump when the payload layout changes — old cache entries then miss
#: cleanly instead of replaying results computed under different rules.
TASK_SCHEMA_VERSION = 1

#: kind name → callable(params, seed, trial) -> JSON-serializable result.
_KINDS: Dict[str, Callable[[Mapping[str, Any], int, int], Any]] = {}


class TaskKindError(KeyError):
    """A task named a kind that is not registered."""


def task_kind(name: str):
    """Register a function as the implementation of task kind *name*.

    The function receives ``(params, seed, trial)`` and must return plain
    JSON data (dicts/lists of numbers and strings): the result is cached
    on disk as JSON and must round-trip byte-identically.
    """

    def decorator(fn):
        if name in _KINDS:
            raise ValueError(f"task kind {name!r} registered twice")
        _KINDS[name] = fn
        return fn

    return decorator


def _canon(value: Any) -> Any:
    """Canonicalize *value* for fingerprinting.

    Mappings become sorted dicts, sequences become lists, ``-0.0`` is
    normalized to ``0.0`` (they compare equal, so they must fingerprint
    equal), and non-JSON types are rejected rather than silently
    stringified — a fingerprint must never conflate distinct inputs.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite float {value!r} cannot be fingerprinted")
        return 0.0 if is_exact_zero(value) else value
    if isinstance(value, Mapping):
        return {str(k): _canon(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    raise TypeError(f"task params must be JSON data, got {type(value).__name__}")


def canonical_json(value: Any) -> str:
    """One canonical JSON text per value: sorted keys, no whitespace."""
    return json.dumps(_canon(value), sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass(frozen=True)
class Task:
    """One unit of experiment work: ``(kind, params, seed, trial)``."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    trial: int = 0

    def payload(self) -> Dict[str, Any]:
        """The canonical dict this task fingerprints as."""
        return {
            "version": TASK_SCHEMA_VERSION,
            "kind": self.kind,
            "params": _canon(self.params),
            "seed": int(self.seed),
            "trial": int(self.trial),
        }

    @property
    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical payload — the cache key."""
        text = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def execute_task(task: Task) -> Any:
    """Run *task* and return its (JSON-serializable) result.

    Safe to call in a worker process: the built-in kinds are imported on
    first use, so an unpickled task finds its implementation.  A kind
    named ``"some.module:name"`` is *module-qualified*: the module part
    is imported first, so kinds registered outside the built-in
    :mod:`~repro.experiments.exec.kinds` (e.g. the chaos kinds in
    :mod:`repro.faults.tasks`) resolve in spawned workers too.
    """
    if task.kind not in _KINDS:
        if ":" in task.kind:
            import importlib

            importlib.import_module(task.kind.split(":", 1)[0])
        else:
            from . import kinds  # noqa: F401 — registers the built-in task kinds

    try:
        fn = _KINDS[task.kind]
    except KeyError:
        raise TaskKindError(
            f"unknown task kind {task.kind!r}; registered: {sorted(_KINDS)}"
        ) from None
    return fn(dict(task.params), int(task.seed), int(task.trial))
