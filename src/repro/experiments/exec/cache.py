"""Content-addressed on-disk cache of task results.

Layout (one JSON document per task, sharded by fingerprint prefix)::

    <root>/
      <fp[:2]>/<fingerprint>.json

Each entry stores the task payload it answers for, the result, and a
SHA-256 checksum of the result's canonical JSON.  :meth:`ResultCache.load`
treats *anything* suspicious — unreadable file, invalid JSON, missing
fields, fingerprint mismatch, checksum mismatch — as a miss: the entry is
logged, discarded, and the task recomputed.  A cache can therefore be
truncated by ``kill -9`` mid-write, bit-rotted, or hand-edited without
ever poisoning results.  Writes go through a temp file + :func:`os.replace`
so a concurrent reader only ever sees complete entries.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from .task import Task, canonical_json

__all__ = ["ResultCache"]

logger = logging.getLogger("repro.experiments.exec.cache")

#: Bump to invalidate every existing entry on a format change.
_ENTRY_VERSION = 1


def _result_checksum(result: Any) -> str:
    return hashlib.sha256(canonical_json(result).encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of checksummed, fingerprint-addressed task results."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r})"

    def path_for(self, task_or_fingerprint: Union[Task, str]) -> Path:
        """Where the entry for a task (or raw fingerprint) lives."""
        fp = (
            task_or_fingerprint.fingerprint
            if isinstance(task_or_fingerprint, Task)
            else str(task_or_fingerprint)
        )
        return self.root / fp[:2] / f"{fp}.json"

    def load(self, task: Task) -> Tuple[bool, Any]:
        """Return ``(hit, result)``; corrupt entries count as misses.

        A discarded entry is also deleted so the follow-up
        :meth:`store` rewrites it cleanly.
        """
        path = self.path_for(task)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return False, None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._discard(path, f"unreadable entry ({exc.__class__.__name__}: {exc})")
            return False, None

        problem = self._validate(doc, task)
        if problem is not None:
            self._discard(path, problem)
            return False, None
        return True, doc["result"]

    def store(self, task: Task, result: Any) -> Path:
        """Persist *result* for *task* atomically and return the entry path."""
        path = self.path_for(task)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": _ENTRY_VERSION,
            "fingerprint": task.fingerprint,
            "task": task.payload(),
            "sha256": _result_checksum(result),
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self.root.glob("??/*.json"))

    @staticmethod
    def _validate(doc: Any, task: Task) -> Optional[str]:
        """Why *doc* cannot answer for *task*, or ``None`` if it can."""
        if not isinstance(doc, dict):
            return "entry is not a JSON object"
        if doc.get("version") != _ENTRY_VERSION:
            return f"entry version {doc.get('version')!r} != {_ENTRY_VERSION}"
        if doc.get("fingerprint") != task.fingerprint:
            return "fingerprint mismatch (stale or misplaced entry)"
        if "result" not in doc:
            return "entry has no result"
        try:
            checksum = _result_checksum(doc["result"])
        except (TypeError, ValueError) as exc:
            return f"result not checksummable ({exc})"
        if doc.get("sha256") != checksum:
            return "result checksum mismatch (corrupt or truncated entry)"
        return None

    @staticmethod
    def _discard(path: Path, reason: str) -> None:
        logger.warning("discarding cache entry %s: %s; recomputing", path, reason)
        try:
            os.unlink(path)
        except OSError:
            pass
