"""Parameter-sweep machinery shared by all simulation figures.

Every cost-vs-parameter figure in the evaluation has the same shape: vary
one :class:`~repro.workloads.generators.WorkloadSpec` field, generate
several seeded instances per value, run each algorithm, and average the
comprehensive cost.  :func:`sweep_costs` is that loop, once.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core import CCSInstance, Schedule, comprehensive_cost
from ..workloads import WorkloadSpec, generate_instance
from .report import SeriesResult

__all__ = ["Algorithm", "sweep_costs", "sweep_runtime"]

#: An algorithm under sweep: instance in, schedule out.
Algorithm = Callable[[CCSInstance], Schedule]


def _default_algorithms() -> Dict[str, Algorithm]:
    # Imported lazily to keep this module import-light for the harness.
    from ..core import ccsa, ccsga, noncooperation

    return {
        "NCA": noncooperation,
        "CCSA": ccsa,
        "CCSGA": lambda inst: ccsga(inst, certify=False).schedule,
    }


def _algorithms(algorithms: Optional[Mapping[str, Algorithm]]) -> Mapping[str, Algorithm]:
    if algorithms is not None:
        return algorithms
    return _default_algorithms()


def sweep_costs(
    name: str,
    title: str,
    base_spec: WorkloadSpec,
    param: str,
    values: Sequence,
    algorithms: Optional[Mapping[str, Algorithm]] = None,
    trials: int = 5,
    seed: int = 0,
    x_label: Optional[str] = None,
) -> SeriesResult:
    """Average comprehensive cost of each algorithm across a parameter sweep.

    For each value ``v`` of *param*, generates *trials* instances from
    ``base_spec.with_(param=v)`` with seeds ``seed + trial`` (identical
    across algorithms — a paired comparison) and records the mean cost.
    """
    algos = _algorithms(algorithms)
    result = SeriesResult(
        name=name, title=title, x_label=x_label or param, x_values=list(values)
    )
    sums = {label: [] for label in algos}
    for v in values:
        spec = base_spec.with_(**{param: v})
        totals = {label: 0.0 for label in algos}
        for t in range(trials):
            instance = generate_instance(spec, seed=seed * 1_000_003 + t)
            for label, algo in algos.items():
                totals[label] += comprehensive_cost(algo(instance), instance)
        for label in algos:
            sums[label].append(totals[label] / trials)
    for label, ys in sums.items():
        result.add(label, ys)
    return result


def sweep_runtime(
    name: str,
    title: str,
    base_spec: WorkloadSpec,
    param: str,
    values: Sequence,
    algorithms: Optional[Mapping[str, Algorithm]] = None,
    trials: int = 3,
    seed: int = 0,
    x_label: Optional[str] = None,
) -> SeriesResult:
    """Mean wall-clock seconds of each algorithm across a parameter sweep.

    Same pairing discipline as :func:`sweep_costs`; timing covers only the
    solver call, not instance generation.
    """
    algos = _algorithms(algorithms)
    result = SeriesResult(
        name=name, title=title, x_label=x_label or param, x_values=list(values)
    )
    sums = {label: [] for label in algos}
    for v in values:
        spec = base_spec.with_(**{param: v})
        totals = {label: 0.0 for label in algos}
        for t in range(trials):
            instance = generate_instance(spec, seed=seed * 1_000_003 + t)
            for label, algo in algos.items():
                t0 = time.perf_counter()
                algo(instance)
                totals[label] += time.perf_counter() - t0
        for label in algos:
            sums[label].append(totals[label] / trials)
    for label, ys in sums.items():
        result.add(label, ys)
    return result
