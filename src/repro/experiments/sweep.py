"""Parameter-sweep machinery shared by all simulation figures.

Every cost-vs-parameter figure in the evaluation has the same shape: vary
one :class:`~repro.workloads.generators.WorkloadSpec` field, generate
several seeded instances per value, run each algorithm, and average the
comprehensive cost.  :func:`sweep_costs` is that loop, once — decomposed
into one :class:`~repro.experiments.exec.Task` per ``(value, trial)``
point so the ambient executor can parallelize and cache it.

Instance seeds derive from ``(seed, trial)`` spawn keys
(:func:`repro.rng.derive_seed`): the same trial index sees the same
instance seed at every sweep value and for every algorithm — a paired
comparison — and results are independent of execution order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core import CCSInstance, Schedule, comprehensive_cost
from ..rng import derive_seed
from ..workloads import WorkloadSpec, generate_instance
from .exec import Executor, Task, perf_timer, resolve_executor, spec_to_params
from .report import SeriesResult

__all__ = ["Algorithm", "DEFAULT_ALGORITHM_NAMES", "sweep_costs", "sweep_runtime"]

#: An algorithm under sweep: instance in, schedule out.
Algorithm = Callable[[CCSInstance], Schedule]

#: The algorithms every cost/runtime sweep compares by default.
DEFAULT_ALGORITHM_NAMES = ("NCA", "CCSA", "CCSGA")


def _point_tasks(
    kind: str,
    base_spec: WorkloadSpec,
    param: str,
    values: Sequence,
    labels: Sequence[str],
    trials: int,
    seed: int,
) -> List[Task]:
    tasks = []
    for v in values:
        spec = spec_to_params(base_spec.with_(**{param: v}))
        for t in range(trials):
            tasks.append(
                Task(kind=kind, params={"spec": spec, "algos": list(labels)}, seed=seed, trial=t)
            )
    return tasks


def _aggregate(
    result: SeriesResult,
    labels: Sequence[str],
    point_results: Sequence[Mapping[str, float]],
    n_values: int,
    trials: int,
) -> SeriesResult:
    """Mean each label's metric over trials, per sweep value, in order."""
    sums: Dict[str, List[float]] = {label: [] for label in labels}
    for k in range(n_values):
        totals = {label: 0.0 for label in labels}
        for t in range(trials):
            point = point_results[k * trials + t]
            for label in labels:
                totals[label] += point[label]
        for label in labels:
            sums[label].append(totals[label] / trials)
    for label, ys in sums.items():
        result.add(label, ys)
    return result


def _sweep_custom(
    result: SeriesResult,
    base_spec: WorkloadSpec,
    param: str,
    values: Sequence,
    algorithms: Mapping[str, Algorithm],
    trials: int,
    seed: int,
    timed: bool,
) -> SeriesResult:
    """In-process fallback for ad-hoc algorithm callables.

    Callables cannot be fingerprinted or shipped to a worker, so custom
    sweeps bypass the executor — but use the same derived seeds, so a
    custom mapping that equals the default registry reproduces the
    executor path's numbers exactly.
    """
    sums: Dict[str, List[float]] = {label: [] for label in algorithms}
    for v in values:
        spec = base_spec.with_(**{param: v})
        totals = {label: 0.0 for label in algorithms}
        for t in range(trials):
            instance = generate_instance(spec, seed=derive_seed(seed, t))
            for label, algo in algorithms.items():
                if timed:
                    t0 = perf_timer()
                    algo(instance)
                    totals[label] += perf_timer() - t0
                else:
                    totals[label] += comprehensive_cost(algo(instance), instance)
        for label in algorithms:
            sums[label].append(totals[label] / trials)
    for label, ys in sums.items():
        result.add(label, ys)
    return result


def _sweep(
    kind: str,
    name: str,
    title: str,
    base_spec: WorkloadSpec,
    param: str,
    values: Sequence,
    algorithms: Optional[Mapping[str, Algorithm]],
    trials: int,
    seed: int,
    x_label: Optional[str],
    executor: Optional[Executor],
) -> SeriesResult:
    result = SeriesResult(
        name=name, title=title, x_label=x_label or param, x_values=list(values)
    )
    if algorithms is not None:
        return _sweep_custom(
            result, base_spec, param, values, algorithms, trials, seed,
            timed=(kind == "point_runtime"),
        )
    labels = DEFAULT_ALGORITHM_NAMES
    tasks = _point_tasks(kind, base_spec, param, values, labels, trials, seed)
    point_results = resolve_executor(executor).run(tasks)
    return _aggregate(result, labels, point_results, len(values), trials)


def sweep_costs(
    name: str,
    title: str,
    base_spec: WorkloadSpec,
    param: str,
    values: Sequence,
    algorithms: Optional[Mapping[str, Algorithm]] = None,
    trials: int = 5,
    seed: int = 0,
    x_label: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Average comprehensive cost of each algorithm across a parameter sweep.

    For each value ``v`` of *param*, generates *trials* instances from
    ``base_spec.with_(param=v)`` with seeds ``derive_seed(seed, trial)``
    (identical across values and algorithms — a paired comparison) and
    records the mean cost.  With the default algorithms, each
    ``(value, trial)`` point is one cacheable task on *executor* (the
    ambient one if ``None``).
    """
    return _sweep(
        "point_costs", name, title, base_spec, param, values,
        algorithms, trials, seed, x_label, executor,
    )


def sweep_runtime(
    name: str,
    title: str,
    base_spec: WorkloadSpec,
    param: str,
    values: Sequence,
    algorithms: Optional[Mapping[str, Algorithm]] = None,
    trials: int = 3,
    seed: int = 0,
    x_label: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> SeriesResult:
    """Mean wall-clock seconds of each algorithm across a parameter sweep.

    Same pairing discipline as :func:`sweep_costs`; timing covers only the
    solver call, not instance generation.  (Timings are measured, so only
    cache-replayed runs are bit-reproducible — see docs/EXECUTION.md.)
    """
    return _sweep(
        "point_runtime", name, title, base_spec, param, values,
        algorithms, trials, seed, x_label, executor,
    )
