"""Export evaluation results to a Markdown report.

``ccs-bench --all`` prints to the terminal; :func:`export_markdown` writes
the same results as a self-contained Markdown file with a header that
records *how* they were produced (library version, trials, experiment
ids) so a results file is reproducible from its own preamble.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .runner import EXPERIMENTS, run_all

__all__ = ["results_markdown", "export_markdown"]


def results_markdown(
    results: Dict[str, str],
    trials: int,
    title: str = "CCS reproduction results",
) -> str:
    """Render already-computed experiment outputs as one Markdown document."""
    from .. import __version__

    lines = [
        f"# {title}",
        "",
        f"- library version: `{__version__}`",
        f"- trials per sweep point: {trials}",
        f"- experiments: {', '.join(sorted(results))}",
        "- regenerate: `ccs-bench "
        + " ".join(sorted(results))
        + f" --trials {trials}`",
        "",
    ]
    for eid in sorted(results):
        lines.append(f"## {eid}")
        lines.append("")
        lines.append("```text")
        lines.append(results[eid].rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def export_markdown(
    path: str,
    trials: int = 3,
    only: Optional[List[str]] = None,
) -> Dict[str, str]:
    """Run experiments (all, or the ids in *only*) and write them to *path*.

    Returns the raw results dict so callers can also assert on them.
    Unknown ids fail before any experiment runs.
    """
    ids = only if only is not None else list(EXPERIMENTS)
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    results = run_all(trials=trials, only=ids)
    with open(path, "w") as fh:
        fh.write(results_markdown(results, trials=trials))
        fh.write("\n")
    return results
