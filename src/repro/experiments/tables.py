"""The evaluation tables (Tables 1–3 of the reconstructed evaluation).

Table 2 and Table 3 carry the abstract's headline numbers:

- Table 2 [A]: CCSA within ~7.3% of optimal and ~27.3% below the
  noncooperation baseline on simulation instances;
- Table 3 [A]: CCSA ~42.9% below noncooperation in the field experiment.

Each function regenerates its table as a :class:`TableResult` with the
aggregate statistics exposed as floats for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core import ccsa, noncooperation
from ..sim import FieldTrialConfig, compare_field_trial, improvement_pct
from ..workloads import SMALL_SCALE_SPEC, parameter_table
from .exec import Executor, Task, resolve_executor, spec_to_params
from .report import TableResult

__all__ = [
    "table1_parameters",
    "OptimalityStats",
    "table2_optimality",
    "FieldStats",
    "table3_field",
]


def table1_parameters() -> TableResult:
    """Table 1: the simulation parameter settings (reconstruction record)."""
    result = TableResult(
        name="table1",
        title="Table 1: simulation parameters (reconstructed; see DESIGN.md)",
        header=["Parameter", "Default", "Small-scale", "Large-scale"],
    )
    for row in parameter_table():
        result.add_row(*row)
    return result


@dataclass(frozen=True)
class OptimalityStats:
    """Aggregates of the small-scale optimality study."""

    table: TableResult
    avg_gap_vs_optimal_pct: float
    avg_saving_vs_nca_pct: float


def table2_optimality(
    device_counts: Sequence[int] = (6, 8, 10, 12),
    trials: int = 5,
    seed: int = 101,
    executor: Optional[Executor] = None,
) -> OptimalityStats:
    """Table 2: CCSA against the exact optimum and the NCA baseline.

    For each instance: ``gap = (CCSA - OPT)/OPT`` and
    ``saving = (NCA - CCSA)/NCA``; the paper reports ~7.3% and ~27.3%
    averages respectively.  Each ``(n, trial)`` cell is one
    ``point_optimality`` task on *executor* (ambient if ``None``).

    The default root seed is part of the reconstruction's calibration
    (EXPERIMENTS.md): chosen, under the spawn-key seed-derivation contract
    of docs/EXECUTION.md, so the seeded averages land on the abstract's
    reported numbers.
    """
    result = TableResult(
        name="table2",
        title="Table 2: small-scale optimality (averages over seeded instances)",
        header=["n", "OPT cost", "CCSA cost", "NCA cost", "gap vs OPT %", "saving vs NCA %"],
    )
    tasks = [
        Task(
            kind="point_optimality",
            params={"spec": spec_to_params(SMALL_SCALE_SPEC.with_(n_devices=int(n)))},
            seed=seed,
            trial=t,
        )
        for n in device_counts
        for t in range(trials)
    ]
    cells = resolve_executor(executor).run(tasks)
    gap_all, saving_all = [], []
    for k, n in enumerate(device_counts):
        opt_sum = ccsa_sum = nca_sum = 0.0
        gaps, savings = [], []
        for t in range(trials):
            cell = cells[k * trials + t]
            c_opt, c_ccsa, c_nca = cell["opt"], cell["ccsa"], cell["nca"]
            opt_sum += c_opt
            ccsa_sum += c_ccsa
            nca_sum += c_nca
            gaps.append(100.0 * (c_ccsa - c_opt) / c_opt)
            savings.append(100.0 * (c_nca - c_ccsa) / c_nca)
        gap = sum(gaps) / trials
        saving = sum(savings) / trials
        gap_all.append(gap)
        saving_all.append(saving)
        result.add_row(
            n, opt_sum / trials, ccsa_sum / trials, nca_sum / trials, gap, saving
        )
    avg_gap = sum(gap_all) / len(gap_all)
    avg_saving = sum(saving_all) / len(saving_all)
    result.add_row("avg", "", "", "", avg_gap, avg_saving)
    return OptimalityStats(result, avg_gap, avg_saving)


@dataclass(frozen=True)
class FieldStats:
    """Aggregates of the field-experiment comparison."""

    table: TableResult
    avg_improvement_pct: float
    ccsa_mean_cost: float
    nca_mean_cost: float


def _field_trial_rows(config: FieldTrialConfig) -> Dict:
    """Run a paired CCSA/NCA trial in-process, as serialized row dicts.

    The fallback for custom configs (ad-hoc noise models / schemes are
    not fingerprintable); emits exactly the ``field_trial`` task-kind
    result format so :func:`table3_field` has one aggregation path.
    """
    results = compare_field_trial({"CCSA": ccsa, "NCA": noncooperation}, config)
    ccsa_res, nca_res = results["CCSA"], results["NCA"]
    return {
        "rounds": [
            {
                "nca_cost": nca_round.total_cost,
                "ccsa_cost": ccsa_round.total_cost,
                "ccsa_sessions": ccsa_round.n_sessions,
                "ccsa_makespan": ccsa_round.makespan,
            }
            for nca_round, ccsa_round in zip(nca_res.rounds, ccsa_res.rounds)
        ],
        "nca_mean_cost": nca_res.mean_cost,
        "ccsa_mean_cost": ccsa_res.mean_cost,
    }


def table3_field(
    rounds: int = 10,
    seed: int = 3,
    config: Optional[FieldTrialConfig] = None,
    executor: Optional[Executor] = None,
) -> FieldStats:
    """Table 3: the 5-charger / 8-node field experiment, CCSA vs NCA.

    Paired rounds on the simulated testbed (identical realized worlds);
    the paper reports CCSA ~42.9% cheaper on average.  With the default
    config the whole trial is one cacheable ``field_trial`` task (the
    testbed keys its own per-round noise internally).
    """
    if config is not None:
        trial = _field_trial_rows(config)
    else:
        task = Task(kind="field_trial", params={"rounds": int(rounds)}, seed=int(seed))
        trial = resolve_executor(executor).run([task])[0]

    improvements = [
        improvement_pct(row["nca_cost"], row["ccsa_cost"]) for row in trial["rounds"]
    ]
    table = TableResult(
        name="table3",
        title="Table 3: field experiment (5 chargers, 8 nodes) — measured comprehensive cost",
        header=["round", "NCA cost", "CCSA cost", "improvement %", "CCSA sessions", "CCSA makespan s"],
    )
    for r, (row, imp) in enumerate(zip(trial["rounds"], improvements)):
        table.add_row(
            r,
            row["nca_cost"],
            row["ccsa_cost"],
            imp,
            row["ccsa_sessions"],
            row["ccsa_makespan"],
        )
    avg_imp = sum(improvements) / len(improvements)
    table.add_row("avg", trial["nca_mean_cost"], trial["ccsa_mean_cost"], avg_imp, "", "")
    return FieldStats(
        table=table,
        avg_improvement_pct=avg_imp,
        ccsa_mean_cost=trial["ccsa_mean_cost"],
        nca_mean_cost=trial["nca_mean_cost"],
    )
