"""The evaluation tables (Tables 1–3 of the reconstructed evaluation).

Table 2 and Table 3 carry the abstract's headline numbers:

- Table 2 [A]: CCSA within ~7.3% of optimal and ~27.3% below the
  noncooperation baseline on simulation instances;
- Table 3 [A]: CCSA ~42.9% below noncooperation in the field experiment.

Each function regenerates its table as a :class:`TableResult` with the
aggregate statistics exposed as floats for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core import ccsa, ccsga, comprehensive_cost, noncooperation, optimal_schedule
from ..sim import (
    FieldTrialConfig,
    compare_field_trial,
    improvement_pct,
    paired_improvements,
    utilization_summary,
)
from ..workloads import SMALL_SCALE_SPEC, parameter_table, generate_instance
from .report import TableResult

__all__ = [
    "table1_parameters",
    "OptimalityStats",
    "table2_optimality",
    "FieldStats",
    "table3_field",
]


def table1_parameters() -> TableResult:
    """Table 1: the simulation parameter settings (reconstruction record)."""
    result = TableResult(
        name="table1",
        title="Table 1: simulation parameters (reconstructed; see DESIGN.md)",
        header=["Parameter", "Default", "Small-scale", "Large-scale"],
    )
    for row in parameter_table():
        result.add_row(*row)
    return result


@dataclass(frozen=True)
class OptimalityStats:
    """Aggregates of the small-scale optimality study."""

    table: TableResult
    avg_gap_vs_optimal_pct: float
    avg_saving_vs_nca_pct: float


def table2_optimality(
    device_counts: Sequence[int] = (6, 8, 10, 12),
    trials: int = 5,
    seed: int = 2,
) -> OptimalityStats:
    """Table 2: CCSA against the exact optimum and the NCA baseline.

    For each instance: ``gap = (CCSA - OPT)/OPT`` and
    ``saving = (NCA - CCSA)/NCA``; the paper reports ~7.3% and ~27.3%
    averages respectively.
    """
    result = TableResult(
        name="table2",
        title="Table 2: small-scale optimality (averages over seeded instances)",
        header=["n", "OPT cost", "CCSA cost", "NCA cost", "gap vs OPT %", "saving vs NCA %"],
    )
    gap_all, saving_all = [], []
    for n in device_counts:
        spec = SMALL_SCALE_SPEC.with_(n_devices=int(n))
        opt_sum = ccsa_sum = nca_sum = 0.0
        gaps, savings = [], []
        for t in range(trials):
            instance = generate_instance(spec, seed=seed * 1_000_003 + t)
            c_opt = comprehensive_cost(optimal_schedule(instance), instance)
            c_ccsa = comprehensive_cost(ccsa(instance), instance)
            c_nca = comprehensive_cost(noncooperation(instance), instance)
            opt_sum += c_opt
            ccsa_sum += c_ccsa
            nca_sum += c_nca
            gaps.append(100.0 * (c_ccsa - c_opt) / c_opt)
            savings.append(100.0 * (c_nca - c_ccsa) / c_nca)
        gap = sum(gaps) / trials
        saving = sum(savings) / trials
        gap_all.append(gap)
        saving_all.append(saving)
        result.add_row(
            n, opt_sum / trials, ccsa_sum / trials, nca_sum / trials, gap, saving
        )
    avg_gap = sum(gap_all) / len(gap_all)
    avg_saving = sum(saving_all) / len(saving_all)
    result.add_row("avg", "", "", "", avg_gap, avg_saving)
    return OptimalityStats(result, avg_gap, avg_saving)


@dataclass(frozen=True)
class FieldStats:
    """Aggregates of the field-experiment comparison."""

    table: TableResult
    avg_improvement_pct: float
    ccsa_mean_cost: float
    nca_mean_cost: float


def table3_field(
    rounds: int = 10,
    seed: int = 3,
    config: Optional[FieldTrialConfig] = None,
) -> FieldStats:
    """Table 3: the 5-charger / 8-node field experiment, CCSA vs NCA.

    Paired rounds on the simulated testbed (identical realized worlds);
    the paper reports CCSA ~42.9% cheaper on average.
    """
    config = config or FieldTrialConfig(rounds=rounds, seed=seed)
    results = compare_field_trial({"CCSA": ccsa, "NCA": noncooperation}, config)
    ccsa_res, nca_res = results["CCSA"], results["NCA"]
    improvements = paired_improvements(nca_res, ccsa_res)

    table = TableResult(
        name="table3",
        title="Table 3: field experiment (5 chargers, 8 nodes) — measured comprehensive cost",
        header=["round", "NCA cost", "CCSA cost", "improvement %", "CCSA sessions", "CCSA makespan s"],
    )
    for r, (nca_round, ccsa_round, imp) in enumerate(
        zip(nca_res.rounds, ccsa_res.rounds, improvements)
    ):
        table.add_row(
            r,
            nca_round.total_cost,
            ccsa_round.total_cost,
            imp,
            ccsa_round.n_sessions,
            ccsa_round.makespan,
        )
    avg_imp = sum(improvements) / len(improvements)
    table.add_row("avg", nca_res.mean_cost, ccsa_res.mean_cost, avg_imp, "", "")
    return FieldStats(
        table=table,
        avg_improvement_pct=avg_imp,
        ccsa_mean_cost=ccsa_res.mean_cost,
        nca_mean_cost=nca_res.mean_cost,
    )
