"""Experiment harness: sweeps, figures, tables, rendering, and the runner."""

from .ascii_plot import ascii_plot
from .exec import (
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    Task,
    get_executor,
    use_executor,
)
from .export import export_markdown, results_markdown
from .fieldmap import field_map
from .figures import (
    fig5_cost_vs_devices,
    fig6_cost_vs_chargers,
    fig7_cost_vs_base_price,
    fig8_cost_vs_field_side,
    fig9_runtime,
    fig10_convergence,
    fig11_sharing_fairness,
    fig12_ablation_capacity,
    fig12_ablation_tariff,
)
from .report import SeriesResult, TableResult, render_series, render_table
from .runner import (
    EXPERIMENTS,
    FIGURE_BUILDERS,
    run_all,
    run_experiment,
    validate_experiment_ids,
)
from .sweep import Algorithm, sweep_costs, sweep_runtime
from .tables import (
    FieldStats,
    OptimalityStats,
    table1_parameters,
    table2_optimality,
    table3_field,
)

__all__ = [
    "ParallelExecutor",
    "ResultCache",
    "SerialExecutor",
    "SeriesResult",
    "Task",
    "ascii_plot",
    "get_executor",
    "use_executor",
    "validate_experiment_ids",
    "field_map",
    "export_markdown",
    "results_markdown",
    "TableResult",
    "render_series",
    "render_table",
    "Algorithm",
    "sweep_costs",
    "sweep_runtime",
    "fig5_cost_vs_devices",
    "fig6_cost_vs_chargers",
    "fig7_cost_vs_base_price",
    "fig8_cost_vs_field_side",
    "fig9_runtime",
    "fig10_convergence",
    "fig11_sharing_fairness",
    "fig12_ablation_tariff",
    "fig12_ablation_capacity",
    "table1_parameters",
    "table2_optimality",
    "table3_field",
    "OptimalityStats",
    "FieldStats",
    "EXPERIMENTS",
    "FIGURE_BUILDERS",
    "run_experiment",
    "run_all",
]
