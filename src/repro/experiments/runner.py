"""Run the whole reconstructed evaluation in one call.

:func:`run_all` executes every table and figure at the requested scale and
returns rendered text blocks keyed by experiment id — what the CLI prints
and what EXPERIMENTS.md is distilled from.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..errors import UnknownExperimentError
from .exec import Executor, use_executor
from .figures import (
    fig5_cost_vs_devices,
    fig6_cost_vs_chargers,
    fig7_cost_vs_base_price,
    fig8_cost_vs_field_side,
    fig9_runtime,
    fig10_convergence,
    fig11_sharing_fairness,
    fig12_ablation_capacity,
    fig12_ablation_tariff,
)
from .report import render_series, render_table
from .tables import table1_parameters, table2_optimality, table3_field

__all__ = [
    "EXPERIMENTS",
    "FIGURE_BUILDERS",
    "run_experiment",
    "run_all",
    "validate_experiment_ids",
]


def _table1() -> str:
    return render_table(table1_parameters())


def _table2(trials: int) -> str:
    return render_table(table2_optimality(trials=trials).table)


def _table3(trials: int) -> str:
    return render_table(table3_field(rounds=max(3, trials)).table)


#: Experiment id → callable(trials) → rendered text.
EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "table1": lambda trials: _table1(),
    "table2": _table2,
    "table3": _table3,
    "fig5": lambda trials: render_series(fig5_cost_vs_devices(trials=trials)),
    "fig6": lambda trials: render_series(fig6_cost_vs_chargers(trials=trials)),
    "fig7": lambda trials: render_series(fig7_cost_vs_base_price(trials=trials)),
    "fig8": lambda trials: render_series(fig8_cost_vs_field_side(trials=trials)),
    "fig9": lambda trials: render_series(fig9_runtime(trials=max(1, trials // 2)), precision=4),
    "fig10": lambda trials: render_series(fig10_convergence(trials=trials)),
    "fig11": lambda trials: render_series(fig11_sharing_fairness(trials=trials)),
    "fig12": lambda trials: (
        render_series(fig12_ablation_tariff(trials=trials))
        + "\n\n"
        + render_series(fig12_ablation_capacity(trials=trials))
    ),
}


#: Figure id → callable(trials) → raw :class:`SeriesResult` (for plotting).
FIGURE_BUILDERS = {
    "fig5": lambda trials: fig5_cost_vs_devices(trials=trials),
    "fig6": lambda trials: fig6_cost_vs_chargers(trials=trials),
    "fig7": lambda trials: fig7_cost_vs_base_price(trials=trials),
    "fig8": lambda trials: fig8_cost_vs_field_side(trials=trials),
    "fig9": lambda trials: fig9_runtime(trials=max(1, trials // 2)),
    "fig10": lambda trials: fig10_convergence(trials=trials),
    "fig11": lambda trials: fig11_sharing_fairness(trials=trials),
    "fig12": lambda trials: fig12_ablation_tariff(trials=trials),
}


def validate_experiment_ids(ids: Iterable[str]) -> List[str]:
    """Return *ids* as a list, or raise :class:`UnknownExperimentError`."""
    ids = list(ids)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise UnknownExperimentError(unknown, EXPERIMENTS)
    return ids


def run_experiment(
    experiment_id: str, trials: int = 3, executor: Optional[Executor] = None
) -> str:
    """Run one experiment by id and return its rendered text.

    *executor* (a :class:`~repro.experiments.exec.SerialExecutor` or
    :class:`~repro.experiments.exec.ParallelExecutor`) is made ambient for
    the duration, so every task the experiment spawns runs — and caches —
    through it; ``None`` keeps whatever executor is already ambient.
    """
    (eid,) = validate_experiment_ids([experiment_id])
    fn = EXPERIMENTS[eid]
    if executor is None:
        return fn(trials)
    with use_executor(executor):
        return fn(trials)


def run_all(
    trials: int = 3,
    only: Optional[List[str]] = None,
    executor: Optional[Executor] = None,
) -> Dict[str, str]:
    """Run every experiment (or the ids in *only*) and return their outputs.

    Unknown ids in *only* raise :class:`UnknownExperimentError` up front —
    before any experiment runs — rather than failing midway or being
    silently skipped.
    """
    ids = validate_experiment_ids(only if only is not None else list(EXPERIMENTS))
    return {
        eid: run_experiment(eid, trials=trials, executor=executor) for eid in ids
    }
