"""Battery model for rechargeable sensor nodes.

The testbed simulator tracks each node's battery through sensing drain,
travel drain, and WPT recharge; the scheduling layer reads the battery to
derive an energy *demand* (how many joules the node wants to buy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["Battery"]


@dataclass
class Battery:
    """A finite-capacity energy store, in joules.

    The battery clamps at ``[0, capacity]`` on both charge and discharge and
    reports how much energy actually flowed, so callers can account for
    truncated transfers (e.g. a charging session ending early because the
    battery filled up).
    """

    capacity: float
    level: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"battery capacity must be positive, got {self.capacity}")
        if self.level < 0:  # default: start full
            self.level = self.capacity
        if self.level > self.capacity:
            raise ConfigurationError(
                f"battery level {self.level} exceeds capacity {self.capacity}"
            )

    @property
    def headroom(self) -> float:
        """Energy the battery can still absorb, in joules."""
        return self.capacity - self.level

    @property
    def state_of_charge(self) -> float:
        """Fractional fill level in ``[0, 1]``."""
        return self.level / self.capacity

    def is_depleted(self, threshold: float = 0.0) -> bool:
        """True if the level is at or below *threshold* joules."""
        return self.level <= threshold

    def charge(self, energy: float) -> float:
        """Add up to *energy* joules; return the amount actually stored."""
        if energy < 0:
            raise ValueError(f"charge() takes nonnegative energy, got {energy}")
        stored = min(energy, self.headroom)
        self.level += stored
        return stored

    def discharge(self, energy: float) -> float:
        """Remove up to *energy* joules; return the amount actually drawn.

        Draining past empty is clamped rather than raised: a sensor node that
        runs out of energy mid-task simply dies, which the simulator detects
        via :meth:`is_depleted`.
        """
        if energy < 0:
            raise ValueError(f"discharge() takes nonnegative energy, got {energy}")
        drawn = min(energy, self.level)
        self.level -= drawn
        return drawn
