"""Energy-demand derivation and synthetic demand generators.

A device's *demand* is the number of joules it wants to buy in the next
charging round.  In the simulator this is derived from battery state; in
pure-scheduling experiments it is sampled from a distribution, matching how
the paper's simulations parameterise device heterogeneity.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..rng import RandomState, ensure_rng
from .battery import Battery

__all__ = ["demand_from_battery", "uniform_demands", "lognormal_demands"]


def demand_from_battery(battery: Battery, target_soc: float = 1.0) -> float:
    """Joules needed to raise *battery* to ``target_soc`` of capacity.

    Returns zero when the battery already meets the target — a device with
    no demand simply does not participate in the round.
    """
    if not 0.0 < target_soc <= 1.0:
        raise ConfigurationError(f"target_soc must be in (0, 1], got {target_soc}")
    return max(0.0, target_soc * battery.capacity - battery.level)


def uniform_demands(
    n: int, low: float, high: float, rng: RandomState = None
) -> List[float]:
    """Sample *n* demands uniformly from ``[low, high]`` joules."""
    if n < 0:
        raise ConfigurationError(f"n must be nonnegative, got {n}")
    if low < 0 or high < low:
        raise ConfigurationError(f"need 0 <= low <= high, got [{low}, {high}]")
    gen = ensure_rng(rng)
    return [float(d) for d in gen.uniform(low, high, size=n)]


def lognormal_demands(
    n: int, mean: float, sigma: float = 0.5, rng: RandomState = None
) -> List[float]:
    """Sample *n* heavy-tailed demands with the given arithmetic *mean*.

    Lognormal heterogeneity stresses the proportional cost-sharing scheme:
    a few devices want far more energy than the rest, so equal sharing would
    be unfair to light users.
    """
    if n < 0:
        raise ConfigurationError(f"n must be nonnegative, got {n}")
    if mean <= 0:
        raise ConfigurationError(f"mean must be positive, got {mean}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be nonnegative, got {sigma}")
    gen = ensure_rng(rng)
    # Choose mu so that E[lognormal(mu, sigma)] == mean.
    mu = np.log(mean) - 0.5 * sigma**2
    return [float(d) for d in gen.lognormal(mu, sigma, size=n)]
