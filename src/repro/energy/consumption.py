"""Energy consumption models for sensing, radio duty, and locomotion.

The scheduling problem only needs each device's *demand*; the testbed
simulator additionally needs to know how fast batteries drain between
charging rounds.  These models are deliberately simple affine forms — the
standard first-order models in the WRSN literature — but live behind a
small protocol so experiments can substitute richer ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..errors import ConfigurationError

__all__ = [
    "ConsumptionModel",
    "ConstantPowerConsumption",
    "DutyCycleConsumption",
    "LocomotionModel",
]


@runtime_checkable
class ConsumptionModel(Protocol):
    """Anything that can report joules consumed over a time interval."""

    def energy_over(self, duration: float) -> float:
        """Energy consumed over *duration* seconds, in joules."""
        ...


@dataclass(frozen=True)
class ConstantPowerConsumption:
    """A node that draws a fixed *power* (watts) continuously."""

    power: float

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ConfigurationError(f"power must be nonnegative, got {self.power}")

    def energy_over(self, duration: float) -> float:
        if duration < 0:
            raise ValueError(f"duration must be nonnegative, got {duration}")
        return self.power * duration


@dataclass(frozen=True)
class DutyCycleConsumption:
    """Active/sleep duty cycling: ``active_power`` a fraction of the time.

    ``energy_over`` uses the long-run average power, which is exact whenever
    the interval spans many duty cycles — the regime the testbed operates in
    (charging rounds are minutes; duty cycles are seconds).
    """

    active_power: float
    sleep_power: float
    duty_cycle: float

    def __post_init__(self) -> None:
        if self.active_power < 0 or self.sleep_power < 0:
            raise ConfigurationError("powers must be nonnegative")
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ConfigurationError(f"duty_cycle must be in [0, 1], got {self.duty_cycle}")
        if self.sleep_power > self.active_power:
            raise ConfigurationError("sleep_power must not exceed active_power")

    @property
    def average_power(self) -> float:
        """Long-run mean power draw, in watts."""
        return self.duty_cycle * self.active_power + (1.0 - self.duty_cycle) * self.sleep_power

    def energy_over(self, duration: float) -> float:
        if duration < 0:
            raise ValueError(f"duration must be nonnegative, got {duration}")
        return self.average_power * duration


@dataclass(frozen=True)
class LocomotionModel:
    """Energy cost of moving: ``energy_per_meter`` joules per meter travelled.

    This is the *energy* side of mobility; the monetary moving cost used by
    the CCS objective lives in :mod:`repro.mobility` (they need not agree —
    a device may value its travel above the pure energy price).
    """

    energy_per_meter: float

    def __post_init__(self) -> None:
        if self.energy_per_meter < 0:
            raise ConfigurationError(
                f"energy_per_meter must be nonnegative, got {self.energy_per_meter}"
            )

    def energy_for(self, distance: float) -> float:
        """Joules consumed travelling *distance* meters."""
        if distance < 0:
            raise ValueError(f"distance must be nonnegative, got {distance}")
        return self.energy_per_meter * distance
