"""Energy substrate: batteries, consumption models, demand generation."""

from .battery import Battery
from .consumption import (
    ConstantPowerConsumption,
    ConsumptionModel,
    DutyCycleConsumption,
    LocomotionModel,
)
from .demand import demand_from_battery, lognormal_demands, uniform_demands

__all__ = [
    "Battery",
    "ConsumptionModel",
    "ConstantPowerConsumption",
    "DutyCycleConsumption",
    "LocomotionModel",
    "demand_from_battery",
    "uniform_demands",
    "lognormal_demands",
]
