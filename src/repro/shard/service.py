"""The sharded charging service: N independent kernels, one facade.

:class:`ShardedService` runs one full
:class:`~repro.service.kernel.ChargingService` kernel — its own journal,
logical clock, incremental planner, and metrics registry — per
charger-owning cell of a :class:`~repro.shard.partition.GridPartition`,
behind a :class:`~repro.shard.router.SpatialRouter`.  The facade exposes
the same ``submit`` / ``advance`` / ``drain`` / fault-input API as the
single kernel, so drivers, load generators, and the chaos harness run
unchanged against it.

Degenerate-case guarantee (asserted byte-for-byte by the test suite):
with ``n_shards=1`` the lone kernel receives the same chargers in the
same order and the same input stream as an unsharded ``ChargingService``
would, so its journal bytes, metrics snapshot, and final schedule are
*identical* — sharding at 1 is the unsharded service.

Durability: each shard journals independently under ``journal_dir``
(``shard-0000.jsonl``, …) next to a ``manifest.json`` recording the
partition, and :meth:`ShardedService.recover` rebuilds every kernel from
its own journal — including the router's sticky request→shard assignment,
recovered from the ``submit`` records each journal holds.  Killing and
recovering a *single* shard (:meth:`kill_and_recover_shard`) leaves the
other kernels untouched; see :mod:`repro.shard.driver` for the chaos loop
that exercises it.

Semantics that genuinely relax under ``n_shards > 1`` (documented in
docs/SHARDING.md): border devices are only quoted against their candidate
shards' chargers rather than the whole field, and the duplicate-device
admission check applies per shard.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..core.costsharing import CostSharingScheme
from ..errors import ConfigurationError, ServiceError
from ..geometry import Field
from ..mobility import MobilityModel
from ..service.kernel import ChargingService, ServiceConfig
from ..service.metrics import merge_snapshots
from ..service.request import ChargingRequest
from ..wpt import Charger
from .partition import GridPartition
from .router import SpatialRouter

__all__ = ["ShardedService", "merge_final_schedules", "shard_journal_name"]

#: Manifest format version; bump on layout changes.
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "manifest.json"


def shard_journal_name(shard: int) -> str:
    """Journal file name of shard *shard* inside the journal directory."""
    return f"shard-{shard:04d}.jsonl"


def merge_final_schedules(
    per_shard: Mapping[int, List[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Merge per-shard session logs into one deterministic schedule.

    Each session gains a ``"shard"`` key (per-shard ``seq`` values
    collide across shards) and the merge sorts by ``(departed, shard,
    seq)`` — a total order, so the result is byte-stable however the
    shards were driven.
    """
    merged: List[Dict[str, Any]] = []
    for sid in sorted(per_shard):
        for session in per_shard[sid]:
            doc = dict(session)
            doc["shard"] = sid
            merged.append(doc)
    merged.sort(key=lambda s: (s["departed"], s["shard"], s["seq"]))
    return merged


def _field_for(chargers: Sequence[Charger], field: Optional[Field]) -> Field:
    """Default the partition field to a square covering every charger."""
    if field is not None:
        return field
    side = max(
        [1.0]
        + [max(c.position.x, c.position.y) for c in chargers]
    )
    return Field.square(side)


class ShardedService:
    """N charging-service kernels behind a deterministic spatial router."""

    def __init__(
        self,
        chargers: Sequence[Charger],
        n_shards: int,
        field: Optional[Field] = None,
        halo: float = 0.0,
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        config: Optional[ServiceConfig] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        journal_sync: bool = True,
        _recovered: Optional[Dict[int, ChargingService]] = None,
    ):
        """Partition *field* (default: a square covering the chargers)
        into *n_shards* cells and start one kernel per charger-owning
        cell.  ``journal_dir``, when given, holds one journal per shard
        plus a partition manifest; ``None`` runs journal-less (benchmarks).
        """
        if not chargers:
            raise ConfigurationError("a sharded service needs at least one charger")
        self.n_shards = int(n_shards)
        self.field = _field_for(chargers, field)
        self.partition = GridPartition(self.field, self.n_shards, halo=halo)
        self.mobility = mobility
        self.scheme = scheme
        self.config = config
        self.journal_sync = bool(journal_sync)
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.shard_chargers: Dict[int, List[Charger]] = (
            self.partition.assign_chargers(chargers)
        )
        self._owner: Dict[str, int] = {}
        for sid, owned in self.shard_chargers.items():
            for c in owned:
                self._owner[c.charger_id] = sid
        if _recovered is not None:
            self.kernels: Dict[int, ChargingService] = dict(_recovered)
        else:
            if self.journal_dir is not None:
                self.journal_dir.mkdir(parents=True, exist_ok=True)
                self._write_manifest()
            self.kernels = {}
            for sid in sorted(self.shard_chargers):
                owned = self.shard_chargers[sid]
                if not owned:
                    continue
                path = (
                    self.journal_dir / shard_journal_name(sid)
                    if self.journal_dir is not None
                    else None
                )
                self.kernels[sid] = ChargingService(
                    owned,
                    mobility=mobility,
                    scheme=scheme,
                    config=config,
                    journal_path=path,
                    journal_sync=journal_sync,
                )
        if not self.kernels:
            raise ConfigurationError(
                "no shard owns a charger — empty partition cannot serve"
            )
        self.router = SpatialRouter(
            self.partition,
            {sid: kernel.planner for sid, kernel in self.kernels.items()},
        )

    # ------------------------------------------------------------------ #
    # manifest

    def _manifest_payload(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "n_shards": self.n_shards,
            "halo": float(self.partition.halo),
            "field": {
                "width": float(self.field.width),
                "height": float(self.field.height),
            },
            "shards": {
                str(sid): [c.charger_id for c in owned]
                for sid, owned in self.shard_chargers.items()
            },
        }

    def _write_manifest(self) -> None:
        assert self.journal_dir is not None
        path = self.journal_dir / MANIFEST_NAME
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self._manifest_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    # ------------------------------------------------------------------ #
    # the kernel-compatible input API

    def submit(self, request: ChargingRequest) -> str:
        """Route and submit one request; returns its resulting state.

        Idempotent like the kernel's ``submit``: a known request id
        re-routes to its sticky shard, whose kernel no-ops.
        """
        sid = self.router.route(request)
        return self.kernels[sid].submit(request)

    def advance(self, to: float) -> None:
        """Advance every shard's logical clock to *to*, in shard order."""
        for sid in sorted(self.kernels):
            self.kernels[sid].advance(to)

    def drain(self) -> None:
        """Drain every shard (fold, depart, complete), in shard order."""
        for sid in sorted(self.kernels):
            self.kernels[sid].drain()

    def fail_charger(self, charger_id: str, at: Optional[float] = None) -> bool:
        """Charger outage, delivered to the owning shard's kernel."""
        return self.kernels[self._owner_of(charger_id)].fail_charger(
            charger_id, at=at
        )

    def restore_charger(self, charger_id: str, at: Optional[float] = None) -> bool:
        """Charger recovery, delivered to the owning shard's kernel."""
        return self.kernels[self._owner_of(charger_id)].restore_charger(
            charger_id, at=at
        )

    def cancel(
        self,
        request_id: str,
        at: Optional[float] = None,
        reason: str = "cancelled",
    ) -> Optional[str]:
        """Cancel *request_id* wherever it was routed (``None`` if unknown)."""
        sid = self.router.shard_of(request_id)
        if sid is None:
            return None
        return self.kernels[sid].cancel(request_id, at=at, reason=reason)

    def _owner_of(self, charger_id: str) -> int:
        try:
            return self._owner[charger_id]
        except KeyError:
            raise ServiceError(f"unknown charger {charger_id!r}") from None

    # ------------------------------------------------------------------ #
    # introspection (kernel-compatible)

    def request_state(self, request_id: str) -> str:
        """Lifecycle state of *request_id* (KeyError when never routed)."""
        sid = self.router.shard_of(request_id)
        if sid is None:
            raise KeyError(request_id)
        return self.kernels[sid].request_state(request_id)

    def counts(self) -> Dict[str, int]:
        """Requests per lifecycle state, summed across shards."""
        total: Dict[str, int] = {}
        for sid in sorted(self.kernels):
            for state, n in self.kernels[sid].counts().items():
                total[state] = total.get(state, 0) + n
        return total

    def final_schedule(self) -> List[Dict[str, Any]]:
        """Departed sessions across all shards, in departure order.

        With one shard this is exactly the kernel's schedule (the
        byte-identity contract).  With several, sessions carry an extra
        ``"shard"`` key (per-shard ``seq`` values collide) and merge
        sorted by ``(departed, shard, seq)`` — a total, deterministic
        order.
        """
        if self.n_shards == 1:
            (kernel,) = self.kernels.values()
            return kernel.final_schedule()
        return merge_final_schedules(
            {sid: kernel.final_schedule() for sid, kernel in self.kernels.items()}
        )

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Aggregated metrics: the lone kernel's snapshot at one shard
        (byte-identity), the :func:`~repro.service.metrics.merge_snapshots`
        merge — counters summed, gauges keyed ``shard-NNNN``, histograms
        added bucket-wise — otherwise.
        """
        if self.n_shards == 1:
            (kernel,) = self.kernels.values()
            return kernel.metrics_snapshot()
        return merge_snapshots(
            {
                f"shard-{sid:04d}": self.kernels[sid].metrics_snapshot()
                for sid in sorted(self.kernels)
            }
        )

    def close(self) -> None:
        """Close every shard journal (idempotent)."""
        for kernel in self.kernels.values():
            if kernel.journal is not None:
                kernel.journal.close()

    # ------------------------------------------------------------------ #
    # durability

    def kill_and_recover_shard(self, shard: int, torn: bool = False) -> ChargingService:
        """Kill shard *shard*'s kernel and rebuild it from its journal.

        The in-memory kernel is abandoned (its journal closed) and
        :meth:`ChargingService.recover` replays the journal into a fresh
        kernel — the other shards are never touched.  ``torn=True`` first
        damages the journal's tail (the last bytes of the final record),
        simulating a mid-append ``kill -9``: recovery then restarts from
        the longest valid prefix, and the caller must re-feed the input
        stream (idempotent) to converge — exactly the
        :func:`repro.faults.driver.drive_with_recovery` discipline, per
        shard.  Returns the recovered kernel.
        """
        if self.journal_dir is None:
            raise ServiceError("cannot recover a journal-less shard")
        try:
            kernel = self.kernels[shard]
        except KeyError:
            raise ServiceError(f"no kernel for shard {shard}") from None
        assert kernel.journal is not None
        path = Path(kernel.journal.path)
        kernel.journal.close()
        del self.kernels[shard]
        if torn:
            _tear_tail(path)
        recovered = ChargingService.recover(
            path,
            self.shard_chargers[shard],
            mobility=self.mobility,
            scheme=self.scheme,
            config=self.config,
            journal_sync=self.journal_sync,
        )
        self.kernels[shard] = recovered
        self.router.planners[shard] = recovered.planner
        return recovered

    @classmethod
    def recover(
        cls,
        journal_dir: Union[str, Path],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        config: Optional[ServiceConfig] = None,
        journal_sync: bool = True,
    ) -> "ShardedService":
        """Rebuild a killed sharded service from its journal directory.

        Reads the manifest for the partition shape, recovers every shard
        kernel from its own journal (each replay is the single-kernel
        :meth:`ChargingService.recover`), and rebuilds the router's
        sticky assignment from the ``submit`` records in each journal.
        Construction arguments are code, not data — pass the same
        chargers/config the dead service ran with; the manifest and each
        journal's ``open`` header are checked against them.
        """
        journal_dir = Path(journal_dir)
        with open(journal_dir / MANIFEST_NAME, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ServiceError(
                f"unsupported shard manifest schema {manifest.get('schema')!r}"
            )
        field = Field(manifest["field"]["width"], manifest["field"]["height"])
        service = cls(
            chargers,
            n_shards=int(manifest["n_shards"]),
            field=field,
            halo=float(manifest["halo"]),
            mobility=mobility,
            scheme=scheme,
            config=config,
            journal_sync=journal_sync,
            journal_dir=journal_dir,
            _recovered=cls._recover_kernels(
                journal_dir, manifest, chargers, mobility, scheme, config,
                journal_sync,
            ),
        )
        for sid in sorted(service.kernels):
            for rid in service.kernels[sid].requests:
                service.router.assignment[rid] = sid
        return service

    @staticmethod
    def _recover_kernels(
        journal_dir: Path,
        manifest: Dict[str, Any],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel],
        scheme: Optional[CostSharingScheme],
        config: Optional[ServiceConfig],
        journal_sync: bool,
    ) -> Dict[int, ChargingService]:
        by_id = {c.charger_id: c for c in chargers}
        kernels: Dict[int, ChargingService] = {}
        for sid_str in sorted(manifest["shards"], key=int):
            ids = manifest["shards"][sid_str]
            if not ids:
                continue
            missing = [cid for cid in ids if cid not in by_id]
            if missing:
                raise ServiceError(
                    f"manifest shard {sid_str} names unknown chargers {missing}"
                )
            sid = int(sid_str)
            kernels[sid] = ChargingService.recover(
                journal_dir / shard_journal_name(sid),
                [by_id[cid] for cid in ids],
                mobility=mobility,
                scheme=scheme,
                config=config,
                journal_sync=journal_sync,
            )
        return kernels


def _tear_tail(path: Path, nbytes: int = 10) -> None:
    """Chop *nbytes* off the journal file, tearing its final record.

    Never removes the whole file: at least one byte survives, and a file
    shorter than *nbytes* loses all but its first byte — the torn-tail
    shape :meth:`Journal.read_records` is built to survive.
    """
    size = path.stat().st_size
    keep = max(1, size - int(nbytes))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
