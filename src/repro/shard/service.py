"""The sharded charging service: N independent kernels, one facade.

:class:`ShardedService` runs one full
:class:`~repro.service.kernel.ChargingService` kernel — its own journal,
logical clock, incremental planner, and metrics registry — per
charger-owning cell of a :class:`~repro.shard.partition.GridPartition`,
behind a :class:`~repro.shard.router.SpatialRouter`.  The facade exposes
the same ``submit`` / ``advance`` / ``drain`` / fault-input API as the
single kernel, so drivers, load generators, and the chaos harness run
unchanged against it.

Degenerate-case guarantee (asserted byte-for-byte by the test suite):
with ``n_shards=1`` the lone kernel receives the same chargers in the
same order and the same input stream as an unsharded ``ChargingService``
would, so its journal bytes, metrics snapshot, and final schedule are
*identical* — sharding at 1 is the unsharded service.

Durability: each shard journals independently under ``journal_dir``
(``shard-0000.jsonl``, …) next to a ``manifest.json`` recording the
partition, and :meth:`ShardedService.recover` rebuilds every kernel from
its own journal — including the router's sticky request→shard assignment,
recovered from the ``submit`` records each journal holds.  Killing and
recovering a *single* shard (:meth:`kill_and_recover_shard`) leaves the
other kernels untouched; see :mod:`repro.shard.driver` for the chaos loop
that exercises it.

Semantics that genuinely relax under ``n_shards > 1`` (documented in
docs/SHARDING.md): border devices are only quoted against their candidate
shards' chargers rather than the whole field, and the duplicate-device
admission check applies per shard.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Union

from ..core.costsharing import CostSharingScheme
from ..errors import (
    ConfigurationError,
    InjectedFaultError,
    JournalWriteError,
    LiveJournalError,
    RecoveryError,
    ServiceError,
    ShardFailedError,
    ShardUnavailableError,
)
from ..geometry import Field
from ..mobility import MobilityModel
from ..service.kernel import ChargingService, ServiceConfig
from ..service.metrics import Metrics, merge_snapshots
from ..service.request import ChargingRequest, RequestState
from ..wpt import Charger
from .partition import GridPartition
from .router import SpatialRouter

__all__ = ["ShardedService", "merge_final_schedules", "shard_journal_name"]

#: Manifest format version; bump on layout changes.
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "manifest.json"

#: Resolved journal directories owned by live :class:`ShardedService`
#: objects in this process.  Registered at construction, released by
#: :meth:`ShardedService.close`; :meth:`ShardedService.recover` refuses a
#: registered directory (:class:`~repro.errors.LiveJournalError`) —
#: recovering files another in-process writer still appends to would
#: interleave two journals.  A crashed *process* never deregisters, but
#: its registry died with it, so post-crash recovery is unaffected.
_LIVE_DIRS: Set[str] = set()


def shard_journal_name(shard: int) -> str:
    """Journal file name of shard *shard* inside the journal directory."""
    return f"shard-{shard:04d}.jsonl"


def merge_final_schedules(
    per_shard: Mapping[int, List[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Merge per-shard session logs into one deterministic schedule.

    Each session gains a ``"shard"`` key (per-shard ``seq`` values
    collide across shards) and the merge sorts by ``(departed, shard,
    seq)`` — a total order, so the result is byte-stable however the
    shards were driven.
    """
    merged: List[Dict[str, Any]] = []
    for sid in sorted(per_shard):
        for session in per_shard[sid]:
            doc = dict(session)
            doc["shard"] = sid
            merged.append(doc)
    merged.sort(key=lambda s: (s["departed"], s["shard"], s["seq"]))
    return merged


def _field_for(chargers: Sequence[Charger], field: Optional[Field]) -> Field:
    """Default the partition field to a square covering every charger."""
    if field is not None:
        return field
    side = max(
        [1.0]
        + [max(c.position.x, c.position.y) for c in chargers]
    )
    return Field.square(side)


class ShardedService:
    """N charging-service kernels behind a deterministic spatial router."""

    def __init__(
        self,
        chargers: Sequence[Charger],
        n_shards: int,
        field: Optional[Field] = None,
        halo: float = 0.0,
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        config: Optional[ServiceConfig] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        journal_sync: bool = True,
        snapshot_every: Optional[int] = None,
        snapshot_keep: int = 2,
        compact: bool = True,
        _recovered: Optional[Dict[int, ChargingService]] = None,
    ):
        """Partition *field* (default: a square covering the chargers)
        into *n_shards* cells and start one kernel per charger-owning
        cell.  ``journal_dir``, when given, holds one journal per shard
        plus a partition manifest; ``None`` runs journal-less (benchmarks).
        ``snapshot_every`` / ``snapshot_keep`` / ``compact`` are handed to
        every kernel (see :class:`~repro.service.kernel.ChargingService`):
        each shard snapshots and compacts its own journal independently.
        """
        if not chargers:
            raise ConfigurationError("a sharded service needs at least one charger")
        self.n_shards = int(n_shards)
        self.field = _field_for(chargers, field)
        self.partition = GridPartition(self.field, self.n_shards, halo=halo)
        self.mobility = mobility
        self.scheme = scheme
        self.config = config
        self.journal_sync = bool(journal_sync)
        self.snapshot_every = snapshot_every
        self.snapshot_keep = int(snapshot_keep)
        self.compact = bool(compact)
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.shard_chargers: Dict[int, List[Charger]] = (
            self.partition.assign_chargers(chargers)
        )
        self._owner: Dict[str, int] = {}
        for sid, owned in self.shard_chargers.items():
            for c in owned:
                self._owner[c.charger_id] = sid
        if _recovered is not None:
            self.kernels: Dict[int, ChargingService] = dict(_recovered)
        else:
            if self.journal_dir is not None:
                self.journal_dir.mkdir(parents=True, exist_ok=True)
                self._write_manifest()
            self.kernels = {}
            for sid in sorted(self.shard_chargers):
                owned = self.shard_chargers[sid]
                if not owned:
                    continue
                path = (
                    self.journal_dir / shard_journal_name(sid)
                    if self.journal_dir is not None
                    else None
                )
                self.kernels[sid] = ChargingService(
                    owned,
                    mobility=mobility,
                    scheme=scheme,
                    config=config,
                    journal_path=path,
                    journal_sync=journal_sync,
                    snapshot_every=snapshot_every,
                    snapshot_keep=snapshot_keep,
                    compact=compact,
                )
        if not self.kernels:
            raise ConfigurationError(
                "no shard owns a charger — empty partition cannot serve"
            )
        self.router = SpatialRouter(
            self.partition,
            {sid: kernel.planner for sid, kernel in self.kernels.items()},
        )
        #: Request ids rejected while no live shard could take them,
        #: mapped to why (``"sticky"`` / ``"unrouted"``).  Their terminal
        #: answer stays ``rejected`` even after the shard returns —
        #: facade-level bookkeeping, never journaled (these requests
        #: reached no kernel).
        self._unrouted: Dict[str, str] = {}
        #: Facade-level operational metrics (degraded-mode outcomes,
        #: shard failures).  Like the kernels' operational instruments,
        #: these depend on fault history and stay out of
        #: :meth:`metrics_snapshot`; see :meth:`observability_snapshot`.
        self.ops = Metrics()
        for name in (
            "rejected.shard_unavailable",
            "rejected.shard_unavailable.sticky",
            "rejected.shard_unavailable.unrouted",
            "inputs.dropped_shard_down",
            "shard_failures",
        ):
            self.ops.counter(name, operational=True)
        self._closed = False
        if self.journal_dir is not None:
            _LIVE_DIRS.add(str(self.journal_dir.resolve()))

    # ------------------------------------------------------------------ #
    # manifest

    def _manifest_payload(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "n_shards": self.n_shards,
            "halo": float(self.partition.halo),
            "field": {
                "width": float(self.field.width),
                "height": float(self.field.height),
            },
            "shards": {
                str(sid): [c.charger_id for c in owned]
                for sid, owned in self.shard_chargers.items()
            },
        }

    def _write_manifest(self) -> None:
        assert self.journal_dir is not None
        path = self.journal_dir / MANIFEST_NAME
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self._manifest_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    # ------------------------------------------------------------------ #
    # the kernel-compatible input API

    def _call_shard(self, sid: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke one kernel method, converting its death into a typed error.

        A kernel whose journal append fails (``JournalWriteError``) or
        that hits an injected crash (``InjectedFaultError``) is *dead* —
        its in-memory state ran ahead of its journal.  The facade
        surfaces that as :class:`~repro.errors.ShardFailedError` carrying
        the shard id, its logical clock, and the cause, so a
        :class:`~repro.shard.supervisor.ShardSupervisor` can recover
        exactly that kernel and retry the interrupted input.
        """
        kernel = self.kernels[sid]
        try:
            return getattr(kernel, method)(*args, **kwargs)
        except (JournalWriteError, InjectedFaultError) as exc:
            self.ops.counter("shard_failures", operational=True).inc()
            raise ShardFailedError(sid, kernel.clock.now, exc) from exc

    # ccs-lint: ignore[CCS011] -- the degraded-mode rejection record
    # (self._unrouted) is deliberately unjournaled: a rejected-unavailable
    # request reached no kernel, so there is no journal to own it.  The
    # answer is facade-local operational state — lost on whole-service
    # recovery by design, never part of the byte-identical replay contract.
    def submit(self, request: ChargingRequest) -> str:
        """Route and submit one request; returns its resulting state.

        Idempotent like the kernel's ``submit``: a known request id
        re-routes to its sticky shard, whose kernel no-ops.  While no
        live shard can take the request (its shard is down, or every
        candidate is), the answer is a typed ``rejected`` — counted under
        ``rejected.shard_unavailable`` — and that answer is terminal:
        re-submitting after the shard returns still rejects, because the
        original decision must be stable under recovery re-feeds.
        """
        rid = request.request_id
        if rid in self._unrouted:
            return RequestState.REJECTED
        try:
            sid = self.router.route(request)
        except ShardUnavailableError:
            reason = (
                "sticky" if self.router.shard_of(rid) is not None else "unrouted"
            )
            self._unrouted[rid] = reason
            self.ops.counter("rejected.shard_unavailable", operational=True).inc()
            self.ops.counter(
                f"rejected.shard_unavailable.{reason}", operational=True
            ).inc()
            return RequestState.REJECTED
        return self._call_shard(sid, "submit", request)

    def advance(self, to: float) -> None:
        """Advance every *live* shard's logical clock to *to*, in shard
        order.  Down shards are skipped; recovery advances them when they
        rejoin (their journals carry their own clocks)."""
        for sid in sorted(self.kernels):
            if sid in self.router.down:
                continue
            self._call_shard(sid, "advance", to)

    def drain(self) -> None:
        """Drain every live shard (fold, depart, complete), in shard order."""
        for sid in sorted(self.kernels):
            if sid in self.router.down:
                continue
            self._call_shard(sid, "drain")

    def fail_charger(self, charger_id: str, at: Optional[float] = None) -> bool:
        """Charger outage, delivered to the owning shard's kernel.

        Returns ``False`` without delivering when that shard is down —
        there is no kernel to journal the input (counted under
        ``inputs.dropped_shard_down``)."""
        sid = self._owner_of(charger_id)
        if sid in self.router.down:
            self.ops.counter("inputs.dropped_shard_down", operational=True).inc()
            return False
        return self._call_shard(sid, "fail_charger", charger_id, at=at)

    def restore_charger(self, charger_id: str, at: Optional[float] = None) -> bool:
        """Charger recovery, delivered to the owning shard's kernel."""
        sid = self._owner_of(charger_id)
        if sid in self.router.down:
            self.ops.counter("inputs.dropped_shard_down", operational=True).inc()
            return False
        return self._call_shard(sid, "restore_charger", charger_id, at=at)

    def cancel(
        self,
        request_id: str,
        at: Optional[float] = None,
        reason: str = "cancelled",
    ) -> Optional[str]:
        """Cancel *request_id* wherever it was routed (``None`` if unknown)."""
        sid = self.router.shard_of(request_id)
        if sid is None:
            return None
        if sid in self.router.down:
            self.ops.counter("inputs.dropped_shard_down", operational=True).inc()
            return None
        return self._call_shard(sid, "cancel", request_id, at=at, reason=reason)

    def _owner_of(self, charger_id: str) -> int:
        try:
            return self._owner[charger_id]
        except KeyError:
            raise ServiceError(f"unknown charger {charger_id!r}") from None

    # ------------------------------------------------------------------ #
    # introspection (kernel-compatible)

    def request_state(self, request_id: str) -> str:
        """Lifecycle state of *request_id* (KeyError when never routed)."""
        if request_id in self._unrouted:
            return RequestState.REJECTED
        sid = self.router.shard_of(request_id)
        if sid is None:
            raise KeyError(request_id)
        return self.kernels[sid].request_state(request_id)

    def counts(self) -> Dict[str, int]:
        """Requests per lifecycle state, summed across shards.

        Requests rejected because no live shard could take them reached
        no kernel; they are counted into ``rejected`` here so the totals
        match what :meth:`submit` answered."""
        total: Dict[str, int] = {}
        for sid in sorted(self.kernels):
            for state, n in self.kernels[sid].counts().items():
                total[state] = total.get(state, 0) + n
        if self._unrouted:
            total[RequestState.REJECTED] = (
                total.get(RequestState.REJECTED, 0) + len(self._unrouted)
            )
        return total

    def final_schedule(self) -> List[Dict[str, Any]]:
        """Departed sessions across all shards, in departure order.

        With one shard this is exactly the kernel's schedule (the
        byte-identity contract).  With several, sessions carry an extra
        ``"shard"`` key (per-shard ``seq`` values collide) and merge
        sorted by ``(departed, shard, seq)`` — a total, deterministic
        order.
        """
        if self.n_shards == 1:
            (kernel,) = self.kernels.values()
            return kernel.final_schedule()
        return merge_final_schedules(
            {sid: kernel.final_schedule() for sid, kernel in self.kernels.items()}
        )

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Aggregated metrics: the lone kernel's snapshot at one shard
        (byte-identity), the :func:`~repro.service.metrics.merge_snapshots`
        merge — counters summed, gauges keyed ``shard-NNNN``, histograms
        added bucket-wise — otherwise.
        """
        if self.n_shards == 1:
            (kernel,) = self.kernels.values()
            return kernel.metrics_snapshot()
        return merge_snapshots(
            {
                f"shard-{sid:04d}": self.kernels[sid].metrics_snapshot()
                for sid in sorted(self.kernels)
            }
        )

    def observability_snapshot(self) -> Dict[str, Any]:
        """Everything — deterministic *and* operational — for humans.

        Merges every kernel's full snapshot (including its operational
        recovery/snapshot counters) with the facade's own instruments
        under the ``facade`` label.  Never byte-stable across fault
        histories; use :meth:`metrics_snapshot` for that.
        """
        labeled = {
            f"shard-{sid:04d}": self.kernels[sid].observability_snapshot()
            for sid in sorted(self.kernels)
        }
        labeled["facade"] = self.ops.snapshot(operational=True)
        return merge_snapshots(labeled)

    def close(self) -> None:
        """Close every shard journal and release the journal directory.

        Idempotent: the first call does the work, every later call is a
        no-op — so ``finally: service.close()`` blocks compose and a
        close after :meth:`mark_shard_down` / partial failure is safe.
        """
        if self._closed:
            return
        self._closed = True
        for kernel in self.kernels.values():
            if kernel.journal is not None:
                kernel.journal.close()
        if self.journal_dir is not None:
            _LIVE_DIRS.discard(str(self.journal_dir.resolve()))

    # ------------------------------------------------------------------ #
    # degraded mode

    def mark_shard_down(self, shard: int) -> None:
        """Take *shard* out of routing and clock advancement.

        The supervisor escalates to this after its restart budget; an
        operator can call it directly.  Interior submissions for the
        shard then reject ``shard_unavailable``; border devices route to
        their surviving candidates; the shard's journal and sticky
        assignments are untouched, ready for :meth:`recover_shard`.
        """
        if shard not in self.kernels:
            raise ServiceError(f"no kernel for shard {shard}")
        self.router.mark_down(shard)

    def mark_shard_up(self, shard: int) -> None:
        """Return *shard* to routing (no-op when it was not down)."""
        self.router.mark_up(shard)

    def shards_down(self) -> List[int]:
        """Sorted ids of the shards currently out of service."""
        return sorted(self.router.down)

    # ------------------------------------------------------------------ #
    # durability

    def kill_and_recover_shard(
        self,
        shard: int,
        torn: bool = False,
        journal_factory: Optional[Callable[[str], Any]] = None,
    ) -> ChargingService:
        """Kill shard *shard*'s kernel and rebuild it from its journal.

        The in-memory kernel is abandoned (its journal closed) and
        :meth:`ChargingService.recover` replays the journal into a fresh
        kernel — the other shards are never touched.  ``torn=True`` first
        damages the journal's tail (the last bytes of the final record),
        simulating a mid-append ``kill -9``: recovery then restarts from
        the longest valid prefix, and the caller must re-feed the input
        stream (idempotent) to converge — exactly the
        :func:`repro.faults.driver.drive_with_recovery` discipline, per
        shard.  Returns the recovered kernel.

        The dead kernel is replaced only when recovery *succeeds* — on a
        crash mid-recovery (``journal_factory`` is the fault harness's
        hook for injecting those) the facade still maps the shard id, so
        a supervisor can simply retry this call.
        """
        if self.journal_dir is None:
            raise ServiceError("cannot recover a journal-less shard")
        try:
            kernel = self.kernels[shard]
        except KeyError:
            raise ServiceError(f"no kernel for shard {shard}") from None
        assert kernel.journal is not None
        path = Path(kernel.journal.path)
        kernel.journal.close()
        if torn:
            _tear_tail(path)
        recovered = ChargingService.recover(
            path,
            self.shard_chargers[shard],
            mobility=self.mobility,
            scheme=self.scheme,
            config=self.config,
            journal_sync=self.journal_sync,
            journal_factory=journal_factory,
            snapshot_every=self.snapshot_every,
            snapshot_keep=self.snapshot_keep,
            compact=self.compact,
        )
        self.kernels[shard] = recovered
        self.router.planners[shard] = recovered.planner
        return recovered

    @classmethod
    def recover(
        cls,
        journal_dir: Union[str, Path],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        config: Optional[ServiceConfig] = None,
        journal_sync: bool = True,
        snapshot_every: Optional[int] = None,
        snapshot_keep: int = 2,
        compact: bool = True,
    ) -> "ShardedService":
        """Rebuild a killed sharded service from its journal directory.

        Reads the manifest for the partition shape, recovers every shard
        kernel from its own journal (each replay is the single-kernel
        :meth:`ChargingService.recover` — snapshot fast path included),
        and rebuilds the router's sticky assignment from the ``submit``
        records in each journal.  Construction arguments are code, not
        data — pass the same chargers/config the dead service ran with;
        the manifest and each journal's ``open`` header are checked
        against them.

        A directory still owned by a live service object in this process
        raises :class:`~repro.errors.LiveJournalError` (``close()`` it
        first).  A missing, unparsable, or version-skewed manifest raises
        :class:`~repro.errors.RecoveryError`: the partition shape cannot
        be trusted, so no per-shard replay may start.
        """
        journal_dir = Path(journal_dir)
        if str(journal_dir.resolve()) in _LIVE_DIRS:
            raise LiveJournalError(
                f"journal directory {journal_dir} is owned by a live service "
                "in this process; close() it before recovering"
            )
        try:
            with open(journal_dir / MANIFEST_NAME, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError as exc:
            raise RecoveryError(
                f"no shard manifest at {journal_dir / MANIFEST_NAME}"
            ) from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RecoveryError(
                f"shard manifest {journal_dir / MANIFEST_NAME} is corrupt: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("schema") != MANIFEST_SCHEMA:
            got = manifest.get("schema") if isinstance(manifest, dict) else manifest
            raise RecoveryError(
                f"unsupported shard manifest schema {got!r} "
                f"(supported: {MANIFEST_SCHEMA})"
            )
        field = Field(manifest["field"]["width"], manifest["field"]["height"])
        service = cls(
            chargers,
            n_shards=int(manifest["n_shards"]),
            field=field,
            halo=float(manifest["halo"]),
            mobility=mobility,
            scheme=scheme,
            config=config,
            journal_sync=journal_sync,
            journal_dir=journal_dir,
            snapshot_every=snapshot_every,
            snapshot_keep=snapshot_keep,
            compact=compact,
            _recovered=cls._recover_kernels(
                journal_dir, manifest, chargers, mobility, scheme, config,
                journal_sync, snapshot_every, snapshot_keep, compact,
            ),
        )
        for sid in sorted(service.kernels):
            for rid in service.kernels[sid].requests:
                service.router.assignment[rid] = sid
        return service

    @staticmethod
    def _recover_kernels(
        journal_dir: Path,
        manifest: Dict[str, Any],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel],
        scheme: Optional[CostSharingScheme],
        config: Optional[ServiceConfig],
        journal_sync: bool,
        snapshot_every: Optional[int] = None,
        snapshot_keep: int = 2,
        compact: bool = True,
    ) -> Dict[int, ChargingService]:
        by_id = {c.charger_id: c for c in chargers}
        kernels: Dict[int, ChargingService] = {}
        for sid_str in sorted(manifest["shards"], key=int):
            ids = manifest["shards"][sid_str]
            if not ids:
                continue
            missing = [cid for cid in ids if cid not in by_id]
            if missing:
                raise ServiceError(
                    f"manifest shard {sid_str} names unknown chargers {missing}"
                )
            sid = int(sid_str)
            kernels[sid] = ChargingService.recover(
                journal_dir / shard_journal_name(sid),
                [by_id[cid] for cid in ids],
                mobility=mobility,
                scheme=scheme,
                config=config,
                journal_sync=journal_sync,
                snapshot_every=snapshot_every,
                snapshot_keep=snapshot_keep,
                compact=compact,
            )
        return kernels


def _tear_tail(path: Path, nbytes: int = 10) -> None:
    """Chop *nbytes* off the journal file, tearing its final record.

    Never removes the whole file: at least one byte survives, and a file
    shorter than *nbytes* loses all but its first byte — the torn-tail
    shape :meth:`Journal.read_records` is built to survive.
    """
    size = path.stat().st_size
    keep = max(1, size - int(nbytes))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
