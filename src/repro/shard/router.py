"""Deterministic spatial routing of requests to shard kernels.

The router decides, for each submission, which shard's
:class:`~repro.service.kernel.ChargingService` kernel serves it:

- an **interior** device (one candidate shard, see
  :meth:`~repro.shard.partition.GridPartition.candidate_shards`) goes to
  its owner shard with *no quoting at all* — its route depends only on
  the partition, never on charger availability or what other requests
  exist, which is what keeps interior outcomes stable when the shard
  count changes (the 2→4 regression test);
- a **border** device is quoted against each candidate shard's planner
  (:meth:`~repro.service.plan.IncrementalPlanner.quote` — the best
  *available* singleton, a pure function of the device and the shard's
  charger availability) and admitted to the cheapest, ties broken toward
  the lower shard id.

Routing is therefore a pure function of ``(request, partition, per-shard
charger availability)`` plus the *sticky assignment*: once a request id
is routed, every later event for it (cancel, idempotent re-submit after
a recovery re-feed) goes to the same shard, recorded in
:attr:`SpatialRouter.assignment` and rebuilt from the shard journals on
recovery.  Byte-identical replay follows: feed the same inputs in the
same order and every route decision recurs exactly.

**Degraded mode.**  A shard marked down (:meth:`SpatialRouter.mark_down`
— supervisor escalation, or an operator) is excluded from routing: a
border device is quoted only against its surviving candidates, and a
request whose *every* candidate is down — or whose sticky shard is down
— raises :class:`~repro.errors.ShardUnavailableError` for the facade to
turn into a typed ``rejected.shard_unavailable`` outcome.  Stickiness is
never broken by an outage: a request already assigned to the down shard
is *not* silently re-routed elsewhere, because its state lives in that
shard's journal and nowhere else.  The down set is explicit input, not
discovered state, so routing stays a pure function of ``(request,
partition, availability, down set)`` and replay stays byte-identical.

The router quotes through each shard's ``planner`` — any object with
``quote(device) -> (cost, charger_index)`` raising
:class:`~repro.errors.ServiceError` when no charger is available.  The
live facade passes its kernels' planners (so availability stays in one
place); the offline timeline partitioner passes standalone
:class:`~repro.service.plan.IncrementalPlanner` objects.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from ..errors import ServiceError, ShardUnavailableError
from ..service.request import ChargingRequest
from .partition import GridPartition

__all__ = ["SpatialRouter"]


class SpatialRouter:
    """Route requests over a :class:`GridPartition` (module docstring)."""

    def __init__(
        self,
        partition: GridPartition,
        planners: Mapping[int, object],
    ):
        """*planners* maps shard id → quoting planner; only shards that
        own at least one charger appear (an empty shard cannot serve)."""
        if not planners:
            raise ServiceError("a router needs at least one non-empty shard")
        self.partition = partition
        self.planners: Dict[int, object] = dict(planners)
        #: Sticky request → shard map (the routing history).
        self.assignment: Dict[str, int] = {}
        #: Shards currently out of service (degraded mode); explicit
        #: input via :meth:`mark_down` / :meth:`mark_up`, never inferred.
        self.down: Set[int] = set()

    def shards(self) -> List[int]:
        """Sorted ids of the routable (charger-owning) shards."""
        return sorted(self.planners)

    def mark_down(self, shard: int) -> None:
        """Take *shard* out of routing (it must exist to be down)."""
        if shard not in self.planners:
            raise ServiceError(f"cannot mark unknown shard {shard} down")
        self.down.add(shard)

    def mark_up(self, shard: int) -> None:
        """Return *shard* to routing (a no-op if it was not down)."""
        self.down.discard(shard)

    def candidates(self, request: ChargingRequest) -> List[int]:
        """Routable candidate shards for *request*, sorted.

        The partition's candidates filtered to shards that own chargers;
        when none of them do (the device's whole neighborhood is empty
        cells), every routable shard is a candidate — the unsharded
        service would consider the whole field too.
        """
        cands = [
            s
            for s in self.partition.candidate_shards(request.device.position)
            if s in self.planners
        ]
        return cands if cands else self.shards()

    def route(self, request: ChargingRequest) -> int:
        """The shard serving *request*; records the sticky assignment.

        A border device is admitted to the candidate with the cheapest
        quote (ties → lower shard id).  Candidates whose every charger is
        down cannot quote and are skipped; if *no* candidate can quote,
        the request routes to the lowest candidate so that kernel rejects
        it with ``charger_failed`` — the same terminal answer the
        unsharded service gives when nothing can quote.

        Degraded mode: shards in :attr:`down` are excluded before any
        quoting; when nothing live survives — or the sticky shard is down
        — :class:`~repro.errors.ShardUnavailableError` is raised and *no*
        assignment is recorded (the request may route normally once the
        shard is back).
        """
        known = self.assignment.get(request.request_id)
        if known is not None:
            if known in self.down:
                raise ShardUnavailableError(request.request_id, [known])
            return known
        cands = self.candidates(request)
        live = [s for s in cands if s not in self.down]
        if not live:
            raise ShardUnavailableError(request.request_id, cands)
        if len(live) == 1:
            sid = live[0]
        else:
            best: Optional[tuple] = None
            for s in live:
                try:
                    quote, _ = self.planners[s].quote(request.device)  # type: ignore[attr-defined]
                except ServiceError:
                    continue
                key = (float(quote), s)
                if best is None or key < best:
                    best = key
            sid = best[1] if best is not None else live[0]
        self.assignment[request.request_id] = sid
        return sid

    def shard_of(self, request_id: str) -> Optional[int]:
        """Where *request_id* was routed, or ``None`` if never seen."""
        return self.assignment.get(request_id)
