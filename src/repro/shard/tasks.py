"""Sharded replay over the PR 2 executor: one task per shard.

Because routing is a pure function of the merged input timeline (see
:mod:`repro.shard.router`), a whole run can be *partitioned up front*:
:func:`partition_timeline` replays only the routing decisions — cheap
per-shard quote planners, no kernels — and emits each shard's private
input timeline as plain JSON items.  Each shard is then one
``"repro.shard.tasks:shard_replay"`` :class:`~repro.experiments.exec.task.Task`
— a deterministic, fingerprintable unit that rebuilds the shard's kernel
from its serialized chargers and replays its items — so
:func:`replay_sharded` can fan the shards out over any executor.  Serial
and parallel execution produce byte-identical results (the executor
equivalence the PR 2 tests pin), and the same holds against the live
:class:`~repro.shard.service.ShardedService` facade: the facade *is* the
interleaved execution of these per-shard timelines.

The kind is module-qualified so spawned workers resolve it by importing
this module (the :func:`~repro.experiments.exec.task.execute_task`
convention).  Replay tasks support the default mobility model and
cost-sharing scheme only — those are code, not JSON, and the task
boundary ships data.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..experiments.exec.executors import Executor, resolve_executor
from ..experiments.exec.task import Task, task_kind
from ..faults.driver import apply_event, merge_timeline
from ..faults.plan import FaultEvent, FaultPlan
from ..geometry import Field
from ..io import charger_from_dict, charger_to_dict
from ..service.kernel import ChargingService, ServiceConfig
from ..service.metrics import merge_snapshots
from ..service.plan import IncrementalPlanner
from ..service.request import ChargingRequest
from ..wpt import Charger
from .partition import GridPartition
from .router import SpatialRouter
from .service import merge_final_schedules

__all__ = ["SHARD_REPLAY_KIND", "partition_timeline", "replay_sharded"]

SHARD_REPLAY_KIND = "repro.shard.tasks:shard_replay"


def partition_timeline(
    chargers: Sequence[Charger],
    requests: Sequence[ChargingRequest],
    partition: GridPartition,
    plan: Optional[FaultPlan] = None,
) -> Tuple[Dict[int, List[Dict[str, Any]]], Dict[str, int]]:
    """Split one merged input timeline into per-shard JSON timelines.

    Replays the routing decisions exactly as the live facade makes them:
    submissions route through a :class:`SpatialRouter` over per-shard
    quote planners, charger outages/recoveries flip those planners'
    availability (so border quotes see the same availability history),
    and cancels/no-shows follow their request's sticky assignment.
    Returns ``(per-shard items, assignment)``; items are
    ``{"op": "submit"|"fault", "t": ..., "request"|"event": {...}}``.
    """
    owned = partition.assign_chargers(chargers)
    planners = {
        sid: IncrementalPlanner(cs) for sid, cs in owned.items() if cs
    }
    index_of = {
        sid: {c.charger_id: j for j, c in enumerate(owned[sid])}
        for sid in planners
    }
    owner = {c.charger_id: sid for sid in planners for c in owned[sid]}
    router = SpatialRouter(partition, planners)
    per_shard: Dict[int, List[Dict[str, Any]]] = {sid: [] for sid in planners}
    for tag, t, payload in merge_timeline(
        requests, plan if plan is not None else FaultPlan()
    ):
        if tag == "submit":
            sid = router.route(payload)
            per_shard[sid].append(
                {"op": "submit", "t": float(t), "request": payload.to_dict()}
            )
            continue
        event: FaultEvent = payload
        if event.kind in ("charger_down", "charger_up"):
            sid = owner[event.target]
            planner = planners[sid]
            j = index_of[sid][event.target]
            if event.kind == "charger_down":
                planner.fail_charger(j)
            else:
                planner.restore_charger(j)
        else:  # cancel / no_show follow the request's sticky assignment
            maybe = router.shard_of(event.target)
            if maybe is None:
                continue  # unknown request id: a no-op on any kernel
            sid = maybe
        per_shard[sid].append(
            {"op": "fault", "t": float(t), "event": event.to_dict()}
        )
    return per_shard, dict(router.assignment)


@task_kind(SHARD_REPLAY_KIND)
def _shard_replay(params: Mapping[str, Any], seed: int, trial: int) -> Any:
    """Replay one shard's timeline through a fresh kernel (worker-safe).

    ``params``: ``chargers`` (serialized), ``items`` (the shard's
    timeline), optional ``config`` (``ServiceConfig.to_dict`` form),
    ``advance_to``, ``drain`` (default true), and ``journal_path`` — when
    given the kernel journals there (no fsync; replay wants speed, the
    bytes are returned for identity checks).  Returns plain JSON:
    ``counts``, ``schedule``, ``metrics``, and the journal text or
    ``None``.
    """
    chargers = [charger_from_dict(c) for c in params["chargers"]]
    config = (
        ServiceConfig(**params["config"]) if params.get("config") is not None else None
    )
    journal_path = params.get("journal_path")
    service = ChargingService(
        chargers,
        config=config,
        journal_path=journal_path,
        journal_sync=False,
    )
    for item in params["items"]:
        if item["op"] == "submit":
            payload: Any = ChargingRequest.from_dict(item["request"])
        else:
            payload = FaultEvent.from_dict(item["event"])
        apply_event(service, (item["op"], float(item["t"]), payload))
    if params.get("advance_to") is not None:
        service.advance(float(params["advance_to"]))
    if params.get("drain", True):
        service.drain()
    journal_text: Optional[str] = None
    if journal_path is not None and service.journal is not None:
        service.journal.close()
        with open(journal_path, "r", encoding="utf-8") as fh:
            journal_text = fh.read()
    return {
        "counts": service.counts(),
        "schedule": service.final_schedule(),
        "metrics": service.metrics_snapshot(),
        "journal": journal_text,
    }


def replay_sharded(
    chargers: Sequence[Charger],
    requests: Sequence[ChargingRequest],
    n_shards: int,
    field: Field,
    halo: float = 0.0,
    plan: Optional[FaultPlan] = None,
    config: Optional[ServiceConfig] = None,
    executor: Optional[Executor] = None,
    workdir: Optional[str] = None,
    advance_to: Optional[float] = None,
    drain: bool = True,
    seed: int = 0,
) -> Dict[str, Any]:
    """Partition, fan out one replay task per shard, merge the results.

    *executor* defaults to the ambient one
    (:func:`~repro.experiments.exec.executors.resolve_executor`);
    *workdir*, when given, makes each shard journal to
    ``<workdir>/shard-NNNN.jsonl`` and returns the journal text per
    shard.  The merged views use the same rules as the live facade:
    counts sum, schedules merge by ``(departed, shard, seq)``, metrics
    merge via :func:`~repro.service.metrics.merge_snapshots`.
    """
    partition = GridPartition(field, n_shards, halo=halo)
    per_shard, assignment = partition_timeline(
        chargers, requests, partition, plan=plan
    )
    owned = partition.assign_chargers(chargers)
    sids = sorted(per_shard)
    tasks = []
    for sid in sids:
        params: Dict[str, Any] = {
            "chargers": [charger_to_dict(c) for c in owned[sid]],
            "items": per_shard[sid],
            "config": None if config is None else config.to_dict(),
            "advance_to": advance_to,
            "drain": drain,
        }
        if workdir is not None:
            params["journal_path"] = f"{workdir}/shard-{sid:04d}.jsonl"
        tasks.append(Task(kind=SHARD_REPLAY_KIND, params=params, seed=seed, trial=sid))
    results = resolve_executor(executor).run(tasks)
    shards = dict(zip(sids, results))
    counts: Dict[str, int] = {}
    for sid in sids:
        for state, n in shards[sid]["counts"].items():
            counts[state] = counts.get(state, 0) + n
    return {
        "shards": shards,
        "assignment": assignment,
        "counts": counts,
        "schedule": merge_final_schedules(
            {sid: shards[sid]["schedule"] for sid in sids}
        ),
        "metrics": merge_snapshots(
            {f"shard-{sid:04d}": shards[sid]["metrics"] for sid in sids}
        ),
    }
