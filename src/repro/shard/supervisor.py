"""Self-healing shard supervision: detect, back off, recover, re-feed.

:class:`ShardSupervisor` sits between a driver and a
:class:`~repro.shard.service.ShardedService` and turns shard kernel
deaths into recoveries instead of exceptions.  The loop, per failure:

1. **Detect** — the facade raises
   :class:`~repro.errors.ShardFailedError` when a kernel's journal
   append fails or an injected crash fires (:meth:`ShardedService._call_shard`);
   an exogenous ``kill -9`` is delivered through :meth:`kill_shard`.
2. **Back off** — before each restart attempt the supervisor charges a
   *logical* backoff (exponential in the attempt, jittered from
   ``derive_seed(seed, "backoff", shard, attempt)``).  Nothing sleeps:
   the service clock is input-driven (CCS002), so backoff is pure
   bookkeeping — journaled, summed in :attr:`stats`, asserted
   deterministic by the tests.
3. **Recover** — :meth:`ShardedService.kill_and_recover_shard` rebuilds
   exactly the dead kernel from its journal (snapshot fast path
   included).  A crash *during* recovery counts as a failed attempt and
   the loop retries, up to ``max_restarts``.
4. **Escalate** — past the restart budget the shard is marked down
   (:meth:`ShardedService.mark_shard_down`): the router degrades around
   it and the supervisor stops fighting.  :meth:`reset_shard` is the
   operator's way back.
5. **Re-feed** — after a successful recovery the supervisor replays its
   input history through the facade.  Every kernel input is idempotent,
   so the re-feed no-ops through surviving state and regenerates exactly
   what a torn journal tail lost.

Every step appends a record to the **supervision journal**
(``supervisor.jsonl`` next to the shard journals, same checksummed
format): failures, restart attempts with their backoff, recoveries,
escalations.  Because backoff is seed-derived and every decision is a
pure function of ``(seed, failure sequence)``, re-running the same
timeline against the same fault plan reproduces the supervision journal
byte-for-byte — the supervise→recover→re-feed loop is itself replayable.

:func:`drive_supervised` is the chaos harness: it weaves the plan's
``shard_kill`` / ``snapshot_corrupt`` / ``crash_in_snapshot`` events
into the timeline, arms ``recovery_crash`` faults against the replay
journals, and drives everything through a supervisor — converging
byte-identical to a fault-free run with zero operator calls.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    ConfigurationError,
    InjectedFaultError,
    JournalWriteError,
    ServiceError,
    ShardFailedError,
)
from ..faults.driver import apply_event, merge_timeline
from ..faults.journal import FaultyJournal
from ..faults.plan import FaultPlan
from ..rng import derive_seed, ensure_rng
from ..service.journal import Journal
from ..service.request import ChargingRequest
from ..service.snapshot import list_snapshots, snapshot_path
from .service import ShardedService, _tear_tail, shard_journal_name

__all__ = [
    "SUPERVISOR_JOURNAL_NAME",
    "ShardSupervisor",
    "drive_supervised",
    "supervised_timeline",
]

#: The supervision journal's file name inside the journal directory.
SUPERVISOR_JOURNAL_NAME = "supervisor.jsonl"

#: ``(tag, t, payload)`` — the sharded timeline plus supervisor chaos tags.
SupervisedTimelineItem = Tuple[str, float, Any]

#: Exceptions that mean "this recovery attempt crashed; retry" — anything
#: else (config mismatch, unrecoverable corruption) propagates to the
#: operator, because retrying cannot fix it.
_RETRYABLE = (JournalWriteError, InjectedFaultError)


class ShardSupervisor:
    """Automatic failover for one :class:`ShardedService` (module docstring)."""

    def __init__(
        self,
        service: ShardedService,
        seed: int = 0,
        max_restarts: int = 3,
        backoff_base: float = 1.0,
        backoff_factor: float = 2.0,
        backoff_cap: float = 60.0,
        recovery_journal_factory: Optional[
            Callable[[int], Optional[Callable[[str], Journal]]]
        ] = None,
        journal_sync: bool = False,
    ) -> None:
        """``recovery_journal_factory(shard)`` may return a ``path ->
        Journal`` factory for that shard's *recovery* journal — the fault
        harness's hook for crashing recovery itself; ``None`` (per shard
        or overall) uses plain journals.  ``journal_sync`` is the
        supervision journal's fsync knob."""
        if max_restarts < 1:
            raise ConfigurationError(
                f"max_restarts must be >= 1, got {max_restarts}"
            )
        if backoff_base <= 0.0 or backoff_factor < 1.0 or backoff_cap <= 0.0:
            raise ConfigurationError(
                "backoff needs base > 0, factor >= 1, cap > 0; got "
                f"base={backoff_base}, factor={backoff_factor}, cap={backoff_cap}"
            )
        self.service = service
        self.seed = int(seed)
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap = float(backoff_cap)
        self.recovery_journal_factory = recovery_journal_factory
        #: Timeline items successfully applied, in order — the re-feed
        #: source after a recovery.
        self.history: List[SupervisedTimelineItem] = []
        self.stats: Dict[str, Any] = {
            "failures": 0,
            "restarts": 0,
            "recoveries": 0,
            "escalations": 0,
            "refeeds": 0,
            "total_backoff": 0.0,
        }
        self._refeeding = False
        self.journal: Optional[Journal] = None
        if service.journal_dir is not None:
            self.journal = Journal(
                service.journal_dir / SUPERVISOR_JOURNAL_NAME,
                truncate=True,
                sync=journal_sync,
            )

    # ------------------------------------------------------------------ #
    # the supervision loop

    def backoff(self, shard: int, attempt: int) -> float:
        """Logical backoff before restart *attempt* (1-based) of *shard*.

        Exponential ``base * factor**(attempt-1)`` capped at ``cap``,
        jittered into ``[0.5, 1.5)`` of itself by a generator keyed
        ``derive_seed(seed, "backoff", shard, attempt)`` — a pure
        function of its arguments, so two runs (or a run and its replay)
        charge identical backoffs.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt is 1-based, got {attempt}")
        base = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        rng = ensure_rng(derive_seed(self.seed, "backoff", int(shard), int(attempt)))
        return float(base * (0.5 + rng.random()))

    def handle_failure(self, exc: ShardFailedError) -> bool:
        """Recover the failed shard; returns ``True`` on success.

        Runs the restart loop — backoff, recover, retry on a crash
        during recovery — and either brings the shard back (re-feeding
        the processed history) or escalates after ``max_restarts``
        attempts: the shard is marked down and ``False`` returned, with
        the facade degrading around it.
        """
        sid = exc.shard
        self.stats["failures"] += 1
        self._log("shard_failed", exc.at, {
            "shard": sid, "cause": type(exc.cause).__name__,
        })
        for attempt in range(1, self.max_restarts + 1):
            pause = self.backoff(sid, attempt)
            self.stats["total_backoff"] += pause
            self.stats["restarts"] += 1
            self._log("restart", exc.at, {
                "shard": sid, "attempt": attempt, "backoff": pause,
            })
            try:
                self.service.kill_and_recover_shard(
                    sid, journal_factory=self._factory_for(sid)
                )
            except _RETRYABLE as retry_exc:
                self._log("restart_failed", exc.at, {
                    "shard": sid,
                    "attempt": attempt,
                    "cause": type(retry_exc).__name__,
                })
                continue
            self.service.mark_shard_up(sid)
            self.stats["recoveries"] += 1
            self._log("recovered", exc.at, {"shard": sid, "attempt": attempt})
            if not self._refeeding:
                self.refeed()
            return True
        self.stats["escalations"] += 1
        self._log("escalated", exc.at, {
            "shard": sid, "attempts": self.max_restarts,
        })
        self.service.mark_shard_down(sid)
        return False

    def kill_shard(self, shard: int, torn: bool = False) -> bool:
        """An exogenous ``kill -9`` of one shard, healed through the loop.

        Closes the kernel's journal (the "crash" — nothing more lands),
        optionally tears its tail, then runs :meth:`handle_failure` as if
        the facade had detected the death.  Returns whether the shard
        came back (``False`` = escalated).
        """
        try:
            kernel = self.service.kernels[shard]
        except KeyError:
            raise ServiceError(f"no kernel for shard {shard}") from None
        at = kernel.clock.now
        if kernel.journal is not None:
            path = Path(kernel.journal.path)
            kernel.journal.close()
            if torn:
                _tear_tail(path)
        return self.handle_failure(
            ShardFailedError(shard, at, InjectedFaultError("shard killed"))
        )

    def reset_shard(self, shard: int) -> bool:
        """Operator reset of an escalated shard: one fresh restart budget.

        Re-runs the supervision loop for *shard* (which :meth:`handle_failure`
        escalated and marked down).  On success the shard rejoins routing
        and the history is re-fed; on another exhausted budget it stays
        down and ``False`` returns.
        """
        kernel = self.service.kernels.get(shard)
        at = kernel.clock.now if kernel is not None else 0.0
        self._log("reset", at, {"shard": shard})
        return self.handle_failure(
            ShardFailedError(shard, at, ServiceError("operator reset"))
        )

    # ------------------------------------------------------------------ #
    # driving

    def apply(self, item: SupervisedTimelineItem) -> None:
        """Apply one timeline item, healing any shard death it provokes.

        The item is retried after each recovery — inputs are idempotent,
        and after an *escalation* the retry terminates through the
        degraded paths (rejected ``shard_unavailable``, skipped clock
        advance) instead of failing again.
        """
        while True:
            try:
                apply_event(self.service, item)  # type: ignore[arg-type]
            except ShardFailedError as exc:
                self.handle_failure(exc)
                continue
            self.history.append(item)
            return

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a facade method (``advance``, ``drain``, …) supervised."""
        while True:
            try:
                return getattr(self.service, method)(*args, **kwargs)
            except ShardFailedError as exc:
                self.handle_failure(exc)

    def refeed(self) -> None:
        """Re-apply the processed history through the facade (idempotent).

        Regenerates whatever journal records a torn tail lost; everything
        still journaled no-ops.  A shard death *during* the re-feed runs
        the restart loop again but not a nested re-feed — the outer pass
        already covers the remaining history.
        """
        self.stats["refeeds"] += 1
        self._refeeding = True
        try:
            for item in self.history:
                while True:
                    try:
                        apply_event(self.service, item)  # type: ignore[arg-type]
                    except ShardFailedError as exc:
                        self.handle_failure(exc)
                        continue
                    break
        finally:
            self._refeeding = False

    # ------------------------------------------------------------------ #
    # plumbing

    def _factory_for(self, shard: int) -> Optional[Callable[[str], Journal]]:
        if self.recovery_journal_factory is None:
            return None
        return self.recovery_journal_factory(shard)

    def _log(self, event: str, t: float, data: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(event, t, data)

    def close(self) -> None:
        """Close the supervision journal (idempotent)."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# the supervised chaos harness


def supervised_timeline(
    requests: Sequence[ChargingRequest], plan: FaultPlan
) -> List[SupervisedTimelineItem]:
    """The kernel timeline with every supervisor chaos event woven in.

    Like :func:`repro.shard.driver.sharded_timeline`, with
    ``snapshot_corrupt`` and ``crash_in_snapshot`` joining ``shard_kill``
    at priority 2 (after same-instant submissions and kernel faults);
    the item tag is the event's kind.  Total and deterministic.
    """
    keyed: List[Tuple[Tuple[float, int, str, str], SupervisedTimelineItem]] = []
    for item in merge_timeline(requests, plan):
        tag, t, payload = item
        if tag == "submit":
            key = (t, 0, "submit", payload.request_id)
        else:
            key = (t, 1, payload.kind, payload.target)
        keyed.append((key, item))
    for event in plan.supervisor_events():
        key = (float(event.t), 2, event.kind, event.target)
        keyed.append((key, (event.kind, float(event.t), event)))
    keyed.sort(key=lambda pair: pair[0])
    return [item for _key, item in keyed]


def _corrupt_newest_snapshot(journal_path: Path) -> bool:
    """Garble the newest snapshot file in place; ``False`` if none exists.

    Truncates to half, simulating bitrot / a torn copy: the checksum no
    longer verifies, so recovery must skip it — the fallback chain under
    test.
    """
    snaps = list_snapshots(journal_path)
    if not snaps:
        return False
    _seq, path = snaps[0]
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(max(1, size // 2))
    return True


def _litter_snapshot_tmp(journal_path: Path, seq: int) -> Path:
    """Leave the half-written ``*.tmp`` a crash mid-snapshot-write leaves.

    The temp+rename discipline means a real crash can only strand a tmp
    sibling, never a half file under the final name; recovery must step
    over it (``list_snapshots`` ignores tmps).
    """
    final = snapshot_path(journal_path, seq)
    tmp = final.with_name(final.name + ".tmp")
    tmp.write_text('{"schema":1,"seq":', encoding="utf-8")
    return tmp


def drive_supervised(
    service: ShardedService,
    requests: Sequence[ChargingRequest],
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    max_restarts: int = 3,
    drain: bool = True,
    advance_to: Optional[float] = None,
) -> Tuple[ShardedService, ShardSupervisor, Dict[str, Any]]:
    """Drive requests + the full self-healing chaos mix, supervised.

    Consumes the plan's ``shard_kill`` (clean/torn), ``snapshot_corrupt``
    (garble the newest snapshot before recovery needs it),
    ``crash_in_snapshot`` (strand a half-written tmp, then kill), and
    ``recovery_crash`` (crash the recovery replay itself, ``count``
    times) events; kernel faults and submissions flow through
    :meth:`ShardSupervisor.apply` so any provoked death heals in place.
    Returns ``(service, supervisor, stats)`` — the supervisor is *not*
    closed, so callers can assert on its journal before closing.

    Convergence: when every recovery eventually succeeds (finite
    ``recovery_crash`` budgets, ``max_restarts`` large enough), the run
    ends byte-identical — journals, metrics, schedule — to a fault-free
    run of the same timeline, with zero operator calls.  The chaos tests
    assert exactly that.
    """
    plan = plan if plan is not None else FaultPlan()
    armed = plan.recovery_crashes()

    def recovery_factory(shard: int) -> Optional[Callable[[str], Journal]]:
        fail_at = armed.get(shard)
        if not fail_at:
            return None

        def make(path: str) -> Journal:
            # The shared dict survives across attempts: fired entries
            # stay popped, later ones stay armed.
            return FaultyJournal(path, truncate=True, sync=False, fail_at=fail_at)

        return make

    supervisor = ShardSupervisor(
        service,
        seed=seed,
        max_restarts=max_restarts,
        recovery_journal_factory=recovery_factory if armed else None,
    )
    stats: Dict[str, Any] = {
        "kills": 0,
        "torn_kills": 0,
        "skipped_kills": 0,
        "snapshot_corruptions": 0,
        "snapshot_crashes": 0,
    }
    for item in supervised_timeline(requests, plan):
        tag, _t, payload = item
        if tag in ("shard_kill", "snapshot_corrupt", "crash_in_snapshot"):
            sid = int(payload.target)
            if sid not in service.kernels or service.journal_dir is None:
                stats["skipped_kills"] += 1
                continue
            journal_path = service.journal_dir / shard_journal_name(sid)
            if tag == "snapshot_corrupt":
                if _corrupt_newest_snapshot(journal_path):
                    stats["snapshot_corruptions"] += 1
                continue
            if tag == "crash_in_snapshot":
                _litter_snapshot_tmp(
                    journal_path, service.kernels[sid].journal.seq  # type: ignore[union-attr]
                )
                stats["snapshot_crashes"] += 1
                supervisor.kill_shard(sid, torn=False)
                stats["kills"] += 1
                continue
            torn = payload.mode == "torn"
            supervisor.kill_shard(sid, torn=torn)
            stats["kills"] += 1
            if torn:
                stats["torn_kills"] += 1
            continue
        supervisor.apply(item)
    if advance_to is not None:
        supervisor.call("advance", advance_to)
    if drain:
        supervisor.call("drain")
    return service, supervisor, stats
