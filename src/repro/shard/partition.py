"""Spatial grid partitioning of the field into shard cells.

A :class:`GridPartition` cuts the rectangular field into ``rows x cols``
cells, one per shard, with ``rows`` the largest divisor of ``n_shards``
not exceeding ``floor(sqrt(n_shards))`` — so the cell count equals the
shard count exactly, and doubling a square count *refines* the previous
grid (2 shards → 1x2, 4 shards → 2x2: every 4-grid cell nests inside a
2-grid cell).  Shard ids are row-major, so they are a pure function of
``(field, n_shards)``.

Each cell can be expanded by a configurable **halo**: a device within
*halo* meters of a neighboring cell is a *border* device and lists that
neighbor among its candidate shards.  :meth:`GridPartition.candidate_shards`
returns the (sorted) shards whose halo-expanded cell contains a point —
exactly one for an interior device, 2–4 for a border/corner one — which
is the router's admission domain (see :mod:`repro.shard.router`).

Chargers are *owned*, never shared: :meth:`assign_chargers` places each
charger in the single cell containing it (no halo), because a charger's
live coalition state must have exactly one authoritative kernel.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..geometry import Field, Point
from ..wpt import Charger

__all__ = ["GridPartition", "grid_shape"]


def grid_shape(n_shards: int) -> Tuple[int, int]:
    """``(rows, cols)`` for *n_shards* cells: rows is the largest divisor
    of ``n_shards`` at most ``floor(sqrt(n_shards))``.

    Guarantees ``rows * cols == n_shards`` (every shard owns exactly one
    cell) and, for square counts, that each power-of-four step refines
    the previous grid.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    rows = 1
    for d in range(1, int(math.isqrt(n_shards)) + 1):
        if n_shards % d == 0:
            rows = d
    return rows, n_shards // rows


class GridPartition:
    """A row-major grid of ``n_shards`` cells over *field*, with a halo."""

    def __init__(self, field: Field, n_shards: int, halo: float = 0.0):
        if not (math.isfinite(halo) and halo >= 0.0):
            raise ConfigurationError(
                f"halo must be finite and nonnegative, got {halo}"
            )
        self.field = field
        self.n_shards = int(n_shards)
        self.halo = float(halo)
        self.rows, self.cols = grid_shape(self.n_shards)
        self._cell_w = field.width / self.cols
        self._cell_h = field.height / self.rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridPartition({self.rows}x{self.cols} over "
            f"{self.field.width:g}x{self.field.height:g}, halo={self.halo:g})"
        )

    def bounds(self, shard: int) -> Tuple[float, float, float, float]:
        """``(x0, y0, x1, y1)`` of shard *shard*'s cell (halo excluded)."""
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard id must be in [0, {self.n_shards}), got {shard}"
            )
        r, c = divmod(shard, self.cols)
        return (
            c * self._cell_w,
            r * self._cell_h,
            (c + 1) * self._cell_w,
            (r + 1) * self._cell_h,
        )

    def cell_of(self, point: Point) -> int:
        """The shard *owning* a point (its cell, no halo).

        Points on a shared edge belong to the higher cell (``x / w``
        floors into it), and points outside the field clamp to the
        nearest cell — the partition must place everything somewhere.
        """
        c = min(max(int(point.x / self._cell_w), 0), self.cols - 1)
        r = min(max(int(point.y / self._cell_h), 0), self.rows - 1)
        return r * self.cols + c

    def candidate_shards(self, point: Point) -> List[int]:
        """Sorted shards whose halo-expanded cell contains *point*.

        Always includes :meth:`cell_of`; a device farther than *halo*
        from every cell edge gets exactly one candidate (interior), one
        near an edge gets 2, near a corner up to 4.
        """
        out: List[int] = []
        for shard in range(self.n_shards):
            x0, y0, x1, y1 = self.bounds(shard)
            if (
                x0 - self.halo <= point.x <= x1 + self.halo
                and y0 - self.halo <= point.y <= y1 + self.halo
            ):
                out.append(shard)
        if not out:  # point outside the field, beyond every halo
            out.append(self.cell_of(point))
        return out

    def is_interior(self, point: Point) -> bool:
        """True when *point* has a single candidate shard."""
        return len(self.candidate_shards(point)) == 1

    def assign_chargers(
        self, chargers: Sequence[Charger]
    ) -> Dict[int, List[Charger]]:
        """``{shard id: chargers owned}`` — by owner cell, halo ignored.

        Input order is preserved within each shard, so a shard's kernel
        sees its chargers in the same relative order the unsharded
        service would — charger-index tie-breaks inside a shard stay
        consistent.  Every shard id appears, possibly with an empty list.
        """
        owned: Dict[int, List[Charger]] = {s: [] for s in range(self.n_shards)}
        for charger in chargers:
            owned[self.cell_of(charger.position)].append(charger)
        return owned
