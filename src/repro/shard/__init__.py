"""repro.shard — the sharded multi-kernel charging service.

A single :class:`~repro.service.kernel.ChargingService` kernel is a
single-process ceiling (``BENCH_service.json``); this package scales the
service *out* by spatial decomposition, the same structure the
multi-charger literature gives the field: N fully independent kernels —
each with its own journal, logical clock, incremental planner, and
metrics — behind a deterministic spatial router.

Layout:

- :mod:`.partition` — :class:`GridPartition`: the field cut into one
  cell per shard (row-major, with a configurable overlap *halo*);
- :mod:`.router` — :class:`SpatialRouter`: interior devices go to their
  owner cell untouched, border devices are quoted against each candidate
  shard and admitted to the cheapest (ties → lower shard id); routing is
  a pure function of the inputs, so replay is byte-identical;
- :mod:`.service` — :class:`ShardedService`: the kernel-compatible
  facade (submit/advance/drain/faults), per-shard journals + manifest,
  merged metrics and schedules, whole-service and per-shard recovery;
- :mod:`.tasks` — timeline partitioning and per-shard replay tasks over
  the PR 2 executor (serial == parallel, byte-identical);
- :mod:`.driver` — :func:`drive_sharded`: chaos driving with
  ``shard_kill`` fault events (kill + recover one shard, others keep
  serving);
- :mod:`.supervisor` — :class:`ShardSupervisor` /
  :func:`drive_supervised`: self-healing — automatic failover with
  seed-derived backoff, crash-loop escalation into degraded-mode
  routing, and a checksummed supervision journal (see
  ``docs/RECOVERY.md``).

Degenerate-case guarantee: ``n_shards=1`` is byte-identical — journal,
metrics snapshot, final schedule — to the unsharded service on every
input stream.  See ``docs/SHARDING.md``.
"""

from .driver import drive_sharded, sharded_timeline
from .partition import GridPartition, grid_shape
from .router import SpatialRouter
from .service import ShardedService, merge_final_schedules, shard_journal_name
from .supervisor import ShardSupervisor, drive_supervised, supervised_timeline
from .tasks import SHARD_REPLAY_KIND, partition_timeline, replay_sharded

__all__ = [
    "GridPartition",
    "grid_shape",
    "SpatialRouter",
    "ShardedService",
    "merge_final_schedules",
    "shard_journal_name",
    "SHARD_REPLAY_KIND",
    "partition_timeline",
    "replay_sharded",
    "drive_sharded",
    "sharded_timeline",
    "ShardSupervisor",
    "drive_supervised",
    "supervised_timeline",
]
