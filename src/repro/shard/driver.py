"""Chaos driving for the sharded service: shard kills as fault events.

:func:`drive_sharded` generalizes :func:`repro.faults.driver.drive` to a
:class:`~repro.shard.service.ShardedService`, consuming the plan's
``shard_kill`` events alongside the kernel faults.  A shard kill is
*not* a kernel input — it never touches any journal — so its only effect
is positional: the killed shard had processed exactly the timeline
prefix before the kill, is recovered from its journal on the spot
(:meth:`~repro.shard.service.ShardedService.kill_and_recover_shard`),
and the rest of the timeline continues.  The other shards never notice.

A **clean** kill needs nothing more: recovery replays the full journal,
so the kernel resumes in exactly its pre-kill state.  A **torn** kill
(``mode="torn"``) first rips bytes off the journal tail — the recovered
kernel restarts from the longest valid prefix, and the driver re-feeds
the already-processed timeline through the facade: every kernel input is
idempotent, so the re-feed no-ops through all surviving state (on every
shard) and regenerates exactly the lost records.  Either way the run
converges byte-identical to a fault-free run of the same timeline — the
acceptance property the chaos tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults.driver import apply_event, merge_timeline
from ..faults.plan import FaultPlan
from ..service.request import ChargingRequest
from .service import ShardedService

__all__ = ["drive_sharded", "sharded_timeline"]

#: ``("submit"|"fault"|"shard_kill", t, payload)``.
ShardTimelineItem = Tuple[str, float, Any]


def sharded_timeline(
    requests: Sequence[ChargingRequest], plan: FaultPlan
) -> List[ShardTimelineItem]:
    """The kernel timeline with ``shard_kill`` events woven in.

    Kills sort by time with priority 2 — at equal times submissions come
    first, then kernel faults, then kills — so the killed shard has
    processed every same-instant input before dying.  Total and
    deterministic, like :func:`~repro.faults.driver.merge_timeline`.
    """
    keyed: List[Tuple[Tuple[float, int, str, str], ShardTimelineItem]] = []
    for item in merge_timeline(requests, plan):
        tag, t, payload = item
        if tag == "submit":
            key = (t, 0, "submit", payload.request_id)
        else:
            key = (t, 1, payload.kind, payload.target)
        keyed.append((key, item))
    for event in plan.shard_kills():
        key = (float(event.t), 2, event.kind, event.target)
        keyed.append((key, ("shard_kill", float(event.t), event)))
    keyed.sort(key=lambda pair: pair[0])
    return [item for _key, item in keyed]


def drive_sharded(
    service: ShardedService,
    requests: Sequence[ChargingRequest],
    plan: Optional[FaultPlan] = None,
    drain: bool = True,
    advance_to: Optional[float] = None,
) -> Tuple[ShardedService, Dict[str, Any]]:
    """Feed requests + faults + shard kills through the facade.

    Returns ``(service, stats)`` with the kill/recovery tally.  Kills
    targeting shards that own no chargers (no kernel to kill) are
    counted as skipped — the partition decides which shards exist, not
    the plan.
    """
    timeline = sharded_timeline(
        requests, plan if plan is not None else FaultPlan()
    )
    stats: Dict[str, Any] = {"kills": 0, "torn_kills": 0, "skipped_kills": 0}
    processed: List[ShardTimelineItem] = []
    for item in timeline:
        tag, _t, payload = item
        if tag == "shard_kill":
            sid = int(payload.target)
            if sid not in service.kernels:
                stats["skipped_kills"] += 1
                continue
            torn = payload.mode == "torn"
            service.kill_and_recover_shard(sid, torn=torn)
            stats["kills"] += 1
            if torn:
                stats["torn_kills"] += 1
                # The tail loss may have eaten journaled inputs; re-feed
                # the whole processed prefix — idempotent everywhere, it
                # regenerates exactly the lost records on the torn shard.
                for prev in processed:
                    apply_event(service, prev)  # type: ignore[arg-type]
            continue
        apply_event(service, item)  # type: ignore[arg-type]
        processed.append(item)
    if advance_to is not None:
        service.advance(advance_to)
    if drain:
        service.drain()
    return service, stats
