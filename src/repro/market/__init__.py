"""Operator economics (extension): revenue accounting and price competition."""

from .competition import (
    CompetitionConfig,
    CompetitionResult,
    best_response_competition,
)
from .operator import charger_revenues, charger_utilization, with_base_price

__all__ = [
    "charger_revenues",
    "charger_utilization",
    "with_base_price",
    "CompetitionConfig",
    "CompetitionResult",
    "best_response_competition",
]
