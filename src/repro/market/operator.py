"""Operator-side accounting: revenue and utilization of a charging service.

The paper frames charging as a *commercial* service; this module provides
the seller's view of a schedule — who earned what — which the price-
competition dynamics in :mod:`.competition` optimize over.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..core import CCSInstance, Schedule
from ..wpt import Charger

__all__ = ["charger_revenues", "charger_utilization", "with_base_price"]


def charger_revenues(schedule: Schedule, instance: CCSInstance) -> List[float]:
    """Revenue each charger collects under *schedule* (indexed like the instance)."""
    revenues = [0.0] * instance.n_chargers
    for session in schedule.sessions:
        revenues[session.charger] += instance.charging_price(
            session.members, session.charger
        )
    return revenues


def charger_utilization(schedule: Schedule, instance: CCSInstance) -> List[int]:
    """Devices served by each charger under *schedule*."""
    served = [0] * instance.n_chargers
    for session in schedule.sessions:
        served[session.charger] += session.size
    return served


def with_base_price(charger: Charger, base: float) -> Charger:
    """A copy of *charger* whose tariff has the given session base price.

    Only defined for tariffs with a replaceable ``base`` field (all
    built-in tariffs); the competition dynamics adjust base fees, which is
    the price dimension devices respond to most directly.
    """
    if base < 0:
        raise ValueError(f"base price must be nonnegative, got {base}")
    tariff = dataclasses.replace(charger.tariff, base=base)
    return dataclasses.replace(charger, tariff=tariff)
