"""Price competition between charging-service operators.

The paper's service model has one implicit market question: what base fee
*should* an operator post, given that devices respond by re-forming
coalitions?  This module answers it with **best-response dynamics**:

1. Operators take turns.  The active operator evaluates each candidate
   base fee by re-running the device-side scheduler (CCSGA by default —
   the devices' equilibrium response) and measuring its own revenue.
2. It posts the revenue-maximizing fee; ties keep the current fee, and a
   new fee must beat the incumbent revenue by a relative margin
   (``improvement_tol``) so the dynamics cannot dither on noise.
3. Rounds repeat until a full round changes no price — a pure-strategy
   price equilibrium of the posted-price game — or ``max_rounds`` hits.

The result records the full price/revenue trajectory, so experiments can
show the classic outcome: competition compresses fees, and device-side
cooperation strengthens operators with good locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..core import CCSInstance, Schedule, ccsga, comprehensive_cost
from ..errors import ConfigurationError
from .operator import charger_revenues, with_base_price

__all__ = ["CompetitionConfig", "CompetitionResult", "best_response_competition"]


def _default_device_response(instance: CCSInstance) -> Schedule:
    return ccsga(instance, certify=False).schedule


@dataclass(frozen=True)
class CompetitionConfig:
    """Knobs of the posted-price best-response dynamics."""

    candidate_bases: Tuple[float, ...] = (0.0, 10.0, 20.0, 30.0, 45.0, 60.0)
    max_rounds: int = 10
    improvement_tol: float = 1e-6
    device_response: Callable[[CCSInstance], Schedule] = _default_device_response

    def __post_init__(self) -> None:
        if not self.candidate_bases:
            raise ConfigurationError("need at least one candidate base price")
        if any(b < 0 for b in self.candidate_bases):
            raise ConfigurationError("candidate base prices must be nonnegative")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")


@dataclass
class CompetitionResult:
    """Outcome of one competition run."""

    final_instance: CCSInstance
    final_schedule: Schedule
    price_history: List[List[float]] = field(default_factory=list)
    revenue_history: List[List[float]] = field(default_factory=list)
    consumer_cost_history: List[float] = field(default_factory=list)
    rounds: int = 0
    converged: bool = False

    @property
    def final_prices(self) -> List[float]:
        """Posted base fees at the end of the dynamics."""
        return self.price_history[-1]

    @property
    def final_revenues(self) -> List[float]:
        """Operator revenues at the end of the dynamics."""
        return self.revenue_history[-1]


def _snapshot(instance: CCSInstance, config: CompetitionConfig, result: CompetitionResult) -> Schedule:
    schedule = config.device_response(instance)
    result.price_history.append([c.tariff.base for c in instance.chargers])
    result.revenue_history.append(charger_revenues(schedule, instance))
    result.consumer_cost_history.append(comprehensive_cost(schedule, instance))
    return schedule


def best_response_competition(
    instance: CCSInstance,
    config: Optional[CompetitionConfig] = None,
) -> CompetitionResult:
    """Run posted-price best-response dynamics from *instance*'s tariffs.

    Returns the trajectory and the final market state; ``converged`` is
    False only if ``max_rounds`` expired with prices still moving.
    """
    config = config or CompetitionConfig()
    result = CompetitionResult(final_instance=instance, final_schedule=None)
    schedule = _snapshot(instance, config, result)

    for round_idx in range(config.max_rounds):
        result.rounds = round_idx + 1
        changed = False
        for j in range(instance.n_chargers):
            current_base = instance.chargers[j].tariff.base
            current_revenue = charger_revenues(config.device_response(instance), instance)[j]
            best_base, best_revenue = current_base, current_revenue
            for base in config.candidate_bases:
                if base == current_base:
                    continue
                chargers = list(instance.chargers)
                chargers[j] = with_base_price(chargers[j], base)
                trial = CCSInstance(
                    devices=list(instance.devices),
                    chargers=chargers,
                    mobility=instance.mobility,
                    field_area=instance.field_area,
                )
                revenue = charger_revenues(config.device_response(trial), trial)[j]
                if revenue > best_revenue * (1.0 + config.improvement_tol) + 1e-12:
                    best_base, best_revenue = base, revenue
            if best_base != current_base:
                chargers = list(instance.chargers)
                chargers[j] = with_base_price(chargers[j], best_base)
                instance = CCSInstance(
                    devices=list(instance.devices),
                    chargers=chargers,
                    mobility=instance.mobility,
                    field_area=instance.field_area,
                )
                changed = True
        schedule = _snapshot(instance, config, result)
        if not changed:
            result.converged = True
            break

    result.final_instance = instance
    result.final_schedule = schedule
    return result
