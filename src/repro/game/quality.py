"""Equilibrium quality: empirical price of anarchy and stability.

CCSGA converges to *a* pure Nash equilibrium, but the game usually has
many; how bad can the worst one be, and how good the best?  This module
samples equilibria by rerunning the dynamics under random device orders
and reports

- **price of anarchy (PoA)**: worst sampled NE cost / optimal cost, and
- **price of stability (PoS)**: best sampled NE cost / optimal cost,

both lower bounds on the true ratios (sampling can miss extreme
equilibria, never invent them).  For instances beyond the exact solver's
reach, the certified lower bound from :mod:`repro.core.bounds` replaces
OPT, making the reported PoA an upper-bound-flavoured estimate — the
``baseline`` field records which was used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from typing import TYPE_CHECKING

from ..rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core import CCSInstance
    from ..core.costsharing import CostSharingScheme

# NOTE: repro.core imports repro.game (CCSGA uses the switch dynamics), so
# this module pulls its core dependencies lazily inside the functions to
# keep the package import graph acyclic.

__all__ = ["EquilibriumQuality", "sample_equilibria", "equilibrium_quality"]


@dataclass(frozen=True)
class EquilibriumQuality:
    """Sampled equilibrium-cost statistics against an optimality baseline."""

    ne_costs: tuple
    baseline_cost: float
    baseline: str  # "optimal" or "lower-bound"

    @property
    def price_of_anarchy(self) -> float:
        """Worst sampled equilibrium cost over the baseline."""
        return max(self.ne_costs) / self.baseline_cost

    @property
    def price_of_stability(self) -> float:
        """Best sampled equilibrium cost over the baseline."""
        return min(self.ne_costs) / self.baseline_cost

    @property
    def spread(self) -> float:
        """Relative gap between worst and best sampled equilibrium."""
        return (max(self.ne_costs) - min(self.ne_costs)) / min(self.ne_costs)


def sample_equilibria(
    instance: "CCSInstance",
    scheme: Optional["CostSharingScheme"] = None,
    samples: int = 10,
    seed: int = 0,
) -> List[float]:
    """Costs of *samples* certified Nash equilibria under random sweep orders."""
    from ..core import ccsga, comprehensive_cost
    from ..core.costsharing import EgalitarianSharing

    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    scheme = scheme if scheme is not None else EgalitarianSharing()
    master = ensure_rng(seed)
    costs = []
    for _ in range(samples):
        run = ccsga(instance, scheme=scheme, rng=master, certify=True)
        if not run.nash_certified:
            raise AssertionError("sampled terminal state failed NE certification")
        costs.append(comprehensive_cost(run.schedule, instance))
    return costs


def equilibrium_quality(
    instance: "CCSInstance",
    scheme: Optional["CostSharingScheme"] = None,
    samples: int = 10,
    seed: int = 0,
    exact_limit: int = 14,
) -> EquilibriumQuality:
    """Empirical PoA/PoS of the CCS coalition game on *instance*.

    Uses the exact optimum when the instance has at most *exact_limit*
    devices and the certified lower bound beyond that.
    """
    from ..core import comprehensive_cost, optimal_schedule
    from ..core.bounds import lower_bound

    costs = sample_equilibria(instance, scheme=scheme, samples=samples, seed=seed)
    if instance.n_devices <= exact_limit:
        baseline_cost = comprehensive_cost(optimal_schedule(instance), instance)
        baseline = "optimal"
    else:
        baseline_cost = lower_bound(instance).total
        baseline = "lower-bound"
    return EquilibriumQuality(
        ne_costs=tuple(costs), baseline_cost=baseline_cost, baseline=baseline
    )
