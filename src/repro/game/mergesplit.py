"""Merge-and-split coalition formation (extension).

Switch dynamics (CCSGA) move one device at a time.  The other classical
coalition-formation operator pair acts on whole coalitions:

- **merge**: two coalitions fuse (at the better of their chargers) when
  the merged session is feasible and *every* member weakly lowers its
  individual cost, at least one strictly (the Pareto order of the
  merge-and-split literature);
- **split**: one coalition breaks into two (each at its best admitting
  charger) under the same Pareto condition.

Convergence: under any budget-balanced sharing scheme, the sum of the
members' individual costs equals the total comprehensive cost, so a
Pareto improvement (nobody worse, someone strictly better) strictly
decreases the total.  Total cost is therefore an exact potential of these
dynamics too: no partition repeats, the partition space is finite, and
the process terminates in a **D_hp-stable** partition (no Pareto-
improving merge or split exists).

The split search is exponential in coalition size in general; we bound it
by enumerating 2-partitions only for coalitions up to
``max_split_search`` members and first-fit beyond, documented on the
runner.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["MergeSplitResult", "merge_and_split"]


@dataclass(frozen=True)
class MergeSplitResult:
    """Outcome of the merge-and-split dynamics."""

    schedule: object  # repro.core.Schedule (late import keeps the graph acyclic)
    merges: int
    splits: int
    rounds: int
    stable: bool
    total_cost: float


def _member_costs_of(instance, scheme, members: Sequence[int], charger: int) -> Dict[int, float]:
    shares = scheme.shares(instance, sorted(members), charger)
    return {
        i: shares[i] + instance.moving_cost(i, charger) for i in members
    }


def _best_charger(instance, members: Sequence[int]) -> Optional[int]:
    admitting = [
        j for j in range(instance.n_chargers)
        if instance.chargers[j].admits(len(members))
    ]
    if not admitting:
        return None
    return min(admitting, key=lambda j: (instance.group_cost(members, j), j))


def _pareto_improves(old: Dict[int, float], new: Dict[int, float], tol: float) -> bool:
    if any(new[i] > old[i] + tol for i in old):
        return False
    return any(new[i] < old[i] - tol for i in old)


def merge_and_split(
    instance,
    scheme=None,
    start=None,
    max_rounds: int = 1000,
    max_split_search: int = 10,
    tol: float = 1e-9,
) -> MergeSplitResult:
    """Run merge-and-split dynamics to a D_hp-stable partition.

    Parameters
    ----------
    instance:
        A :class:`~repro.core.instance.CCSInstance`.
    scheme:
        Intragroup cost-sharing scheme (default egalitarian).
    start:
        Optional :class:`~repro.core.schedule.Schedule` start state;
        default is the noncooperative singleton structure.
    max_split_search:
        Coalitions up to this size are split-searched exhaustively over
        all 2-partitions; larger ones only try peeling single members
        (exact 2-partition search is exponential).
    """
    from ..core import Schedule, Session, noncooperation, validate_schedule
    from ..core.costsharing import EgalitarianSharing

    scheme = scheme if scheme is not None else EgalitarianSharing()
    base = start if start is not None else noncooperation(instance)
    validate_schedule(base, instance)
    groups: List[Tuple[int, frozenset]] = [
        (s.charger, frozenset(s.members)) for s in base.sessions
    ]

    merges = splits = rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        changed = False

        # --- merge pass: first Pareto-improving fusion found, repeat.
        merged = True
        while merged:
            merged = False
            for a in range(len(groups)):
                for b in range(a + 1, len(groups)):
                    ca, ma = groups[a]
                    cb, mb = groups[b]
                    union = ma | mb
                    target = _best_charger(instance, sorted(union))
                    if target is None:
                        continue
                    old = {
                        **_member_costs_of(instance, scheme, ma, ca),
                        **_member_costs_of(instance, scheme, mb, cb),
                    }
                    new = _member_costs_of(instance, scheme, union, target)
                    if _pareto_improves(old, new, tol):
                        groups = [g for k, g in enumerate(groups) if k not in (a, b)]
                        groups.append((target, union))
                        merges += 1
                        changed = True
                        merged = True
                        break
                if merged:
                    break

        # --- split pass: first Pareto-improving 2-partition found, repeat.
        split = True
        while split:
            split = False
            for k, (cj, members) in enumerate(groups):
                if len(members) < 2:
                    continue
                ordered = sorted(members)
                if len(ordered) <= max_split_search:
                    candidates = (
                        (frozenset(part), members - frozenset(part))
                        for r in range(1, len(ordered) // 2 + 1)
                        for part in itertools.combinations(ordered, r)
                    )
                else:
                    candidates = (
                        (frozenset({i}), members - {i}) for i in ordered
                    )
                old = _member_costs_of(instance, scheme, ordered, cj)
                for left, right in candidates:
                    cl = _best_charger(instance, sorted(left))
                    cr = _best_charger(instance, sorted(right))
                    if cl is None or cr is None:
                        continue
                    new = {
                        **_member_costs_of(instance, scheme, left, cl),
                        **_member_costs_of(instance, scheme, right, cr),
                    }
                    if _pareto_improves(old, new, tol):
                        groups = [g for kk, g in enumerate(groups) if kk != k]
                        groups.extend([(cl, left), (cr, right)])
                        splits += 1
                        changed = True
                        split = True
                        break
                if split:
                    break

        if not changed:
            schedule = Schedule(
                [Session(charger=c, members=m) for c, m in groups],
                solver="merge-split",
                metadata={"merges": float(merges), "splits": float(splits)},
            )
            validate_schedule(schedule, instance)
            from ..core import comprehensive_cost

            return MergeSplitResult(
                schedule=schedule,
                merges=merges,
                splits=splits,
                rounds=rounds,
                stable=True,
                total_cost=comprehensive_cost(schedule, instance),
            )

    # Budget exhausted: report honestly rather than pretending stability.
    schedule = Schedule(
        [Session(charger=c, members=m) for c, m in groups],
        solver="merge-split",
        metadata={"merges": float(merges), "splits": float(splits)},
    )
    validate_schedule(schedule, instance)
    from ..core import comprehensive_cost

    return MergeSplitResult(
        schedule=schedule,
        merges=merges,
        splits=splits,
        rounds=rounds,
        stable=False,
        total_cost=comprehensive_cost(schedule, instance),
    )
