"""Coalition-formation-game toolkit backing CCSGA."""

from .arraycore import ArrayState, StructureArrayView, engine_supported
from .coalition import Coalition, CoalitionStructure
from .equilibrium import blocking_moves, is_nash_equilibrium
from .incentives import (
    IncentiveProfile,
    MisreportOutcome,
    incentive_profile,
    misreport_gain,
)
from .mergesplit import MergeSplitResult, merge_and_split
from .potential import PotentialTrace
from .quality import EquilibriumQuality, equilibrium_quality, sample_equilibria
from .switching import (
    SelfishSwitch,
    SociallyAwareSwitch,
    SwitchMove,
    SwitchRule,
    candidate_moves,
)

__all__ = [
    "ArrayState",
    "StructureArrayView",
    "engine_supported",
    "Coalition",
    "CoalitionStructure",
    "SwitchMove",
    "SwitchRule",
    "SelfishSwitch",
    "SociallyAwareSwitch",
    "candidate_moves",
    "is_nash_equilibrium",
    "blocking_moves",
    "PotentialTrace",
    "MergeSplitResult",
    "MisreportOutcome",
    "misreport_gain",
    "IncentiveProfile",
    "incentive_profile",
    "merge_and_split",
    "EquilibriumQuality",
    "equilibrium_quality",
    "sample_equilibria",
]
