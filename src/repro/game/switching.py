"""Switch rules — the deviation semantics of the coalition formation game.

A switch rule decides which unilateral moves a device is *permitted* to
make from the current coalition structure.  Two rules from the coalition-
formation literature:

- :class:`SociallyAwareSwitch` (CCSGA's default): a move is permitted when
  it strictly lowers the device's own cost **and** strictly lowers the
  total comprehensive cost.  The total cost is then an exact potential:
  every permitted switch decreases it, no structure repeats, and since the
  structure space is finite the dynamics reach a state with no permitted
  switch — a pure Nash equilibrium of the induced game.  This is the
  convergence argument behind the abstract's "CCSGA finally converges to a
  pure Nash Equilibrium".
- :class:`SelfishSwitch`: only the device's own cost must drop.  Under
  egalitarian sharing of submodular costs such best-response dynamics can
  cycle; CCSGA's driver therefore pairs this rule with cycle detection.
  Kept for the ablation comparing the two dynamics.

The candidate scan is the hot path of a CCSGA sweep and runs on the
coalition structure's incremental-cost engine: the cost of *leaving* the
current coalition is computed once per device and reused across every
contemplated destination, each *join* is priced with a single tariff
evaluation on the target's cached aggregates, and the found-a-singleton
scan reads one precomputed row of the singleton-cost matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..numeric import DEFAULT_REL_TOL
from .coalition import CoalitionStructure

__all__ = ["SwitchMove", "SwitchRule", "SelfishSwitch", "SociallyAwareSwitch"]


@dataclass(frozen=True)
class SwitchMove:
    """A contemplated deviation: *device* moves to *target* (None = new singleton).

    ``charger`` is the charger of the destination coalition (or of the new
    singleton).  ``own_delta``/``total_delta`` are the cost changes the
    move would cause for the device and for the system.
    """

    device: int
    target: Optional[int]
    charger: int
    own_delta: float
    total_delta: float


def _scan_deltas(
    structure: CoalitionStructure, device: int
) -> Iterator[Tuple[float, float, Optional[int], int]]:
    """Fused candidate scan: yield ``(own_delta, total_delta, target, charger)``.

    One pass over live coalitions plus the charger axis, with exactly one
    tariff evaluation per candidate (the hypothetical session price after
    the join — shared between the device's new share and the system-cost
    delta).  Materializing :class:`SwitchMove` objects is left to callers
    so :meth:`SwitchRule.best_move` can screen thousands of rejected
    candidates without allocating.
    """
    instance = structure.instance
    scheme = structure.scheme
    own_now = structure.individual_cost(device)
    total_now = structure.total_cost
    src = structure.coalition_of(device)
    leave = structure.leave_delta(device)
    fast_share = getattr(scheme, "share_of", None)
    demand = instance._demand_list[device]
    moving = instance._moving_cost
    chargers = instance.chargers
    # Charger-availability hook (fault semantics): a live service plan
    # (`repro.service.plan.PlanInstance`) exposes `charger_available` and
    # down chargers must never receive moves; a frozen CCSInstance has no
    # such notion, and the batch solvers keep the unguarded fast path.
    available = getattr(instance, "charger_available", None)

    for coalition in list(structure.coalitions()):
        if coalition is src:
            continue
        j = coalition.charger
        if available is not None and not available(j):
            continue
        size = len(coalition.members)
        if not chargers[j].admits(size + 1):
            continue
        new_total = coalition.total_demand + demand
        new_price = instance.charging_price_for_demand(new_total, j)
        move_ij = float(moving[device, j])
        if fast_share is not None:
            share = fast_share(instance, device, size + 1, new_total, new_price)
        else:
            members = sorted(coalition.members | {device})
            share = scheme.shares(instance, members, j)[device]
        own_new = share + move_ij
        join = (new_price + (coalition.move_sum + move_ij)) - coalition.group_cost
        total_new = total_now + leave + join
        yield own_new - own_now, total_new - total_now, coalition.cid, j

    # Founding a singleton at charger j adds exactly the singleton group
    # cost — one vectorized row read over the precomputed matrix covers
    # every charger's total-cost delta at once.
    singleton_prices = instance.singleton_price_matrix()[device]
    total_new_row = total_now + leave + instance.singleton_cost_matrix()[device]
    singleton_already = src.size == 1
    for j in range(instance.n_chargers):
        if singleton_already and j == src.charger:
            continue  # identical structure, not a move
        if available is not None and not available(j):
            continue
        if fast_share is not None:
            share = fast_share(instance, device, 1, demand, float(singleton_prices[j]))
        else:
            share = scheme.shares(instance, [device], j)[device]
        own_new = share + float(moving[device, j])
        yield own_new - own_now, float(total_new_row[j]) - total_now, None, j


def candidate_moves(structure: CoalitionStructure, device: int) -> Iterator[SwitchMove]:
    """Enumerate every admissible deviation of *device* with its cost deltas.

    Candidates: joining any other live coalition with spare capacity, or
    founding a singleton at any charger.  Moves "to where I already am" are
    excluded.  Shared by every switch rule so they differ only in which
    moves they *permit*.
    """
    for own_delta, total_delta, target, charger in _scan_deltas(structure, device):
        yield SwitchMove(device, target, charger, own_delta, total_delta)


class SwitchRule:
    """Base class: a predicate over :class:`SwitchMove` plus a tolerance.

    ``tol`` guards against floating-point ping-pong: improvements smaller
    than ``tol`` do not count as improvements.

    ``has_potential`` declares that the dynamics under this rule admit an
    exact potential function, so no coalition structure can ever repeat.
    The CCSGA driver skips cycle-detection bookkeeping entirely for such
    rules; rules without the guarantee (the selfish ablation) are watched
    via the structure's O(1) Zobrist hash instead.
    """

    name = "abstract"
    has_potential = False

    def __init__(self, tol: float = DEFAULT_REL_TOL):
        if tol < 0:
            raise ValueError(f"tol must be nonnegative, got {tol}")
        self.tol = tol

    def permits(self, move: SwitchMove) -> bool:
        """True if the rule allows this deviation."""
        raise NotImplementedError

    def _permits_deltas(
        self,
        device: int,
        target: Optional[int],
        charger: int,
        own_delta: float,
        total_delta: float,
    ) -> bool:
        """Allocation-free permission check used by :meth:`best_move`.

        The built-in rules override this with a pure delta predicate;
        the default materializes a :class:`SwitchMove` and defers to
        :meth:`permits` so custom rules that only override ``permits``
        keep working.
        """
        return self.permits(SwitchMove(device, target, charger, own_delta, total_delta))

    def best_move(
        self, structure: CoalitionStructure, device: int
    ) -> Optional[SwitchMove]:
        """The permitted move minimizing the device's own cost, or ``None``.

        Ties break toward smaller own_delta, then joining existing
        coalitions over founding singletons, then lower charger index —
        deterministic so experiments are reproducible.
        """
        best_key = None
        best: Optional[Tuple[Optional[int], int, float, float]] = None
        for own_delta, total_delta, target, charger in _scan_deltas(structure, device):
            if not self._permits_deltas(device, target, charger, own_delta, total_delta):
                continue
            key = (own_delta, target is None, charger, -1 if target is None else target)
            if best_key is None or key < best_key:
                best_key = key
                best = (target, charger, own_delta, total_delta)
        if best is None:
            return None
        return SwitchMove(device, best[0], best[1], best[2], best[3])

    @staticmethod
    def _better(a: SwitchMove, b: SwitchMove) -> bool:
        key_a = (a.own_delta, a.target is None, a.charger, a.target if a.target is not None else -1)
        key_b = (b.own_delta, b.target is None, b.charger, b.target if b.target is not None else -1)
        return key_a < key_b


class SelfishSwitch(SwitchRule):
    """Permit any move that strictly lowers the device's own cost."""

    name = "selfish"

    def permits(self, move: SwitchMove) -> bool:
        return move.own_delta < -self.tol

    def _permits_deltas(
        self,
        device: int,
        target: Optional[int],
        charger: int,
        own_delta: float,
        total_delta: float,
    ) -> bool:
        return own_delta < -self.tol


class SociallyAwareSwitch(SwitchRule):
    """Permit moves lowering both the device's cost and the total cost.

    The conjunction makes total comprehensive cost an exact potential of
    the dynamics — the convergence engine of CCSGA (and why the driver
    needs no cycle detection under this rule: ``has_potential = True``).
    """

    name = "socially-aware"
    has_potential = True

    def permits(self, move: SwitchMove) -> bool:
        return move.own_delta < -self.tol and move.total_delta < -self.tol

    def _permits_deltas(
        self,
        device: int,
        target: Optional[int],
        charger: int,
        own_delta: float,
        total_delta: float,
    ) -> bool:
        return own_delta < -self.tol and total_delta < -self.tol
