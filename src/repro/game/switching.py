"""Switch rules — the deviation semantics of the coalition formation game.

A switch rule decides which unilateral moves a device is *permitted* to
make from the current coalition structure.  Two rules from the coalition-
formation literature:

- :class:`SociallyAwareSwitch` (CCSGA's default): a move is permitted when
  it strictly lowers the device's own cost **and** strictly lowers the
  total comprehensive cost.  The total cost is then an exact potential:
  every permitted switch decreases it, no structure repeats, and since the
  structure space is finite the dynamics reach a state with no permitted
  switch — a pure Nash equilibrium of the induced game.  This is the
  convergence argument behind the abstract's "CCSGA finally converges to a
  pure Nash Equilibrium".
- :class:`SelfishSwitch`: only the device's own cost must drop.  Under
  egalitarian sharing of submodular costs such best-response dynamics can
  cycle; CCSGA's driver therefore pairs this rule with cycle detection.
  Kept for the ablation comparing the two dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from .coalition import CoalitionStructure

__all__ = ["SwitchMove", "SwitchRule", "SelfishSwitch", "SociallyAwareSwitch"]


@dataclass(frozen=True)
class SwitchMove:
    """A contemplated deviation: *device* moves to *target* (None = new singleton).

    ``charger`` is the charger of the destination coalition (or of the new
    singleton).  ``own_delta``/``total_delta`` are the cost changes the
    move would cause for the device and for the system.
    """

    device: int
    target: Optional[int]
    charger: int
    own_delta: float
    total_delta: float


def candidate_moves(structure: CoalitionStructure, device: int) -> Iterator[SwitchMove]:
    """Enumerate every admissible deviation of *device* with its cost deltas.

    Candidates: joining any other live coalition with spare capacity, or
    founding a singleton at any charger.  Moves "to where I already am" are
    excluded.  Shared by every switch rule so they differ only in which
    moves they *permit*.
    """
    own_now = structure.individual_cost(device)
    total_now = structure.total_cost
    src = structure.coalition_of(device)

    for coalition in list(structure.coalitions()):
        if coalition is src:
            continue
        own_new = structure.cost_if_joined(device, coalition.cid, coalition.charger)
        if own_new == float("inf"):
            continue
        total_new = structure.total_cost_if_moved(device, coalition.cid, coalition.charger)
        yield SwitchMove(
            device, coalition.cid, coalition.charger,
            own_new - own_now, total_new - total_now,
        )

    singleton_already = src.size == 1
    for j in range(structure.instance.n_chargers):
        if singleton_already and j == src.charger:
            continue  # identical structure, not a move
        own_new = structure.cost_if_joined(device, None, j)
        total_new = structure.total_cost_if_moved(device, None, j)
        yield SwitchMove(device, None, j, own_new - own_now, total_new - total_now)


class SwitchRule:
    """Base class: a predicate over :class:`SwitchMove` plus a tolerance.

    ``tol`` guards against floating-point ping-pong: improvements smaller
    than ``tol`` do not count as improvements.
    """

    name = "abstract"

    def __init__(self, tol: float = 1e-9):
        if tol < 0:
            raise ValueError(f"tol must be nonnegative, got {tol}")
        self.tol = tol

    def permits(self, move: SwitchMove) -> bool:
        """True if the rule allows this deviation."""
        raise NotImplementedError

    def best_move(
        self, structure: CoalitionStructure, device: int
    ) -> Optional[SwitchMove]:
        """The permitted move minimizing the device's own cost, or ``None``.

        Ties break toward smaller own_delta, then joining existing
        coalitions over founding singletons, then lower charger index —
        deterministic so experiments are reproducible.
        """
        best: Optional[SwitchMove] = None
        for move in candidate_moves(structure, device):
            if not self.permits(move):
                continue
            if best is None or self._better(move, best):
                best = move
        return best

    @staticmethod
    def _better(a: SwitchMove, b: SwitchMove) -> bool:
        key_a = (a.own_delta, a.target is None, a.charger, a.target if a.target is not None else -1)
        key_b = (b.own_delta, b.target is None, b.charger, b.target if b.target is not None else -1)
        return key_a < key_b


class SelfishSwitch(SwitchRule):
    """Permit any move that strictly lowers the device's own cost."""

    name = "selfish"

    def permits(self, move: SwitchMove) -> bool:
        return move.own_delta < -self.tol


class SociallyAwareSwitch(SwitchRule):
    """Permit moves lowering both the device's cost and the total cost.

    The conjunction makes total comprehensive cost an exact potential of
    the dynamics — the convergence engine of CCSGA.
    """

    name = "socially-aware"

    def permits(self, move: SwitchMove) -> bool:
        return move.own_delta < -self.tol and move.total_delta < -self.tol
