"""Incentive analysis: can a device profit by misreporting its demand?

The service model bills devices through a cost-sharing scheme applied to
*reported* demands.  A strategic device might under-report (pay a smaller
share now, top up the shortfall privately later) or over-report (distort
the group price others share).  This module quantifies those incentives:

- a device reporting ``r = factor · d`` receives ``r`` joules in the
  cooperative round;
- a shortfall ``d − r > 0`` must be bought later in a **private** top-up
  session at the device's standalone rate (its cheapest solo
  price-plus-trip for the missing energy) — the realistic cost of lying
  low;
- surplus energy (``r > d``) is paid for but wasted (batteries clamp).

``misreport_gain`` searches a factor grid for one device's best deviation
against a fixed scheduler; ``incentive_profile`` aggregates over all
devices.  The fig-style comparison (bench ``bench_ext_incentives.py``)
shows the schemes differ: proportional sharing ties your bill to your
report and so rewards under-reporting more than egalitarian sharing does,
while both are disciplined by the private top-up price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..numeric import EXACT_ONE, is_exact

__all__ = ["MisreportOutcome", "misreport_gain", "IncentiveProfile", "incentive_profile"]

DEFAULT_FACTORS: Tuple[float, ...] = (0.25, 0.5, 0.75, 0.9, 1.1, 1.25, 1.5)


@dataclass(frozen=True)
class MisreportOutcome:
    """Best deviation found for one device."""

    device: int
    truthful_cost: float
    best_cost: float
    best_factor: float

    @property
    def gain(self) -> float:
        """Money saved by the best misreport (0 when truth is optimal)."""
        return max(0.0, self.truthful_cost - self.best_cost)

    @property
    def profitable(self) -> bool:
        """True if some tested misreport strictly beats truth-telling."""
        return self.gain > 1e-9


def _reported_instance(instance, device: int, factor: float):
    import dataclasses

    from ..core import CCSInstance

    devices = list(instance.devices)
    original = devices[device]
    devices[device] = dataclasses.replace(
        original, demand=max(original.demand * factor, 1e-9)
    )
    return CCSInstance(
        devices=devices,
        chargers=list(instance.chargers),
        mobility=instance.mobility,
        field_area=instance.field_area,
    )


def _topup_cost(instance, device: int, shortfall: float) -> float:
    """Cheapest private session buying *shortfall* joules for *device*."""
    import dataclasses

    from ..core import CCSInstance

    if shortfall <= 0:
        return 0.0
    devices = [dataclasses.replace(instance.devices[device], demand=shortfall)]
    solo = CCSInstance(
        devices=devices, chargers=list(instance.chargers), mobility=instance.mobility
    )
    return solo.standalone_cost(0)


def _realized_cost(instance, reported, device: int, factor: float, scheme, scheduler) -> float:
    from ..core import member_costs

    schedule = scheduler(reported)
    billed = member_costs(schedule, reported, scheme)[device]
    true_demand = instance.devices[device].demand
    shortfall = true_demand - true_demand * factor
    return billed + _topup_cost(instance, device, shortfall)


def misreport_gain(
    instance,
    device: int,
    scheme=None,
    scheduler: Optional[Callable] = None,
    factors: Sequence[float] = DEFAULT_FACTORS,
) -> MisreportOutcome:
    """Best demand-misreport for *device* against the given scheduler.

    The scheduler defaults to CCSGA (the equilibrium response); the scheme
    defaults to egalitarian.  Factors must be positive; 1.0 (truth) is
    always evaluated as the baseline.
    """
    from ..core import ccsga
    from ..core.costsharing import EgalitarianSharing

    if any(f <= 0 for f in factors):
        raise ValueError("misreport factors must be positive")
    scheme = scheme if scheme is not None else EgalitarianSharing()
    scheduler = scheduler or (lambda inst: ccsga(inst, certify=False).schedule)

    truthful = _realized_cost(instance, instance, device, 1.0, scheme, scheduler)
    best_cost, best_factor = truthful, 1.0
    for factor in factors:
        if is_exact(factor, EXACT_ONE):
            continue
        reported = _reported_instance(instance, device, factor)
        cost = _realized_cost(instance, reported, device, factor, scheme, scheduler)
        if cost < best_cost - 1e-12:
            best_cost, best_factor = cost, factor
    return MisreportOutcome(
        device=device,
        truthful_cost=truthful,
        best_cost=best_cost,
        best_factor=best_factor,
    )


@dataclass(frozen=True)
class IncentiveProfile:
    """Population-level misreporting incentives under one scheme."""

    outcomes: Tuple[MisreportOutcome, ...]

    @property
    def manipulable_fraction(self) -> float:
        """Fraction of devices with a strictly profitable misreport."""
        return sum(o.profitable for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_gain_pct(self) -> float:
        """Average gain as a percentage of truthful cost."""
        return 100.0 * sum(
            o.gain / o.truthful_cost for o in self.outcomes
        ) / len(self.outcomes)


def incentive_profile(
    instance,
    scheme=None,
    scheduler: Optional[Callable] = None,
    factors: Sequence[float] = DEFAULT_FACTORS,
) -> IncentiveProfile:
    """Run :func:`misreport_gain` for every device and aggregate."""
    outcomes = tuple(
        misreport_gain(instance, i, scheme=scheme, scheduler=scheduler, factors=factors)
        for i in range(instance.n_devices)
    )
    return IncentiveProfile(outcomes=outcomes)
