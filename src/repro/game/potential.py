"""Potential-function tracking for the game dynamics.

For the socially-aware rule the total comprehensive cost is an exact
potential; recording its trajectory gives the convergence curve (Fig 10)
and a machine-checkable monotonicity invariant for the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["PotentialTrace"]


@dataclass
class PotentialTrace:
    """The potential value after each applied switch, plus the start state."""

    values: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        """Append the potential observed after a switch (or at initialization)."""
        self.values.append(float(value))

    @property
    def n_switches(self) -> int:
        """Number of switches recorded (excludes the initial state)."""
        return max(0, len(self.values) - 1)

    @property
    def initial(self) -> float:
        """Potential of the start structure."""
        if not self.values:
            raise ValueError("empty trace")
        return self.values[0]

    @property
    def final(self) -> float:
        """Potential at convergence."""
        if not self.values:
            raise ValueError("empty trace")
        return self.values[-1]

    def is_strictly_decreasing(self, tol: float = 1e-12) -> bool:
        """True iff every recorded switch strictly lowered the potential.

        The defining property of an exact-potential dynamic; asserted by
        property tests on every CCSGA run under the socially-aware rule.
        """
        return all(
            b < a - tol for a, b in zip(self.values, self.values[1:])
        ) or len(self.values) <= 1

    def total_descent(self) -> float:
        """How much the potential dropped from start to convergence."""
        return self.initial - self.final
