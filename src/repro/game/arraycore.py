"""Array-native CCSGA engine: the vectorized coalition candidate scan.

The object engine (:mod:`.coalition` + :mod:`.switching`) evaluates a
device's candidate moves with a Python loop over live coalitions — fast
in *algorithmic* terms after the PR-1 incremental-cost work, but still
~1 µs of interpreter overhead per candidate, which caps throughput near
n ≈ 800.  This module stores the same state struct-of-arrays style and
evaluates **all** candidate moves of a scan with a handful of numpy ops:

====================  =========================================  =========
quantity              array (one row per live coalition)         dtype
====================  =========================================  =========
charger binding       ``_charger[0:k]``                          int64
coalition id          ``_cid[0:k]``                              int64
member count          ``_size[0:k]``                             int64
cached Σ demand       ``_demand[0:k]``                           float64
cached session price  ``_price[0:k]``                            float64
cached Σ moving cost  ``_move[0:k]``                             float64
====================  =========================================  =========

plus per-device state (``_dev_row``, demand list, the shared
moving-cost / singleton matrices of the instance).  Rows are kept
*packed*: deleting a coalition swap-removes its row, so every scan
operates on contiguous ``[0:k]`` views with no gather step.

**Bit-identity contract.**  :class:`ArrayState` must be observationally
indistinguishable from :class:`~repro.game.coalition.CoalitionStructure`
driving the same dynamics: the same permitted switch chosen for every
device (identical tie-breaks), the same cached aggregates, the same
total cost *to the last bit*, and the same Zobrist hash.  That is why

- every reduction with more than one float term mirrors the object
  engine's op order exactly (sorted-member Python-loop demand sums, the
  same numpy pairwise ``.sum()`` for move sums, the same
  ``(a + (b + c)) - (d + e)`` delta grouping);
- session prices come from :class:`~repro.wpt.vector.ChargerPriceTable`,
  whose vectorized tariff arithmetic is bitwise equal to the scalar
  path (both route pow through numpy — see
  :class:`~repro.wpt.pricing.PowerLawTariff`);
- candidate selection replicates ``SwitchRule.best_move``'s
  lexicographic key ``(own_delta, is_singleton, charger, cid)`` with an
  argmin chain instead of a first-strictly-smaller scan (the key is
  unique per candidate, so both find the same winner).

:class:`StructureArrayView` applies the same vectorized kernel to a live
*object* ``CoalitionStructure`` — the service's incremental planner uses
it so improvement/repair sweeps scan in numpy while placements and
journaling keep the object representation.

dtype discipline: everything float64 / int64; narrowing dtypes and
unordered reductions in this module are rejected by ccs-lint rule
CCS008.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence, Set, Tuple

import numpy as np

from ..core.costsharing import CostSharingScheme, share_from_aggregates
from ..core.schedule import Schedule, Session
from ..errors import ConfigurationError
from ..numeric import CACHE_REL_TOL, TOTAL_COST_REL_TOL
from ..wpt import Charger
from .coalition import CoalitionStructure, _charger_token, _device_token, _splitmix64
from .switching import SelfishSwitch, SociallyAwareSwitch, SwitchMove, SwitchRule

__all__ = [
    "ArrayState",
    "StructureArrayView",
    "engine_supported",
]


class _EngineInstance(Protocol):
    """The instance surface the array engine reads.

    Satisfied by :class:`~repro.core.instance.CCSInstance` and
    :class:`~repro.service.plan.PlanInstance`.
    """

    chargers: Sequence[Charger]

    @property
    def n_devices(self) -> int: ...

    @property
    def n_chargers(self) -> int: ...

    def charging_price_for_demand(self, total_demand: float, charger: int) -> float: ...

    def price_for_demand_vector(
        self, totals: np.ndarray, chargers_idx: np.ndarray
    ) -> np.ndarray: ...

    def singleton_price_matrix(self) -> np.ndarray: ...

    def singleton_cost_matrix(self) -> np.ndarray: ...


def engine_supported(
    instance: object, scheme: CostSharingScheme, rule: SwitchRule
) -> bool:
    """True when the array engine can reproduce the object engine exactly.

    Requires a cost-sharing scheme with both scalar and vectorized
    aggregate fast paths (the two paper schemes), one of the two built-in
    switch rules (exactly — a subclass may override ``permits``), and an
    instance exposing vectorized session pricing.
    """
    return (
        type(rule) in (SelfishSwitch, SociallyAwareSwitch)
        and getattr(scheme, "share_of", None) is not None
        and getattr(scheme, "share_of_vector", None) is not None
        and getattr(instance, "price_for_demand_vector", None) is not None
    )


def _capacity_vector(chargers: Sequence[Charger]) -> np.ndarray:
    """Per-charger slot capacities with ``None`` mapped to +inf."""
    return np.array(
        [float("inf") if c.capacity is None else float(c.capacity) for c in chargers],
        dtype=float,
    )


def _availability_mask(instance: object, m: int) -> Optional[np.ndarray]:
    """Gathered ``charger_available`` flags, or ``None`` without the hook.

    Mirrors the ``getattr`` probe in ``switching._scan_deltas``: frozen
    batch instances have no availability notion and skip the mask.
    """
    probe = getattr(instance, "charger_available", None)
    if probe is None:
        return None
    return np.fromiter((bool(probe(j)) for j in range(m)), dtype=bool, count=m)


def _kernel_best_move(
    *,
    device: int,
    rule: SwitchRule,
    scheme: CostSharingScheme,
    instance: _EngineInstance,
    demand_i: float,
    own_now: float,
    total_now: float,
    leave: float,
    src_charger: int,
    src_is_singleton: bool,
    exclude_cid: int,
    cand_cid: np.ndarray,
    cand_charger: np.ndarray,
    cand_size: np.ndarray,
    cand_demand: np.ndarray,
    cand_price: np.ndarray,
    cand_move_sum: np.ndarray,
    cap: np.ndarray,
    avail: Optional[np.ndarray],
    mv_row: np.ndarray,
    sp_row: np.ndarray,
    sc_row: np.ndarray,
) -> Optional[SwitchMove]:
    """Vectorized mirror of ``_scan_deltas`` + ``SwitchRule.best_move``.

    Evaluates every join candidate (rows of the ``cand_*`` arrays) and
    every found-a-singleton candidate at once, applies the rule's permit
    predicate as a boolean mask, and selects the winner by the object
    engine's exact lexicographic key.  Candidate rows that the object
    scan would *skip* (the source coalition, full coalitions, down
    chargers) are still computed but masked out of selection — cheaper
    than compressing six arrays, and numerically inert.
    """
    social = isinstance(rule, SociallyAwareSwitch)
    neg = -rule.tol
    best_key: Optional[Tuple[float, bool, int, int]] = None
    best: Optional[Tuple[Optional[int], int, float, float]] = None

    if cand_cid.shape[0]:
        ok = cand_cid != exclude_cid
        ok &= (cand_size + 1) <= cap[cand_charger]
        if avail is not None:
            ok &= avail[cand_charger]
        if ok.any():
            new_total = cand_demand + demand_i
            new_price = instance.price_for_demand_vector(new_total, cand_charger)
            move_ij = mv_row[cand_charger]
            share = scheme.share_of_vector(  # type: ignore[attr-defined]
                instance, device, cand_size + 1, new_total, new_price
            )
            own_delta = (share + move_ij) - own_now
            join = (new_price + (cand_move_sum + move_ij)) - (
                cand_price + cand_move_sum
            )
            total_delta = ((total_now + leave) + join) - total_now
            permit = own_delta < neg
            if social:
                permit &= total_delta < neg
            permit &= ok
            hits = np.flatnonzero(permit)
            if hits.size:
                od = own_delta[hits]
                sel = hits[od == od.min()]
                if sel.size > 1:
                    ch = cand_charger[sel]
                    sel = sel[ch == ch.min()]
                    if sel.size > 1:
                        cids = cand_cid[sel]
                        sel = sel[cids == cids.min()]
                win = int(sel[0])
                best_key = (
                    float(own_delta[win]),
                    False,
                    int(cand_charger[win]),
                    int(cand_cid[win]),
                )
                best = (
                    int(cand_cid[win]),
                    int(cand_charger[win]),
                    float(own_delta[win]),
                    float(total_delta[win]),
                )

    m = mv_row.shape[0]
    smask = np.ones(m, dtype=bool)
    if src_is_singleton:
        smask[src_charger] = False
    if avail is not None:
        smask &= avail
    js = np.flatnonzero(smask)
    if js.size:
        share_s = scheme.share_of_vector(  # type: ignore[attr-defined]
            instance, device, 1, demand_i, sp_row[js]
        )
        own_delta_s = (share_s + mv_row[js]) - own_now
        total_delta_s = ((total_now + leave) + sc_row[js]) - total_now
        permit_s = own_delta_s < neg
        if social:
            permit_s &= total_delta_s < neg
        hits = np.flatnonzero(permit_s)
        if hits.size:
            od = own_delta_s[hits]
            # flatnonzero yields ascending charger order, so the first
            # minimum is the lowest-charger tie-break winner.
            win = int(hits[od == od.min()][0])
            key = (float(od.min()), True, int(js[win]), -1)
            if best_key is None or key < best_key:
                best_key = key
                best = (
                    None,
                    int(js[win]),
                    float(own_delta_s[win]),
                    float(total_delta_s[win]),
                )

    if best is None:
        return None
    return SwitchMove(device, best[0], best[1], best[2], best[3])


def _kernel_best_insert(
    *,
    device: int,
    scheme: CostSharingScheme,
    instance: _EngineInstance,
    demand_i: float,
    cand_cid: np.ndarray,
    cand_charger: np.ndarray,
    cand_size: np.ndarray,
    cand_demand: np.ndarray,
    cap: np.ndarray,
    avail: Optional[np.ndarray],
    mv_row: np.ndarray,
    sc_row: np.ndarray,
) -> Optional[Tuple[Optional[int], int]]:
    """Vectorized mirror of ``IncrementalPlanner._insert``'s candidate scan.

    Returns ``(target_cid_or_None, charger)`` for the cheapest placement
    of an unplaced device under the planner's exact tie-break key
    ``(cost, join-before-singleton, charger, cid)``, or ``None`` when no
    candidate is feasible.
    """
    best_key: Optional[Tuple[float, int, int, int]] = None
    best: Optional[Tuple[Optional[int], int]] = None

    if cand_cid.shape[0]:
        ok = (cand_size + 1) <= cap[cand_charger]
        if avail is not None:
            ok &= avail[cand_charger]
        idx = np.flatnonzero(ok)
        if idx.size:
            sub_ch = cand_charger[idx]
            new_total = cand_demand[idx] + demand_i
            new_price = instance.price_for_demand_vector(new_total, sub_ch)
            share = scheme.share_of_vector(  # type: ignore[attr-defined]
                instance, device, cand_size[idx] + 1, new_total, new_price
            )
            cost = share + mv_row[sub_ch]
            sel = idx[cost == cost.min()]
            if sel.size > 1:
                ch = cand_charger[sel]
                sel = sel[ch == ch.min()]
                if sel.size > 1:
                    cids = cand_cid[sel]
                    sel = sel[cids == cids.min()]
            win = int(sel[0])
            local = int(np.flatnonzero(idx == win)[0])
            best_key = (
                float(cost[local]),
                0,
                int(cand_charger[win]),
                int(cand_cid[win]),
            )
            best = (int(cand_cid[win]), int(cand_charger[win]))

    m = mv_row.shape[0]
    smask = cap >= 1
    if avail is not None:
        smask = smask & avail
    js = np.flatnonzero(smask)
    if js.size:
        row = sc_row[js]
        win = int(js[np.flatnonzero(row == row.min())[0]])
        key = (float(row.min()), 1, win, -1)
        if best_key is None or key < best_key:
            best_key = key
            best = (None, win)

    return best


class ArrayState:
    """Struct-of-arrays coalition structure — the batch array engine.

    Maintains exactly the state of a
    :class:`~repro.game.coalition.CoalitionStructure` (cached per-
    coalition aggregates, Python-float running total cost, Zobrist hash,
    monotone coalition ids) in packed numpy rows, with
    :meth:`best_move` evaluating a device's whole candidate scan
    vectorized.  Bit-identical to the object engine by construction;
    ``tests/test_game_array.py`` proves it on every golden fixture and
    under hypothesis fuzz.
    """

    def __init__(self, instance: _EngineInstance, scheme: CostSharingScheme):
        self.instance = instance
        self.scheme = scheme
        n = instance.n_devices
        m = instance.n_chargers
        self._demand_list: List[float] = instance._demand_list  # type: ignore[attr-defined]
        self._moving: np.ndarray = instance._moving_cost  # type: ignore[attr-defined]
        self._sp = instance.singleton_price_matrix()
        self._sc = instance.singleton_cost_matrix()
        self._cap = _capacity_vector(instance.chargers)
        self._dev_token: List[int] = [_device_token(i) for i in range(n)]
        self._ch_token: List[int] = [_charger_token(j) for j in range(m)]

        alloc = max(16, n)
        self._charger = np.zeros(alloc, dtype=np.int64)
        self._cid = np.zeros(alloc, dtype=np.int64)
        self._size = np.zeros(alloc, dtype=np.int64)
        self._demand = np.zeros(alloc, dtype=float)
        self._price = np.zeros(alloc, dtype=float)
        self._move = np.zeros(alloc, dtype=float)
        self._members: List[Set[int]] = []
        self._fp: List[int] = []
        self._k = 0
        self._row_of_cid: Dict[int, int] = {}
        self._dev_row = np.full(n, -1, dtype=np.int64)
        self._next_cid = 0
        self._total_cost = 0.0
        self._zhash = 0

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def singletons(
        cls, instance: _EngineInstance, scheme: CostSharingScheme
    ) -> "ArrayState":
        """The noncooperative start state (mirrors the object engine)."""
        state = cls(instance, scheme)
        best = np.argmin(instance.singleton_cost_matrix(), axis=1)
        for i in range(instance.n_devices):
            state._create(int(best[i]), {i})
        return state

    @classmethod
    def from_schedule(
        cls,
        instance: _EngineInstance,
        scheme: CostSharingScheme,
        schedule: Schedule,
    ) -> "ArrayState":
        """Seed the array state from an existing schedule (warm start)."""
        state = cls(instance, scheme)
        for session in schedule.sessions:
            state._create(session.charger, set(session.members))
        return state

    # ------------------------------------------------------------------ #
    # row bookkeeping

    def _ensure_alloc(self, rows: int) -> None:
        alloc = self._charger.shape[0]
        if rows <= alloc:
            return
        grown = max(rows, alloc * 2)
        for name in ("_charger", "_cid", "_size"):
            arr = getattr(self, name)
            new = np.zeros(grown, dtype=np.int64)
            new[: self._k] = arr[: self._k]
            setattr(self, name, new)
        for name in ("_demand", "_price", "_move"):
            arr = getattr(self, name)
            new = np.zeros(grown, dtype=float)
            new[: self._k] = arr[: self._k]
            setattr(self, name, new)

    def _new_row(self, charger: int) -> int:
        self._ensure_alloc(self._k + 1)
        row = self._k
        self._k += 1
        cid = self._next_cid
        self._next_cid += 1
        self._charger[row] = charger
        self._cid[row] = cid
        self._size[row] = 0
        self._demand[row] = 0.0
        self._price[row] = 0.0
        self._move[row] = 0.0
        self._members.append(set())
        self._fp.append(0)
        self._row_of_cid[cid] = row
        return row

    def _delete_row(self, row: int) -> None:
        last = self._k - 1
        del self._row_of_cid[int(self._cid[row])]
        if row != last:
            for arr in (
                self._charger,
                self._cid,
                self._size,
                self._demand,
                self._price,
                self._move,
            ):
                arr[row] = arr[last]
            moved = self._members[last]
            self._members[row] = moved
            self._fp[row] = self._fp[last]
            self._row_of_cid[int(self._cid[row])] = row
            for i in moved:
                self._dev_row[i] = row
        self._members.pop()
        self._fp.pop()
        self._k = last

    def _group_cost(self, row: int) -> float:
        return float(self._price[row]) + float(self._move[row])

    def _key_row(self, row: int) -> int:
        return _splitmix64(self._fp[row] ^ self._ch_token[int(self._charger[row])])

    def _refresh(self, row: int) -> None:
        """Recompute a row's cached aggregates from its member set.

        Same summation discipline as the object engine's ``_refresh``:
        demand summed over the sorted member list in a Python loop, the
        move sum via the identical numpy pairwise reduction.
        """
        members = self._members[row]
        ordered = sorted(members)
        charger = int(self._charger[row])
        total = 0.0
        for i in ordered:
            total += self._demand_list[i]
        self._demand[row] = total
        self._price[row] = self.instance.charging_price_for_demand(total, charger)
        # ccs-lint: ignore[CCS008] -- deliberate: the object engine's
        # ``_refresh`` performs this exact pairwise reduction on the same
        # operands; sharing the call keeps both engines bit-identical.
        self._move[row] = float(self._moving[ordered, charger].sum())
        self._size[row] = len(ordered)

    def _create(self, charger: int, members: Set[int]) -> int:
        row = self._new_row(charger)
        fingerprint = 0
        for i in members:
            if int(self._dev_row[i]) != -1:
                raise ValueError(f"device {i} already placed")
            self._dev_row[i] = row
            fingerprint ^= self._dev_token[i]
        self._members[row] = set(members)
        self._fp[row] = fingerprint
        self._refresh(row)
        self._total_cost += self._group_cost(row)
        self._zhash ^= self._key_row(row)
        return row

    # ------------------------------------------------------------------ #
    # queries

    @property
    def total_cost(self) -> float:
        """Comprehensive cost of the current structure (incrementally maintained)."""
        return self._total_cost

    @property
    def n_coalitions(self) -> int:
        """Number of live coalitions."""
        return self._k

    def zobrist_hash(self) -> int:
        """Incrementally maintained 64-bit partition hash (object-engine equal)."""
        return self._zhash

    def state_key(self) -> FrozenSet[Tuple[int, FrozenSet[int]]]:
        """Canonical partition form — comparable across engines."""
        return frozenset(
            (int(self._charger[r]), frozenset(self._members[r]))
            for r in range(self._k)
        )

    def best_move(self, device: int, rule: SwitchRule) -> Optional[SwitchMove]:
        """The permitted move minimizing *device*'s own cost, vectorized.

        Returns exactly what ``rule.best_move(structure, device)`` would
        on the equivalent object structure — same move, same deltas, or
        ``None``.
        """
        src = int(self._dev_row[device])
        src_ch = int(self._charger[src])
        src_size = int(self._size[src])
        src_price = float(self._price[src])
        src_move = float(self._move[src])
        src_demand = float(self._demand[src])
        demand_i = self._demand_list[device]

        share_now = share_from_aggregates(
            self.scheme, self.instance, device, src_size, src_demand, src_price  # type: ignore[arg-type]
        )
        if share_now is None:
            raise ConfigurationError(
                "array engine requires a cost-sharing scheme with the "
                "share_of aggregate fast path"
            )
        own_now = share_now + float(self._moving[device, src_ch])

        if src_size == 1:
            leave = -(src_price + src_move)
        else:
            new_total = src_demand - demand_i
            new_price = self.instance.charging_price_for_demand(new_total, src_ch)
            new_move = src_move - float(self._moving[device, src_ch])
            leave = (new_price + new_move) - (src_price + src_move)

        k = self._k
        return _kernel_best_move(
            device=device,
            rule=rule,
            scheme=self.scheme,
            instance=self.instance,
            demand_i=demand_i,
            own_now=own_now,
            total_now=self._total_cost,
            leave=leave,
            src_charger=src_ch,
            src_is_singleton=(src_size == 1),
            exclude_cid=int(self._cid[src]),
            cand_cid=self._cid[:k],
            cand_charger=self._charger[:k],
            cand_size=self._size[:k],
            cand_demand=self._demand[:k],
            cand_price=self._price[:k],
            cand_move_sum=self._move[:k],
            cap=self._cap,
            avail=_availability_mask(self.instance, self._moving.shape[1]),
            mv_row=self._moving[device],
            sp_row=self._sp[device],
            sc_row=self._sc[device],
        )

    def is_nash(self, rule: SwitchRule) -> bool:
        """True iff no device has a permitted deviation (vectorized audit)."""
        return all(
            self.best_move(device, rule) is None
            for device in range(self.instance.n_devices)
        )

    # ------------------------------------------------------------------ #
    # moves

    def move(self, device: int, target: Optional[int], charger: int) -> None:
        """Move *device* to coalition *target* (or found a singleton).

        Mirrors ``CoalitionStructure.move`` exactly, including the
        validation order and the total-cost accumulation sequence.
        """
        src = int(self._dev_row[device])
        if target is not None:
            dest = self._row_of_cid[target]
            if dest == src:
                raise ValueError(f"device {device} is already in coalition {target}")
            dest_ch = int(self._charger[dest])
            if not self.instance.chargers[dest_ch].admits(int(self._size[dest]) + 1):
                raise ValueError(
                    f"coalition {target} is at capacity on charger {dest_ch}"
                )
            charger = dest_ch

        token = self._dev_token[device]
        self._zhash ^= self._key_row(src)
        self._total_cost -= self._group_cost(src)
        members = self._members[src]
        members.discard(device)
        self._fp[src] ^= token
        if members:
            self._refresh(src)
            self._total_cost += self._group_cost(src)
            self._zhash ^= self._key_row(src)
        else:
            self._delete_row(src)

        if target is None:
            dest = self._new_row(charger)
        else:
            # Re-resolve: the swap-remove above may have renumbered rows.
            dest = self._row_of_cid[target]
            self._zhash ^= self._key_row(dest)
            self._total_cost -= self._group_cost(dest)
        self._members[dest].add(device)
        self._fp[dest] ^= token
        self._refresh(dest)
        self._total_cost += self._group_cost(dest)
        self._zhash ^= self._key_row(dest)
        self._dev_row[device] = dest

    # ------------------------------------------------------------------ #
    # export / verification

    def to_schedule(
        self, solver: str, metadata: Optional[Dict[str, float]] = None
    ) -> Schedule:
        """Freeze into a schedule, sessions in cid (creation) order.

        The object engine's dict iteration yields coalitions in insertion
        order, which — cids being monotone — is ascending cid order; the
        packed rows are permuted by swap-removes, so sort to match.
        """
        order = sorted(range(self._k), key=lambda r: int(self._cid[r]))
        sessions = [
            Session(
                charger=int(self._charger[r]), members=frozenset(self._members[r])
            )
            for r in order
        ]
        return Schedule(sessions, solver=solver, metadata=metadata)

    def check_invariants(self) -> None:
        """Audit partition coverage, caches, capacity, and the Zobrist hash.

        The array-engine counterpart of
        ``CoalitionStructure.check_invariants``, with the same tolerances.
        """
        seen: Set[int] = set()
        recomputed = 0.0
        zobrist = 0
        for row in range(self._k):
            members = self._members[row]
            if not members:
                raise AssertionError(f"row {row} is an empty coalition")
            charger = int(self._charger[row])
            capacity = self.instance.chargers[charger].capacity
            if capacity is not None and len(members) > capacity:
                raise AssertionError(f"row {row} exceeds capacity {capacity}")
            overlap = seen & members
            if overlap:
                raise AssertionError(f"devices {sorted(overlap)} in multiple rows")
            seen |= members
            for i in members:
                if int(self._dev_row[i]) != row:
                    raise AssertionError(f"device {i} row pointer drifted")
            if self._row_of_cid[int(self._cid[row])] != row:
                raise AssertionError(f"cid index drifted for row {row}")
            ordered = sorted(members)
            true_demand = sum(self._demand_list[i] for i in ordered)
            true_price = self.instance.charging_price_for_demand(
                true_demand, charger
            )
            # ccs-lint: ignore[CCS008] -- audit recomputation mirroring the
            # object engine's identical pairwise reduction.
            true_move = float(self._moving[ordered, charger].sum())
            for label, cached, true in (
                ("total_demand", float(self._demand[row]), true_demand),
                ("price", float(self._price[row]), true_price),
                ("move_sum", float(self._move[row]), true_move),
            ):
                if abs(cached - true) > CACHE_REL_TOL * max(1.0, abs(true)):
                    raise AssertionError(
                        f"row {row}: cached {label} {cached} drifted from {true}"
                    )
            if int(self._size[row]) != len(members):
                raise AssertionError(f"row {row}: cached size drifted")
            fingerprint = 0
            for i in members:
                fingerprint ^= self._dev_token[i]
            if fingerprint != self._fp[row]:
                raise AssertionError(f"row {row}: cached fingerprint drifted")
            zobrist ^= _splitmix64(fingerprint ^ self._ch_token[charger])
            recomputed += true_price + true_move
        expected = {
            i for i in range(self.instance.n_devices) if int(self._dev_row[i]) != -1
        }
        if seen != expected:
            raise AssertionError("array state does not cover its placed devices")
        if abs(recomputed - self._total_cost) > TOTAL_COST_REL_TOL * max(
            1.0, abs(recomputed)
        ):
            raise AssertionError(
                f"cached total cost {self._total_cost} drifted from {recomputed}"
            )
        if zobrist != self._zhash:
            raise AssertionError("cached Zobrist hash drifted from recomputation")


class StructureArrayView:
    """Vectorized candidate scans over a live object ``CoalitionStructure``.

    The incremental planner keeps its object structure (placement,
    retirement, and journaling all read it), but its improvement and
    repair sweeps spend their time in the candidate scan.  This view
    packs the live coalitions' cached aggregates into arrays — rebuilt
    lazily whenever the structure's mutation counter moves — and runs
    the same kernel as :class:`ArrayState`, so every scan returns
    bitwise-identical moves to ``rule.best_move`` on the structure.
    """

    def __init__(self, structure: CoalitionStructure):
        self.structure = structure
        self._built_version = -1
        self._cap = _capacity_vector(structure.instance.chargers)
        self._cid = np.zeros(0, dtype=np.int64)
        self._charger = np.zeros(0, dtype=np.int64)
        self._size = np.zeros(0, dtype=np.int64)
        self._demand = np.zeros(0, dtype=float)
        self._price = np.zeros(0, dtype=float)
        self._move = np.zeros(0, dtype=float)

    def _ensure(self) -> None:
        st = self.structure
        if st._version == self._built_version:
            return
        coals = list(st.coalitions())
        count = len(coals)
        self._cid = np.fromiter((c.cid for c in coals), np.int64, count)
        self._charger = np.fromiter((c.charger for c in coals), np.int64, count)
        self._size = np.fromiter((len(c.members) for c in coals), np.int64, count)
        self._demand = np.fromiter((c.total_demand for c in coals), float, count)
        self._price = np.fromiter((c.price for c in coals), float, count)
        self._move = np.fromiter((c.move_sum for c in coals), float, count)
        self._built_version = st._version

    def best_move(self, device: int, rule: SwitchRule) -> Optional[SwitchMove]:
        """Vectorized ``rule.best_move(structure, device)`` (bit-identical)."""
        self._ensure()
        st = self.structure
        instance = st.instance
        src = st.coalition_of(device)
        return _kernel_best_move(
            device=device,
            rule=rule,
            scheme=st.scheme,
            instance=instance,  # type: ignore[arg-type]
            demand_i=instance._demand_list[device],  # type: ignore[attr-defined]
            own_now=st.individual_cost(device),
            total_now=st.total_cost,
            leave=st.leave_delta(device),
            src_charger=src.charger,
            src_is_singleton=(src.size == 1),
            exclude_cid=src.cid,
            cand_cid=self._cid,
            cand_charger=self._charger,
            cand_size=self._size,
            cand_demand=self._demand,
            cand_price=self._price,
            cand_move_sum=self._move,
            cap=self._cap,
            avail=_availability_mask(instance, instance.n_chargers),
            mv_row=instance._moving_cost[device],  # type: ignore[attr-defined]
            sp_row=instance.singleton_price_matrix()[device],
            sc_row=instance.singleton_cost_matrix()[device],
        )

    def best_insert(self, device: int) -> Optional[Tuple[Optional[int], int]]:
        """Vectorized planner insert scan: cheapest placement for *device*."""
        self._ensure()
        st = self.structure
        instance = st.instance
        return _kernel_best_insert(
            device=device,
            scheme=st.scheme,
            instance=instance,  # type: ignore[arg-type]
            demand_i=instance._demand_list[device],  # type: ignore[attr-defined]
            cand_cid=self._cid,
            cand_charger=self._charger,
            cand_size=self._size,
            cand_demand=self._demand,
            cap=self._cap,
            avail=_availability_mask(instance, instance.n_chargers),
            mv_row=instance._moving_cost[device],  # type: ignore[attr-defined]
            sc_row=instance.singleton_cost_matrix()[device],
        )
