"""Nash-equilibrium certification for coalition structures.

The paper proves CCSGA converges to a pure Nash equilibrium; we go one
step further and *check* every terminal state.  :func:`is_nash_equilibrium`
re-enumerates all admissible deviations of every device and confirms none
is permitted by the rule — an independent audit of the dynamics, used in
tests and recorded in CCSGA's result metadata.
"""

from __future__ import annotations

from typing import List, Optional

from .coalition import CoalitionStructure
from .switching import SwitchMove, SwitchRule, candidate_moves

__all__ = ["is_nash_equilibrium", "blocking_moves"]


def blocking_moves(
    structure: CoalitionStructure, rule: SwitchRule, limit: Optional[int] = None
) -> List[SwitchMove]:
    """All deviations the rule still permits (up to *limit*, for reporting).

    Empty list ⇔ the structure is a pure Nash equilibrium of the game
    induced by *rule*.
    """
    found: List[SwitchMove] = []
    for device in range(structure.instance.n_devices):
        for move in candidate_moves(structure, device):
            if rule.permits(move):
                found.append(move)
                if limit is not None and len(found) >= limit:
                    return found
    return found


def is_nash_equilibrium(structure: CoalitionStructure, rule: SwitchRule) -> bool:
    """True iff no device has a permitted unilateral deviation under *rule*."""
    return not blocking_moves(structure, rule, limit=1)
