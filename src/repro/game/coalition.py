"""Mutable coalition structures — the state CCSGA's dynamics walk over.

A :class:`CoalitionStructure` is a partition of the device set into
coalitions, each bound to a charger.  Unlike the frozen
:class:`~repro.core.schedule.Schedule`, it supports the cheap incremental
moves the game dynamics perform thousands of times: remove a device from
its coalition, drop it into another (or a fresh singleton), and report
costs without recomputing the world.

**Incremental-cost engine.**  Every coalition carries cached aggregates —
total member demand, session price, summed member moving costs, and the
group cost they compose — refreshed in ``O(|S|)`` only when membership
actually changes (at most ``2`` coalitions per :meth:`move`).  The hot
path, hypothetical candidate evaluation (:meth:`cost_if_joined`,
:meth:`total_cost_if_moved`, :meth:`leave_delta`, :meth:`join_delta`),
reads those cached scalars and prices a deviation with a *single* tariff
evaluation, so a full CCSGA sweep is ``O(n · (sessions + chargers))``
tariff calls rather than ``O(n · Σ|S|)`` member-list rebuilds.

Structures also maintain a Zobrist-style 64-bit hash of the partition
(:meth:`zobrist_hash`), XOR-composed from per-device tokens mixed with
per-charger tokens, updated in ``O(1)`` per move — the cycle detector for
non-potential switch rules no longer rehashes an ``O(n)`` frozenset per
switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..core.costsharing import CostSharingScheme, share_from_aggregates
from ..core.instance import CCSInstance
from ..core.schedule import Schedule, Session
from ..numeric import CACHE_REL_TOL, TOTAL_COST_REL_TOL

__all__ = ["Coalition", "CoalitionStructure"]


_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 step — the token generator behind the Zobrist hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _device_token(device: int) -> int:
    return _splitmix64(0xA0761D6478BD642F + device)


def _charger_token(charger: int) -> int:
    return _splitmix64(0xE7037ED1A0B428DB + charger)


@dataclass
class Coalition:
    """One coalition: a device group bound to a charger.

    Mutable by design; only :class:`CoalitionStructure` should touch
    :attr:`members` or the cached aggregates (``total_demand``, ``price``,
    ``move_sum``, ``fingerprint``), which it keeps coherent with the
    member set on every move (verified by
    :meth:`CoalitionStructure.check_invariants`).
    """

    cid: int
    charger: int
    members: Set[int]
    total_demand: float = 0.0
    price: float = 0.0
    move_sum: float = 0.0
    fingerprint: int = field(default=0, repr=False)

    @property
    def size(self) -> int:
        """Number of member devices."""
        return len(self.members)

    @property
    def group_cost(self) -> float:
        """Cached full session cost: session price + members' moving costs."""
        return self.price + self.move_sum


class CoalitionStructure:
    """A partition of all devices into charger-bound coalitions.

    Maintains the invariants (checked by :meth:`check_invariants`):

    - every device belongs to exactly one coalition;
    - no coalition is empty;
    - no coalition exceeds its charger's slot capacity;
    - every cached per-coalition aggregate, the cached total cost, and the
      Zobrist hash agree with from-scratch recomputation.

    Total comprehensive cost is cached and updated incrementally on moves —
    the potential function of the socially-aware game dynamics.
    """

    def __init__(self, instance: CCSInstance, scheme: CostSharingScheme):
        self.instance = instance
        self.scheme = scheme
        self._coalitions: Dict[int, Coalition] = {}
        self._of_device: Dict[int, int] = {}
        self._next_cid = 0
        self._total_cost = 0.0
        self._zhash = 0
        # Mutation counter: bumped on every membership change.  Lets the
        # array engine's ``StructureArrayView`` cache its packed candidate
        # arrays and rebuild only when the structure actually moved.
        self._version = 0
        self._dev_token: List[int] = [
            _device_token(i) for i in range(instance.n_devices)
        ]
        self._ch_token: List[int] = [
            _charger_token(j) for j in range(instance.n_chargers)
        ]

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def singletons(
        cls, instance: CCSInstance, scheme: CostSharingScheme
    ) -> "CoalitionStructure":
        """The noncooperative start state: each device alone at its best charger.

        Vectorized: one ``argmin`` over the precomputed singleton-cost
        matrix instead of ``n · m`` group-cost evaluations (ties break
        toward the lower charger index, as before).
        """
        cs = cls(instance, scheme)
        best = np.argmin(instance.singleton_cost_matrix(), axis=1)
        for i in range(instance.n_devices):
            cs._create(int(best[i]), {i})
        return cs

    @classmethod
    def from_schedule(
        cls, instance: CCSInstance, scheme: CostSharingScheme, schedule: Schedule
    ) -> "CoalitionStructure":
        """Seed the game state from an existing schedule (e.g. a CCSA warm start)."""
        cs = cls(instance, scheme)
        for session in schedule.sessions:
            cs._create(session.charger, set(session.members))
        return cs

    def _refresh(self, coalition: Coalition) -> None:
        """Recompute a coalition's cached aggregates from its member set.

        ``O(|S|)``, called only when membership changes.  Summation runs
        over the sorted member list so the cached scalars match what a
        from-scratch ``scheme.shares(...)`` / ``group_cost`` evaluation
        would produce.
        """
        ordered = sorted(coalition.members)
        demands = self.instance._demand_list
        total = 0.0
        for i in ordered:
            total += demands[i]
        coalition.total_demand = total
        coalition.price = self.instance.charging_price_for_demand(
            total, coalition.charger
        )
        coalition.move_sum = float(
            self.instance._moving_cost[ordered, coalition.charger].sum()
        )

    def _key(self, coalition: Coalition) -> int:
        """Zobrist key of one coalition: mixed member fingerprint × charger."""
        return _splitmix64(coalition.fingerprint ^ self._ch_token[coalition.charger])

    def _create(self, charger: int, members: Set[int]) -> Coalition:
        coalition = Coalition(self._next_cid, charger, set(members))
        self._next_cid += 1
        self._coalitions[coalition.cid] = coalition
        fingerprint = 0
        for i in members:
            if i in self._of_device:
                raise ValueError(f"device {i} already placed")
            self._of_device[i] = coalition.cid
            fingerprint ^= self._dev_token[i]
        coalition.fingerprint = fingerprint
        self._refresh(coalition)
        self._total_cost += coalition.group_cost
        self._zhash ^= self._key(coalition)
        self._version += 1
        return coalition

    # ------------------------------------------------------------------ #
    # queries

    @property
    def total_cost(self) -> float:
        """Comprehensive cost of the current structure (incrementally maintained)."""
        return self._total_cost

    def coalitions(self) -> Iterator[Coalition]:
        """Iterate over the live coalitions."""
        return iter(self._coalitions.values())

    @property
    def n_coalitions(self) -> int:
        """Number of live coalitions."""
        return len(self._coalitions)

    def coalition_of(self, device: int) -> Coalition:
        """The coalition currently containing *device*."""
        return self._coalitions[self._of_device[device]]

    def _share_in(self, device: int, coalition: Coalition) -> float:
        """*device*'s price share inside *coalition* (fast path when possible)."""
        share = share_from_aggregates(
            self.scheme,
            self.instance,
            device,
            coalition.size,
            coalition.total_demand,
            coalition.price,
        )
        if share is not None:
            return share
        shares = self.scheme.shares(
            self.instance, sorted(coalition.members), coalition.charger
        )
        return shares[device]

    def individual_cost(self, device: int) -> float:
        """The device's current comprehensive cost: price share + moving cost."""
        coalition = self.coalition_of(device)
        return self._share_in(device, coalition) + self.instance.moving_cost(
            device, coalition.charger
        )

    def cost_if_joined(self, device: int, target: Optional[int], charger: int) -> float:
        """Hypothetical cost of *device* after moving to coalition *target*.

        ``target=None`` means founding a fresh singleton at *charger*.
        Returns ``inf`` when the move is inadmissible (capacity, or the
        device already sits there).  One tariff evaluation on cached
        aggregates for schemes with an O(1) fast path; falls back to a
        full share computation otherwise.
        """
        instance = self.instance
        if target is None:
            price = float(instance.singleton_price_matrix()[device, charger])
            share = share_from_aggregates(
                self.scheme, instance, device, 1,
                instance._demand_list[device], price,
            )
            if share is None:
                shares = self.scheme.shares(instance, [device], charger)
                share = shares[device]
            return share + instance.moving_cost(device, charger)

        coalition = self._coalitions[target]
        if device in coalition.members:
            return float("inf")
        if charger != coalition.charger:
            raise ValueError("target coalition is bound to a different charger")
        if not instance.chargers[charger].admits(coalition.size + 1):
            return float("inf")
        new_total = coalition.total_demand + instance._demand_list[device]
        new_price = instance.charging_price_for_demand(new_total, charger)
        share = share_from_aggregates(
            self.scheme, instance, device, coalition.size + 1, new_total, new_price
        )
        if share is None:
            members = sorted(coalition.members | {device})
            shares = self.scheme.shares(instance, members, charger)
            share = shares[device]
        return share + instance.moving_cost(device, charger)

    def leave_delta(self, device: int) -> float:
        """Change in *device*'s current coalition's cost if it left.

        Always ``<= 0`` under a nondecreasing tariff.  Target-independent,
        so candidate scans compute it once per device and reuse it across
        every contemplated destination.
        """
        src = self.coalition_of(device)
        if src.size == 1:
            return -src.group_cost
        instance = self.instance
        new_total = src.total_demand - instance._demand_list[device]
        new_price = instance.charging_price_for_demand(new_total, src.charger)
        new_move = src.move_sum - instance.moving_cost(device, src.charger)
        return (new_price + new_move) - src.group_cost

    def join_delta(self, device: int, target: int) -> float:
        """Change in coalition *target*'s cost if *device* joined it.

        ``inf`` when the join is inadmissible (already a member, or the
        target charger is at capacity).
        """
        coalition = self._coalitions[target]
        if device in coalition.members:
            return float("inf")
        instance = self.instance
        if not instance.chargers[coalition.charger].admits(coalition.size + 1):
            return float("inf")
        new_total = coalition.total_demand + instance._demand_list[device]
        new_price = instance.charging_price_for_demand(new_total, coalition.charger)
        new_move = coalition.move_sum + instance.moving_cost(device, coalition.charger)
        return (new_price + new_move) - coalition.group_cost

    def total_cost_if_moved(
        self, device: int, target: Optional[int], charger: int
    ) -> float:
        """Hypothetical total cost after the move (``inf`` if inadmissible)."""
        if target is None:
            join = float(self.instance.singleton_cost_matrix()[device, charger])
        else:
            join = self.join_delta(device, target)
            if join == float("inf"):
                return float("inf")
        return self._total_cost + self.leave_delta(device) + join

    # ------------------------------------------------------------------ #
    # moves

    def move(self, device: int, target: Optional[int], charger: int) -> None:
        """Move *device* to coalition *target* (or a new singleton at *charger*).

        Updates the cached total cost, the per-coalition aggregates, and
        the Zobrist hash incrementally, and drops the source coalition if
        it empties.  Raises on inadmissible moves — callers screen with
        :meth:`cost_if_joined` first.
        """
        src = self.coalition_of(device)
        if target is not None:
            dest = self._coalitions[target]
            if dest is src:
                raise ValueError(f"device {device} is already in coalition {target}")
            if not self.instance.chargers[dest.charger].admits(dest.size + 1):
                raise ValueError(
                    f"coalition {target} is at capacity on charger {dest.charger}"
                )
            charger = dest.charger
        else:
            dest = None

        token = self._dev_token[device]

        self._zhash ^= self._key(src)
        self._total_cost -= src.group_cost
        src.members.discard(device)
        src.fingerprint ^= token
        if src.members:
            self._refresh(src)
            self._total_cost += src.group_cost
            self._zhash ^= self._key(src)
        else:
            del self._coalitions[src.cid]

        if dest is None:
            dest = Coalition(self._next_cid, charger, set())
            self._next_cid += 1
            self._coalitions[dest.cid] = dest
        else:
            self._zhash ^= self._key(dest)
            self._total_cost -= dest.group_cost
        dest.members.add(device)
        dest.fingerprint ^= token
        self._refresh(dest)
        self._total_cost += dest.group_cost
        self._zhash ^= self._key(dest)
        self._of_device[device] = dest.cid
        self._version += 1

    # ------------------------------------------------------------------ #
    # export / verification

    def to_schedule(self, solver: str, metadata: Optional[Dict[str, float]] = None) -> Schedule:
        """Freeze the structure into an immutable schedule."""
        sessions = [
            Session(charger=c.charger, members=frozenset(c.members))
            for c in self._coalitions.values()
        ]
        return Schedule(sessions, solver=solver, metadata=metadata)

    def state_key(self) -> FrozenSet[Tuple[int, FrozenSet[int]]]:
        """Hashable canonical form of the partition (``O(n)`` to build).

        Exact but expensive; the dynamics use :meth:`zobrist_hash` for
        per-switch cycle detection and keep this for tests and debugging.
        """
        return frozenset(
            (c.charger, frozenset(c.members)) for c in self._coalitions.values()
        )

    def zobrist_hash(self) -> int:
        """Incrementally maintained 64-bit hash of the partition.

        XOR over coalitions of ``mix(member-token XOR ⊕ charger token)``;
        equal structures always hash equal, distinct structures collide
        with probability ``~2^-64`` per pair.  O(1) to read, O(1) to
        maintain per switch — the cycle detector for non-potential rules.
        """
        return self._zhash

    def _zobrist_from_scratch(self) -> int:
        """Recompute the structure hash from first principles (for audits)."""
        h = 0
        for c in self._coalitions.values():
            fingerprint = 0
            for i in c.members:
                fingerprint ^= self._dev_token[i]
            h ^= _splitmix64(fingerprint ^ self._ch_token[c.charger])
        return h

    def _expected_coverage(self) -> Set[int]:
        """Device indices the structure must partition.

        The batch solvers cover every instance device; growable service
        structures (``repro.service.plan``) override this to the currently
        active subset so the same invariant checker serves both.
        """
        return set(range(self.instance.n_devices))

    def check_invariants(self) -> None:
        """Assert partition, nonemptiness, capacity, and cache coherence.

        Cache coherence covers the cached total cost, every coalition's
        cached aggregates (total demand, session price, moving-cost sum),
        the member fingerprints, and the Zobrist hash.
        """
        seen: Set[int] = set()
        recomputed = 0.0
        for c in self._coalitions.values():
            if not c.members:
                raise AssertionError(f"coalition {c.cid} is empty")
            cap = self.instance.capacity_of(c.charger)
            if cap is not None and c.size > cap:
                raise AssertionError(f"coalition {c.cid} exceeds capacity {cap}")
            overlap = seen & c.members
            if overlap:
                raise AssertionError(f"devices {sorted(overlap)} in multiple coalitions")
            seen |= c.members
            for i in c.members:
                if self._of_device.get(i) != c.cid:
                    raise AssertionError(
                        f"device {i} mapped to coalition {self._of_device.get(i)}, "
                        f"found in {c.cid}"
                    )
            ordered = sorted(c.members)
            true_demand = sum(self.instance._demand_list[i] for i in ordered)
            true_price = self.instance.charging_price(ordered, c.charger)
            true_move = float(self.instance._moving_cost[ordered, c.charger].sum())
            for label, cached, true in (
                ("total_demand", c.total_demand, true_demand),
                ("price", c.price, true_price),
                ("move_sum", c.move_sum, true_move),
            ):
                if abs(cached - true) > CACHE_REL_TOL * max(1.0, abs(true)):
                    raise AssertionError(
                        f"coalition {c.cid}: cached {label} {cached} drifted "
                        f"from {true}"
                    )
            fingerprint = 0
            for i in c.members:
                fingerprint ^= self._dev_token[i]
            if fingerprint != c.fingerprint:
                raise AssertionError(
                    f"coalition {c.cid}: cached fingerprint drifted"
                )
            recomputed += self.instance.group_cost(c.members, c.charger)
        if seen != self._expected_coverage():
            raise AssertionError("coalition structure does not cover all devices")
        if abs(recomputed - self._total_cost) > TOTAL_COST_REL_TOL * max(1.0, abs(recomputed)):
            raise AssertionError(
                f"cached total cost {self._total_cost} drifted from {recomputed}"
            )
        if self._zhash != self._zobrist_from_scratch():
            raise AssertionError("cached Zobrist hash drifted from recomputation")
