"""Mutable coalition structures — the state CCSGA's dynamics walk over.

A :class:`CoalitionStructure` is a partition of the device set into
coalitions, each bound to a charger.  Unlike the frozen
:class:`~repro.core.schedule.Schedule`, it supports the cheap incremental
moves the game dynamics perform thousands of times: remove a device from
its coalition, drop it into another (or a fresh singleton), and report
costs without recomputing the world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..core.costsharing import CostSharingScheme
from ..core.instance import CCSInstance
from ..core.schedule import Schedule, Session

__all__ = ["Coalition", "CoalitionStructure"]


@dataclass
class Coalition:
    """One coalition: a device group bound to a charger.

    Mutable by design; only :class:`CoalitionStructure` should touch
    :attr:`members`.
    """

    cid: int
    charger: int
    members: Set[int]

    @property
    def size(self) -> int:
        """Number of member devices."""
        return len(self.members)


class CoalitionStructure:
    """A partition of all devices into charger-bound coalitions.

    Maintains the invariants (checked by :meth:`check_invariants`):

    - every device belongs to exactly one coalition;
    - no coalition is empty;
    - no coalition exceeds its charger's slot capacity.

    Total comprehensive cost is cached and updated incrementally on moves —
    the potential function of the socially-aware game dynamics.
    """

    def __init__(self, instance: CCSInstance, scheme: CostSharingScheme):
        self.instance = instance
        self.scheme = scheme
        self._coalitions: Dict[int, Coalition] = {}
        self._of_device: Dict[int, int] = {}
        self._next_cid = 0
        self._total_cost = 0.0

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def singletons(
        cls, instance: CCSInstance, scheme: CostSharingScheme
    ) -> "CoalitionStructure":
        """The noncooperative start state: each device alone at its best charger."""
        cs = cls(instance, scheme)
        for i in range(instance.n_devices):
            best_j = min(
                range(instance.n_chargers),
                key=lambda j: (instance.group_cost([i], j), j),
            )
            cs._create(best_j, {i})
        return cs

    @classmethod
    def from_schedule(
        cls, instance: CCSInstance, scheme: CostSharingScheme, schedule: Schedule
    ) -> "CoalitionStructure":
        """Seed the game state from an existing schedule (e.g. a CCSA warm start)."""
        cs = cls(instance, scheme)
        for session in schedule.sessions:
            cs._create(session.charger, set(session.members))
        return cs

    def _create(self, charger: int, members: Set[int]) -> Coalition:
        coalition = Coalition(self._next_cid, charger, set(members))
        self._next_cid += 1
        self._coalitions[coalition.cid] = coalition
        for i in members:
            if i in self._of_device:
                raise ValueError(f"device {i} already placed")
            self._of_device[i] = coalition.cid
        self._total_cost += self.instance.group_cost(members, charger)
        return coalition

    # ------------------------------------------------------------------ #
    # queries

    @property
    def total_cost(self) -> float:
        """Comprehensive cost of the current structure (incrementally maintained)."""
        return self._total_cost

    def coalitions(self) -> Iterator[Coalition]:
        """Iterate over the live coalitions."""
        return iter(self._coalitions.values())

    @property
    def n_coalitions(self) -> int:
        """Number of live coalitions."""
        return len(self._coalitions)

    def coalition_of(self, device: int) -> Coalition:
        """The coalition currently containing *device*."""
        return self._coalitions[self._of_device[device]]

    def individual_cost(self, device: int) -> float:
        """The device's current comprehensive cost: price share + moving cost."""
        coalition = self.coalition_of(device)
        shares = self.scheme.shares(
            self.instance, sorted(coalition.members), coalition.charger
        )
        return shares[device] + self.instance.moving_cost(device, coalition.charger)

    def cost_if_joined(self, device: int, target: Optional[int], charger: int) -> float:
        """Hypothetical cost of *device* after moving to coalition *target*.

        ``target=None`` means founding a fresh singleton at *charger*.
        Returns ``inf`` when the move is inadmissible (capacity, or the
        device already sits there).
        """
        if target is None:
            members = [device]
        else:
            coalition = self._coalitions[target]
            if device in coalition.members:
                return float("inf")
            if charger != coalition.charger:
                raise ValueError("target coalition is bound to a different charger")
            if not self.instance.chargers[charger].admits(coalition.size + 1):
                return float("inf")
            members = sorted(coalition.members | {device})
        shares = self.scheme.shares(self.instance, members, charger)
        return shares[device] + self.instance.moving_cost(device, charger)

    def total_cost_if_moved(
        self, device: int, target: Optional[int], charger: int
    ) -> float:
        """Hypothetical total cost after the move (``inf`` if inadmissible)."""
        src = self.coalition_of(device)
        if target is not None:
            tgt = self._coalitions[target]
            if device in tgt.members:
                return float("inf")
            if not self.instance.chargers[tgt.charger].admits(tgt.size + 1):
                return float("inf")
        delta = 0.0
        old_src = self.instance.group_cost(src.members, src.charger)
        new_src = self.instance.group_cost(src.members - {device}, src.charger)
        delta += new_src - old_src
        if target is None:
            delta += self.instance.group_cost([device], charger)
        else:
            tgt = self._coalitions[target]
            old_tgt = self.instance.group_cost(tgt.members, tgt.charger)
            new_tgt = self.instance.group_cost(tgt.members | {device}, tgt.charger)
            delta += new_tgt - old_tgt
        return self._total_cost + delta

    # ------------------------------------------------------------------ #
    # moves

    def move(self, device: int, target: Optional[int], charger: int) -> None:
        """Move *device* to coalition *target* (or a new singleton at *charger*).

        Updates the cached total cost incrementally and drops the source
        coalition if it empties.  Raises on inadmissible moves — callers
        screen with :meth:`cost_if_joined` first.
        """
        src = self.coalition_of(device)
        if target is not None and self._coalitions[target] is src:
            raise ValueError(f"device {device} is already in coalition {target}")

        old_src = self.instance.group_cost(src.members, src.charger)
        src.members.discard(device)
        new_src = self.instance.group_cost(src.members, src.charger)
        self._total_cost += new_src - old_src
        if not src.members:
            del self._coalitions[src.cid]

        if target is None:
            dest = Coalition(self._next_cid, charger, set())
            self._next_cid += 1
            self._coalitions[dest.cid] = dest
        else:
            dest = self._coalitions[target]
            if not self.instance.chargers[dest.charger].admits(dest.size + 1):
                raise ValueError(
                    f"coalition {target} is at capacity on charger {dest.charger}"
                )
            charger = dest.charger
        old_dst = self.instance.group_cost(dest.members, dest.charger)
        dest.members.add(device)
        new_dst = self.instance.group_cost(dest.members, dest.charger)
        self._total_cost += new_dst - old_dst
        self._of_device[device] = dest.cid

    # ------------------------------------------------------------------ #
    # export / verification

    def to_schedule(self, solver: str, metadata: Optional[Dict[str, float]] = None) -> Schedule:
        """Freeze the structure into an immutable schedule."""
        sessions = [
            Session(charger=c.charger, members=frozenset(c.members))
            for c in self._coalitions.values()
        ]
        return Schedule(sessions, solver=solver, metadata=metadata)

    def state_key(self) -> FrozenSet[Tuple[int, FrozenSet[int]]]:
        """Hashable canonical form — used for cycle detection in selfish dynamics."""
        return frozenset(
            (c.charger, frozenset(c.members)) for c in self._coalitions.values()
        )

    def check_invariants(self) -> None:
        """Assert partition, nonemptiness, capacity, and cost-cache coherence."""
        seen: Set[int] = set()
        recomputed = 0.0
        for c in self._coalitions.values():
            if not c.members:
                raise AssertionError(f"coalition {c.cid} is empty")
            cap = self.instance.capacity_of(c.charger)
            if cap is not None and c.size > cap:
                raise AssertionError(f"coalition {c.cid} exceeds capacity {cap}")
            overlap = seen & c.members
            if overlap:
                raise AssertionError(f"devices {sorted(overlap)} in multiple coalitions")
            seen |= c.members
            recomputed += self.instance.group_cost(c.members, c.charger)
        if seen != set(range(self.instance.n_devices)):
            raise AssertionError("coalition structure does not cover all devices")
        if abs(recomputed - self._total_cost) > 1e-6 * max(1.0, abs(recomputed)):
            raise AssertionError(
                f"cached total cost {self._total_cost} drifted from {recomputed}"
            )
