"""Seeded random-number-generation helpers.

All stochastic code in this library draws from a :class:`numpy.random.Generator`
passed explicitly (or created here from an integer seed).  Nothing reads the
process-global random state, so every experiment is reproducible from its
seed alone and independent components can be given independent streams.
"""

from __future__ import annotations

import hashlib
from typing import List, Union, cast

import numpy as np

__all__ = ["RandomState", "derive_seed", "ensure_rng", "spawn"]

#: Anything accepted where a random source is expected.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    - ``None`` → a fresh, OS-entropy-seeded generator;
    - ``int`` → a deterministic generator seeded with that value;
    - an existing ``Generator`` → returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Split *rng* into *n* statistically independent child generators.

    Used when a simulation hands separate components (noise model, workload
    generator, device behaviour) their own streams so that adding draws to
    one component does not perturb the others.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seed_seq = cast(np.random.SeedSequence, rng.bit_generator.seed_seq)
    return [np.random.default_rng(s) for s in seed_seq.spawn(n)]


def _path_part(part: Union[int, str]) -> int:
    """Map one *path* component to a spawn-key integer.

    Integers pass through unchanged (so every historical ``derive_seed``
    call keeps its exact value); strings hash through SHA-256 to a stable
    32-bit key, letting call sites name streams by entity — a charger id,
    a request id, ``"shard"`` — instead of inventing integer namespaces.
    """
    if isinstance(part, str):
        digest = hashlib.sha256(part.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")
    return int(part)


def derive_seed(root: int, *path: Union[int, str]) -> int:
    """Derive a child seed from *root* along a spawn-key *path*.

    Uses :class:`numpy.random.SeedSequence` spawn keys, the same mechanism
    :func:`spawn` relies on, so children are statistically independent of
    each other and of the root stream.  Unlike drawing child seeds from a
    shared generator, the result depends only on ``(root, path)`` — never
    on how many seeds were derived before — which is what lets experiment
    tasks run in any order (or in parallel) and still see identical
    randomness.

    Path components may be integers (the historical form, unchanged) or
    strings, which are hashed to stable 32-bit keys — the basis of the
    *keyed* fault/workload streams (see docs/SHARDING.md): deriving per
    entity (``derive_seed(root, "cancel", request_id)``) instead of from
    shared-stream order makes any *subset* of the drawn events independent
    of which other entities exist.
    """
    ss = np.random.SeedSequence(int(root), spawn_key=tuple(_path_part(p) for p in path))
    return int(ss.generate_state(1, dtype=np.uint32)[0])
