"""The unit of lint output: one rule violation at one source location.

A :class:`Finding` is deliberately plain data — the analyzer produces
them, the CLI renders them, the baseline matches them by
:meth:`Finding.key` (code + module + source text, *not* line number, so
grandfathered findings survive unrelated edits that shift lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``path`` is the path as given on the command line (what the user
    clicks on); ``module`` is the repo-normalized module path (e.g.
    ``repro/service/journal.py``) that rule scoping and the baseline key
    on, so a baseline recorded from ``src/repro/...`` still matches when
    the tree is analyzed from another working directory.
    """

    path: str
    module: str
    line: int
    col: int
    code: str
    message: str
    snippet: str = ""

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across pure line-number shifts."""
        return (self.code, self.module, self.snippet.strip())

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """``path:line:col: CODE message`` — the one-line CLI form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
