"""CCS002 — no wall-clock reads in deterministic code."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["WallClockRule"]

#: time-module members that read the host clock.
BANNED_TIME_MEMBERS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: Fully dotted wall-clock reads on the datetime module.
BANNED_DATETIME = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """No ``time.time()`` / ``perf_counter()`` / ``datetime.now()`` in library code.

    **Invariant.** Library code under ``src/repro`` never reads the host
    clock.  The service daemon reads time only through
    :class:`repro.service.clock.ServiceClock` (a logical clock advanced
    by input events), and experiment tasks only through the allowlisted
    ``perf_timer`` in ``repro/experiments/exec/kinds.py`` (which the
    equivalence suite can pin to zero via ``CCS_BENCH_ZERO_TIMER``).

    **Why.** Task results are fingerprinted and cached by content; the
    service journal must replay byte-identically after a crash.  A wall
    -clock read smuggles nondeterminism into both: cached results stop
    matching fresh runs, recovery diverges from the original execution,
    and the golden experiment outputs flap.  Wall-clock *latency* is
    measured outside the kernel by the benchmark harness, exactly so the
    deterministic core stays clock-free.

    **Approved fix.** Inside the service: take ``clock.now`` (a
    :class:`ServiceClock`) as input.  Inside experiment tasks: use
    ``repro.experiments.exec.kinds.perf_timer``.  Benchmarks and scripts
    outside ``src/`` are not in scope.

    **Allowlisted.** ``repro/experiments/exec/kinds.py`` — the single
    env-gated timer.
    """

    code = "CCS002"
    title = "wall-clock read (time.*/datetime.now) in deterministic library code"
    allow = ("repro/experiments/exec/kinds.py",)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        from .helpers import collect_import_aliases, resolve_dotted

        aliases = collect_import_aliases(tree)
        findings: List[Finding] = []

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for item in node.names:
                        if item.name in BANNED_TIME_MEMBERS:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"importing time.{item.name}: wall-clock reads are "
                                    "banned in deterministic code (use ServiceClock or "
                                    "exec.kinds.perf_timer)",
                                )
                            )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                dotted = resolve_dotted(node, aliases)
                if dotted is None:
                    continue
                message = self._message_for(dotted)
                if message is not None:
                    findings.append(self.finding(ctx, node, message))

        # De-duplicate chain sub-matches: an Attribute and its inner value
        # can both resolve (e.g. ``datetime.datetime.now`` and
        # ``datetime.datetime``); keep the most specific per location.
        seen: Set[Tuple[int, int]] = set()
        for finding in sorted(findings, key=Finding.sort_key):
            loc = (finding.line, finding.col)
            if loc in seen:
                continue
            seen.add(loc)
            yield finding

    @staticmethod
    def _message_for(dotted: str) -> Optional[str]:
        if dotted.startswith("time."):
            member = dotted.split(".", 1)[1]
            if member in BANNED_TIME_MEMBERS:
                return (
                    f"{dotted}() reads the host clock; deterministic code must use "
                    "ServiceClock (service) or exec.kinds.perf_timer (tasks)"
                )
        if dotted in BANNED_DATETIME:
            return (
                f"{dotted}() reads the host clock; thread logical time through "
                "explicitly instead"
            )
        # ``from datetime import datetime`` then ``datetime.now(...)``
        # resolves to datetime.datetime.now via the alias map and is
        # already covered by BANNED_DATETIME above.
        return None
