"""CCS002 — no wall-clock reads in deterministic code."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["WallClockRule"]

#: time-module members that read the host clock.
BANNED_TIME_MEMBERS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: Fully dotted wall-clock reads on the datetime module.
BANNED_DATETIME = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: time-module members that read the clock only when the time argument is
#: omitted: ``time.gmtime()`` formats *now*, ``time.gmtime(0)`` is pure.
CLOCK_DEFAULT_MEMBERS = frozenset({"gmtime", "localtime", "ctime", "asctime"})

#: ``time.strftime(fmt)`` reads the clock; ``time.strftime(fmt, t)`` is pure.
STRFTIME_MEMBER = "strftime"

#: Monotonic/CPU timers: still banned in library code, but *allowed* in
#: the perf-timer scopes below — measuring latency is what benchmarks do.
PERF_TIMER_MEMBERS = frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def reads_clock_by_default(member: str, node: ast.AST) -> bool:
    """Whether a ``time.<member>`` call reads the clock via defaulting.

    True for ``gmtime``/``localtime``/``ctime``/``asctime`` called with no
    arguments and for ``strftime`` called with the format only — in every
    case the omitted time argument defaults to *now*.
    """
    if not isinstance(node, ast.Call):
        return False
    n_args = len(node.args) + len(node.keywords)
    if member in CLOCK_DEFAULT_MEMBERS:
        return n_args == 0
    if member == STRFTIME_MEMBER:
        return n_args <= 1
    return False


@register
class WallClockRule(Rule):
    """No ``time.time()`` / ``perf_counter()`` / ``datetime.now()`` in library code.

    **Invariant.** Library code under ``src/repro`` never reads the host
    clock.  The service daemon reads time only through
    :class:`repro.service.clock.ServiceClock` (a logical clock advanced
    by input events), and experiment tasks only through the allowlisted
    ``perf_timer`` in ``repro/experiments/exec/kinds.py`` (which the
    equivalence suite can pin to zero via ``CCS_BENCH_ZERO_TIMER``).

    **Why.** Task results are fingerprinted and cached by content; the
    service journal must replay byte-identically after a crash.  A wall
    -clock read smuggles nondeterminism into both: cached results stop
    matching fresh runs, recovery diverges from the original execution,
    and the golden experiment outputs flap.  Wall-clock *latency* is
    measured outside the kernel by the benchmark harness, exactly so the
    deterministic core stays clock-free.

    **Approved fix.** Inside the service: take ``clock.now`` (a
    :class:`ServiceClock`) as input.  Inside experiment tasks: use
    ``repro.experiments.exec.kinds.perf_timer``.  In ``benchmarks/`` and
    ``examples/`` the monotonic perf timers (``perf_counter`` family) are
    allowed — measuring latency is their job — but wall-*date* reads
    (``time.time``, ``datetime.now``, zero-argument ``gmtime``/
    ``localtime``/``ctime``/``asctime``, format-only ``strftime``) stay
    banned everywhere: a date formatted into a benchmark artifact diffs
    run to run.

    **Allowlisted.** ``repro/experiments/exec/kinds.py`` — the single
    env-gated timer.
    """

    code = "CCS002"
    title = "wall-clock read (time.*/datetime.now) in deterministic library code"
    allow = ("repro/experiments/exec/kinds.py",)
    #: Module-path prefixes where the perf-timer family is fair game.
    perf_timer_scopes: Tuple[str, ...] = ("benchmarks/", "examples/")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        from .helpers import collect_import_aliases, resolve_dotted

        aliases = collect_import_aliases(tree)
        findings: List[Finding] = []
        perf_ok = any(ctx.module.startswith(p) for p in self.perf_timer_scopes)

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for item in node.names:
                        if item.name in BANNED_TIME_MEMBERS and not (
                            perf_ok and item.name in PERF_TIMER_MEMBERS
                        ):
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"importing time.{item.name}: wall-clock reads are "
                                    "banned in deterministic code (use ServiceClock or "
                                    "exec.kinds.perf_timer)",
                                )
                            )
            elif isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, aliases)
                if dotted is not None and dotted.startswith("time."):
                    member = dotted.split(".", 1)[1]
                    if reads_clock_by_default(member, node):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"{dotted}() with the time argument omitted formats "
                                "*now* — a wall-clock read; pass an explicit "
                                "timestamp (or thread logical time through)",
                            )
                        )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                dotted = resolve_dotted(node, aliases)
                if dotted is None:
                    continue
                message = self._message_for(dotted, perf_ok)
                if message is not None:
                    findings.append(self.finding(ctx, node, message))

        # De-duplicate chain sub-matches: an Attribute and its inner value
        # can both resolve (e.g. ``datetime.datetime.now`` and
        # ``datetime.datetime``); keep the most specific per location.
        seen: Set[Tuple[int, int]] = set()
        for finding in sorted(findings, key=Finding.sort_key):
            loc = (finding.line, finding.col)
            if loc in seen:
                continue
            seen.add(loc)
            yield finding

    @staticmethod
    def _message_for(dotted: str, perf_ok: bool = False) -> Optional[str]:
        if dotted.startswith("time."):
            member = dotted.split(".", 1)[1]
            if member in BANNED_TIME_MEMBERS:
                if perf_ok and member in PERF_TIMER_MEMBERS:
                    return None
                return (
                    f"{dotted}() reads the host clock; deterministic code must use "
                    "ServiceClock (service) or exec.kinds.perf_timer (tasks)"
                )
        if dotted in BANNED_DATETIME:
            return (
                f"{dotted}() reads the host clock; thread logical time through "
                "explicitly instead"
            )
        # ``from datetime import datetime`` then ``datetime.now(...)``
        # resolves to datetime.datetime.now via the alias map and is
        # already covered by BANNED_DATETIME above.
        return None
