"""Built-in ccs-lint rules.

Importing this package registers every rule class with the registry in
:mod:`repro.lint.registry`.  Adding a rule = adding a module here that
defines a :class:`~repro.lint.registry.Rule` subclass decorated with
``@register``, and importing it below (docs/LINTING.md walks through
the full recipe, including the required test fixtures).
"""

from __future__ import annotations

from . import (  # noqa: F401  (imports register the rules)
    ccs001_global_rng,
    ccs002_wallclock,
    ccs003_float_equality,
    ccs004_coalition_cache,
    ccs005_journal_append,
    ccs006_unordered_iteration,
    ccs007_canonical_json,
    ccs008_array_numeric,
    ccs009_impure_sink_path,
    ccs010_shared_worker_state,
    ccs011_unjournaled_mutation,
    ccs012_tainted_seed,
)

__all__ = [
    "ccs001_global_rng",
    "ccs002_wallclock",
    "ccs003_float_equality",
    "ccs004_coalition_cache",
    "ccs005_journal_append",
    "ccs006_unordered_iteration",
    "ccs007_canonical_json",
    "ccs008_array_numeric",
    "ccs009_impure_sink_path",
    "ccs010_shared_worker_state",
    "ccs011_unjournaled_mutation",
    "ccs012_tainted_seed",
]
