"""CCS008 — dtype narrowing / unordered reductions in array-engine code."""

from __future__ import annotations

import ast
from typing import Iterator

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["ArrayNumericRule"]

#: numpy scalar types narrower than the engine's float64/int64 discipline.
_NARROW_TYPES = frozenset(
    {
        "float16",
        "float32",
        "half",
        "single",
        "int8",
        "int16",
        "int32",
        "uint8",
        "uint16",
        "uint32",
        "longdouble",  # wider, but still a platform-dependent departure
    }
)

#: numpy callables whose float reduction order is unspecified-for-speed.
_UNORDERED_REDUCERS = frozenset(
    {
        "numpy.sum",
        "numpy.add.reduce",
        "numpy.nansum",
        "numpy.einsum",
        "numpy.dot",
        "numpy.matmul",
    }
)


@register
class ArrayNumericRule(Rule):
    """No dtype narrowing or unordered float reductions in the array engine.

    **Invariant.** Inside the array-engine modules
    (``repro/game/arraycore.py``, ``repro/wpt/vector.py``) every float
    array is float64, every index array is int64, and every float
    reduction either runs as an explicit Python-loop accumulation or is
    a numpy reduction carrying a ``ccs-lint: ignore[CCS008]`` suppression
    that names the object-engine call it mirrors.

    **Why.** The array engine's contract is *bit-identity* with the
    object engine: same switch sequence, same total cost to the last
    bit, on every platform.  A narrowed dtype (``np.float32``,
    ``dtype="int32"``) silently rounds 29 bits away and overflows int32
    at realistic demand scales; an unordered reduction (``np.sum``,
    ``ndarray.sum``, ``np.add.reduce``, ``np.dot``) is free to use
    pairwise or SIMD-blocked association, which produces different bits
    than the object engine's left-to-right Python accumulation — and the
    golden fixtures, the equivalence fuzz suite, and the Zobrist-keyed
    cycle detector all compare exactly.

    **Approved fix.** Build arrays with ``dtype=float`` / ``np.int64``.
    Replace reductions whose object-engine counterpart is a Python loop
    with the same loop.  Where the object engine itself performs the
    identical numpy reduction on the identical operands (the
    ``move_sum`` pairwise ``.sum()``), keep the call and suppress with
    ``# ccs-lint: ignore[CCS008] -- <which object-engine call this
    mirrors>`` so the shared-order argument is recorded at the site.
    """

    code = "CCS008"
    title = "dtype narrowing or unordered float reduction in array-engine code"
    scope = ("repro/game/arraycore.py", "repro/wpt/vector.py")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        from .helpers import collect_import_aliases, resolve_dotted

        aliases = collect_import_aliases(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                dotted = resolve_dotted(node, aliases)
                if (
                    dotted is not None
                    and dotted.startswith("numpy.")
                    and dotted.rsplit(".", 1)[-1] in _NARROW_TYPES
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted} narrows the array engine's float64/int64 "
                        "discipline; bit-identity with the object engine is lost",
                    )
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted in _UNORDERED_REDUCERS:
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}(...) reduces floats in unspecified order; "
                    "accumulate with an explicit loop (or suppress, naming "
                    "the object-engine call whose order this mirrors)",
                )
                continue
            if (
                dotted is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sum"
            ):
                # ``<array expr>.sum()`` — numpy's pairwise reduction.
                yield self.finding(
                    ctx,
                    node,
                    ".sum() on an array reduces floats in unspecified order; "
                    "accumulate with an explicit loop (or suppress, naming "
                    "the object-engine call whose order this mirrors)",
                )
            for kw in node.keywords:
                if kw.arg != "dtype":
                    continue
                if (
                    isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                    and kw.value.value in _NARROW_TYPES
                ):
                    yield self.finding(
                        ctx,
                        kw.value,
                        f"dtype={kw.value.value!r} narrows the array engine's "
                        "float64/int64 discipline",
                    )
