"""CCS007 — ``json.dumps`` without ``sort_keys=True`` in canonical code."""

from __future__ import annotations

import ast
from typing import Iterator

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["CanonicalJsonRule"]


@register
class CanonicalJsonRule(Rule):
    """``json.dumps`` / ``json.dump`` must pass ``sort_keys=True`` here.

    **Invariant.** In the canonical-output subtrees
    (``repro/experiments/exec/``, ``repro/service/``,
    ``repro/shard/``), every JSON
    serialization call sorts its keys — or, better, goes through
    :func:`repro.experiments.exec.task.canonical_json`, which also
    normalizes ``-0.0`` and rejects non-finite floats.

    **Why.** Python dicts serialize in insertion order; two code paths
    building "the same" record in different key order produce different
    bytes.  Task fingerprints, cache entries, journal checksums, and the
    byte-compared equivalence suite all assume one canonical byte string
    per value — an unsorted ``json.dumps`` makes equal states hash
    unequal, which shows up as cache misses at best and
    recovery-divergence assertions at worst.

    **Approved fix.** Use ``canonical_json(value)`` for anything
    fingerprinted or checksummed; otherwise pass ``sort_keys=True``
    explicitly (a literal ``True``, so the guarantee is visible at the
    call site).
    """

    code = "CCS007"
    title = "json.dumps/json.dump without sort_keys=True in canonical-output code"
    scope = ("repro/experiments/exec/", "repro/service/", "repro/shard/")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        from .helpers import collect_import_aliases, resolve_dotted

        aliases = collect_import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted not in ("json.dumps", "json.dump"):
                continue
            if self._sorts_keys(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{dotted}(...) without sort_keys=True cannot produce canonical "
                "bytes; use canonical_json(...) or pass sort_keys=True",
            )

    @staticmethod
    def _sorts_keys(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "sort_keys":
                return isinstance(kw.value, ast.Constant) and kw.value.value is True
            if kw.arg is None:
                # ``**kwargs`` — cannot see inside; trust the call site.
                return True
        return False
