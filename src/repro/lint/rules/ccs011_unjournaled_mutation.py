"""CCS011 — public service method mutates state with no journal append."""

from __future__ import annotations

from typing import Iterator, Tuple

from ..finding import Finding
from ..flow import Program, analyze_program
from ..registry import FlowRule, register

__all__ = ["UnjournaledMutationRule"]

#: Service classes whose public methods are the journaled input surface.
SERVICE_CLASSES: Tuple[str, ...] = (
    "repro.service.kernel.ChargingService",
    "repro.shard.service.ShardedService",
)

_JOURNAL_APPEND = "repro.service.journal.Journal.append"
_JOURNAL_BASE = "repro.service.journal.Journal"

#: Public methods that are structurally exempt: lifecycle teardown.
_LIFECYCLE_METHODS = frozenset({"close"})


@register
class UnjournaledMutationRule(FlowRule):
    """Every state-mutating public service method journals (or replays).

    **Invariant.** A public method of ``ChargingService`` or
    ``ShardedService`` (or a subclass) that mutates service state —
    assigns or mutates ``self``-reachable attributes anywhere in its call
    subtree — must, on some path, either append to the journal
    (``Journal.append``) or rebuild the state *from* the journal (a
    ``recover`` replay constructor).  ``close`` is exempt as lifecycle
    teardown.

    **Why.** Crash recovery replays the journal and trusts it to be a
    complete account of every input that moved the kernel.  A public
    method that mutates state without journaling is a side door: calls
    through it exist in the live process but not in the journal, so a
    recovered kernel silently diverges from the one that crashed — the
    exact failure the journal exists to prevent.  Per-file rules cannot
    see this: the mutation, the journal append, and the public entry
    point usually live in three different methods across two files.

    **Approved fix.** Route every externally visible mutation through a
    journaling helper (``_journal`` + apply), or make the method a pure
    query.  Recovery-style methods that rebuild a kernel by replaying its
    journal (``kill_and_recover_shard``) are recognized automatically —
    replay-derived state needs no second journaling.  A genuinely
    journal-free mutator (none exists today) takes an inline suppression
    at the ``def`` line explaining why divergence is impossible.

    **Whole-program.** Findings anchor at the method definition; the
    message names the mutated attribute and the chain that mutates it.
    """

    code = "CCS011"
    title = "public service method mutates state on a journal-free path"

    def check_program(self, program: Program) -> Iterator[Finding]:
        analysis = analyze_program(program)
        graph, purity = analysis.graph, analysis.purity

        service_qnames = [q for q in SERVICE_CLASSES if q in graph.classes]
        targets = [
            cls
            for cls in sorted(graph.classes.values(), key=lambda c: c.qname)
            if any(graph.is_subclass_of(cls, base) for base in service_qnames)
        ]
        for cls in targets:
            for name in sorted(cls.methods):
                method = cls.methods[name]
                if name.startswith("_") or name in _LIFECYCLE_METHODS:
                    continue
                chains = graph.reachable_from([method.qname])
                mutation: Tuple[str, str, Tuple[str, ...]] = ("", "", ())
                journaled = False
                for qname in sorted(chains):
                    reached = graph.functions[qname]
                    if reached.name == "recover" or (
                        reached.name == "append"
                        and (
                            qname == _JOURNAL_APPEND
                            or (
                                reached.cls is not None
                                and reached.cls in graph.classes
                                and graph.is_subclass_of(
                                    graph.classes[reached.cls], _JOURNAL_BASE
                                )
                            )
                        )
                    ):
                        journaled = True
                        break
                    if reached.cls is not None and any(
                        graph.is_subclass_of(graph.classes[reached.cls], base)
                        for base in service_qnames
                        if reached.cls in graph.classes
                    ):
                        writes = purity.effects_of(qname).self_writes
                        if writes and not mutation[0]:
                            mutation = (qname, writes[0].attr, chains[qname])
                if journaled or not mutation[0]:
                    continue
                info = program.get(method.modname)
                if info is None:
                    continue
                where, attr, chain = mutation
                path = " -> ".join(_tail(q) for q in chain)
                yield self.finding_at(
                    info,
                    method.node,
                    f"public method {_tail(method.qname)} mutates service state "
                    f"(self.{attr} in {_tail(where)} via {path}) but no path "
                    "appends to the journal or replays one; a recovered kernel "
                    "would diverge — journal the input or make this a query",
                )


def _tail(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qname
