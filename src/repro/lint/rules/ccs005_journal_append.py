"""CCS005 — append-mode file opens outside the journal implementation."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["JournalAppendRule"]


@register
class JournalAppendRule(Rule):
    """Durable append-only files are written only by ``Journal.append``.

    **Invariant.** Library code never opens a file in append mode
    (``open(path, "a")`` / ``Path.open("a")``) outside
    :mod:`repro.service.journal`.  The journal is the repo's one durable
    append-only artifact, and :meth:`Journal.append` is its one writer.

    **Why.** Crash recovery replays the journal and trusts three
    properties per line: a dense ``seq``, a truncated-SHA checksum over
    canonical JSON, and flush-per-record durability.  A second append
    path — even a well-meaning debug log appended to the same file —
    breaks the dense sequence and the longest-valid-prefix read, which
    silently truncates recovery at the first foreign line.  Keeping
    *every* append-mode open inside ``service/journal.py`` makes "who can
    write a journal?" a one-file review.

    **Approved fix.** Journal writes go through ``Journal.append``; other
    durable outputs are written whole (``"w"``) and swapped in with
    ``os.replace`` (see ``Journal.commit_to`` and the result cache's
    atomic entries).  A genuinely unrelated append-mode file (none exist
    in the library today) takes an inline suppression naming the file it
    appends to and why torn tails are acceptable there.

    **Allowlisted.** ``repro/service/journal.py``.
    """

    code = "CCS005"
    title = "file opened in append mode outside service/journal.py"
    allow = ("repro/service/journal.py",)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            mode = self._open_mode(node)
            if mode is not None and "a" in mode:
                yield self.finding(
                    ctx,
                    node,
                    f"file opened with append mode {mode!r}; journal durability "
                    "discipline allows appends only via Journal.append "
                    "(service/journal.py)",
                )

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        """The constant mode string of an ``open``-like call, if any."""
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode_arg: Optional[ast.expr] = node.args[1] if len(node.args) > 1 else None
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            # pathlib.Path.open(mode=...) — first positional is the mode.
            mode_arg = node.args[0] if node.args else None
        else:
            return None
        if mode_arg is None:
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode_arg = kw.value
        if isinstance(mode_arg, ast.Constant) and isinstance(mode_arg.value, str):
            return mode_arg.value
        return None
