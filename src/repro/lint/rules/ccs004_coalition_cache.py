"""CCS004 — coalition cached state mutated outside the refresh APIs."""

from __future__ import annotations

import ast
from typing import Iterator

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["CoalitionCacheRule"]

#: Cached aggregate fields of :class:`repro.game.coalition.Coalition`.
CACHED_FIELDS = frozenset({"total_demand", "price", "move_sum", "fingerprint"})

#: In-place mutators that would bypass the refresh discipline when called
#: on a coalition's ``members`` set.
SET_MUTATORS = frozenset(
    {"add", "discard", "remove", "clear", "update", "pop", "difference_update",
     "intersection_update", "symmetric_difference_update"}
)


@register
class CoalitionCacheRule(Rule):
    """Coalition cached fields are only written by ``game/coalition.py``.

    **Invariant.** ``Coalition.total_demand`` / ``.price`` / ``.move_sum``
    / ``.fingerprint`` — and the ``members`` set they are derived from —
    are written only by the refresh APIs in
    :mod:`repro.game.coalition` (``_refresh`` / ``_create`` / ``move``),
    which keep the cached aggregates, the structure's running total cost,
    and the Zobrist hash coherent on every membership change.

    **Why.** The PR-1 incremental-cost engine prices every candidate move
    from these cached scalars instead of re-walking member lists; the
    CCSGA cycle detector trusts the incrementally-maintained Zobrist
    hash.  A stray ``coalition.price = ...`` or ``members.add(...)``
    elsewhere desynchronizes cache from membership: candidate costs go
    quietly wrong, ``check_invariants`` starts failing far from the
    culprit, and the pinned dynamics goldens drift.

    **Approved fix.** Mutate through ``CoalitionStructure.move`` (batch
    dynamics) or the ``place`` / ``remove`` / ``retire`` extensions of
    ``GrowableCoalitionStructure`` (live service plans).  Code that
    legitimately *extends* the refresh discipline — and re-establishes
    every cached aggregate before returning — carries an inline
    suppression with its justification.

    **Allowlisted.** ``repro/game/coalition.py`` — the refresh APIs.
    """

    code = "CCS004"
    title = "write to coalition cached state outside game/coalition.py"
    allow = ("repro/game/coalition.py",)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr in CACHED_FIELDS:
                        yield self.finding(
                            ctx,
                            node,
                            f"assignment to cached coalition field '.{target.attr}' "
                            "outside the refresh APIs in game/coalition.py",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in SET_MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "members"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"in-place mutation '.members.{func.attr}(...)' bypasses the "
                        "coalition refresh discipline (use move/place/remove/retire)",
                    )
