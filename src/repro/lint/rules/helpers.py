"""Shared AST utilities for the rule implementations.

The central tool is a tiny *import-alias resolver*: it maps every name an
``import`` statement binds to the dotted path it refers to, so a rule can
ask "what does ``np.random.seed`` actually name?" and get
``numpy.random.seed`` regardless of aliasing (``import numpy as np``,
``from numpy import random as npr``, ``from numpy.random import seed as
s``).  This is deliberately flow-insensitive — rebinding an imported name
mid-function can evade it — but import aliasing is the only indirection
real code in this repo uses, and the rules err on the side of silence
rather than false alarms.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["collect_import_aliases", "resolve_dotted"]


def collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map of local name -> dotted target for every import in *tree*.

    - ``import numpy`` → ``{"numpy": "numpy"}``
    - ``import numpy as np`` → ``{"np": "numpy"}``
    - ``import numpy.random`` → ``{"numpy": "numpy"}`` (attribute access
      reaches the submodule through the top-level binding)
    - ``import numpy.random as npr`` → ``{"npr": "numpy.random"}``
    - ``from numpy import random as npr`` → ``{"npr": "numpy.random"}``
    - ``from numpy.random import seed`` → ``{"seed": "numpy.random.seed"}``

    Relative imports resolve with a leading dot so they can never collide
    with absolute module names.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    top = item.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = ("." * node.level) + (node.module or "")
            for item in node.names:
                if item.name == "*":
                    continue
                bound = item.asname if item.asname is not None else item.name
                aliases[bound] = f"{base}.{item.name}" if base else item.name
    return aliases


def resolve_dotted(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted path a Name/Attribute chain refers to, or ``None``.

    ``np.random.seed`` with ``{"np": "numpy"}`` resolves to
    ``numpy.random.seed``; anything that is not a pure attribute chain
    rooted at an imported name resolves to ``None``.
    """
    parts = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))
