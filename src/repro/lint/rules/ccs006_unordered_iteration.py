"""CCS006 — unordered iteration in canonical-output code."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["UnorderedIterationRule"]

#: Call targets whose *output order* follows the iteration order of their
#: argument — iterating a set through these leaks nondeterminism.
ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})

#: Order-insensitive reducers: iterating a set through these is fine.
ORDER_FREE_CALLS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

#: Attribute names known (domain knowledge) to hold Python sets:
#: ``Coalition.members``.
KNOWN_SET_ATTRS = frozenset({"members"})

#: Annotation heads that mark a name as a set.
SET_ANNOTATIONS = frozenset({"set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet"})


@register
class UnorderedIterationRule(Rule):
    """No iteration over sets in code that feeds fingerprints or goldens.

    **Invariant.** Code under ``repro/experiments/exec/``,
    ``repro/service/``, and ``repro/shard/`` (the places whose outputs
    are canonical-JSON
    fingerprinted, journaled, or pinned as goldens) never iterates a
    ``set`` / ``frozenset`` directly — every set is passed through
    ``sorted(...)`` (or an order-insensitive reducer such as ``sum`` /
    ``min`` / ``len``) before its elements are observed in order.

    **Why.** Set iteration order depends on element hashes; for strings
    it changes per process under hash randomization, and for any type it
    changes as the set's history changes.  Task fingerprints, cache keys,
    journal records, and the golden experiment tables are all *byte*
    -compared — one ``for x in some_set`` that decides output order makes
    serial and parallel runs disagree, recovery replay diverge, and
    goldens flap at random.  ``dict`` iteration is insertion-ordered and
    therefore allowed (deterministic inputs give deterministic order).

    **Approved fix.** ``for x in sorted(the_set)``; build lists when
    order matters; keep genuine order-free reductions (``sum``, ``min``,
    ``len``, set algebra) as they are — the rule already permits them.

    **Detection.** Statically visible sets only: set literals/
    comprehensions, ``set(...)`` / ``frozenset(...)`` calls, names
    assigned or annotated as sets in the same scope, set-typed
    parameters, and the domain attribute ``.members``.  Iterating an
    opaque expression that happens to be a set at runtime is not caught —
    the rule under-approximates rather than crying wolf.
    """

    code = "CCS006"
    title = "iteration over a set in canonical-fingerprint/golden-feeding code"
    scope = ("repro/experiments/exec/", "repro/service/", "repro/shard/")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        self._check_scope(tree, set(), ctx, findings)
        for finding in sorted(findings, key=Finding.sort_key):
            yield finding

    # ------------------------------------------------------------------ #
    # scope walking

    def _check_scope(
        self,
        scope_node: Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef],
        inherited_sets: Set[str],
        ctx: FileContext,
        findings: List[Finding],
    ) -> None:
        """Analyze one function/module scope, then recurse into nested defs."""
        set_names = set(inherited_sets)
        if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in self._all_args(scope_node.args):
                if arg.annotation is not None and self._is_set_annotation(arg.annotation):
                    set_names.add(arg.arg)

        body_nodes = self._scope_body_walk(scope_node)

        # Pass 1: which local names are statically sets?
        for node in body_nodes:
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value, set_names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if self._is_set_annotation(node.annotation) or (
                    node.value is not None and self._is_set_expr(node.value, set_names)
                ):
                    set_names.add(node.target.id)

        # Pass 2: flag unordered observations of those sets.
        for node in body_nodes:
            self._check_node(node, set_names, ctx, findings)

        # Recurse into nested scopes.
        for node in body_nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_scope(node, set_names, ctx, findings)

    @staticmethod
    def _all_args(args: ast.arguments) -> List[ast.arg]:
        out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg is not None:
            out.append(args.vararg)
        if args.kwarg is not None:
            out.append(args.kwarg)
        return out

    @staticmethod
    def _scope_body_walk(
        scope_node: Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> List[ast.AST]:
        """All nodes of this scope, excluding nested function bodies."""
        out: List[ast.AST] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(scope_node))
        while stack:
            node = stack.pop()
            out.append(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scope handled recursively
            stack.extend(ast.iter_child_nodes(node))
        return out

    # ------------------------------------------------------------------ #
    # classification

    def _is_set_annotation(self, node: ast.expr) -> bool:
        head: Optional[ast.expr] = node
        if isinstance(head, ast.Subscript):
            head = head.value
        if isinstance(head, ast.Name):
            return head.id in SET_ANNOTATIONS
        if isinstance(head, ast.Attribute):
            return head.attr in SET_ANNOTATIONS
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            # String annotation: cheap textual head check.
            text = head.value.split("[")[0].strip()
            return text.split(".")[-1] in SET_ANNOTATIONS
        return False

    def _is_set_expr(self, node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.Name) and node.id in set_names:
            return True
        if isinstance(node, ast.Attribute) and node.attr in KNOWN_SET_ATTRS:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra stays a set when either side is known to be one.
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    def _check_node(
        self,
        node: ast.AST,
        set_names: Set[str],
        ctx: FileContext,
        findings: List[Finding],
    ) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_set_expr(node.iter, set_names):
                findings.append(self._flag(ctx, node.iter, "for-loop"))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if self._is_set_expr(gen.iter, set_names):
                    findings.append(self._flag(ctx, gen.iter, "comprehension"))
        elif isinstance(node, ast.Call):
            name = self._call_name(node)
            if name in ORDER_SENSITIVE_CALLS and node.args:
                if self._is_set_expr(node.args[0], set_names):
                    findings.append(self._flag(ctx, node.args[0], f"{name}(...)"))
            elif name == "join" and node.args and self._is_set_expr(node.args[0], set_names):
                findings.append(self._flag(ctx, node.args[0], "str.join"))

    @staticmethod
    def _call_name(node: ast.Call) -> Optional[str]:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def _flag(self, ctx: FileContext, node: ast.expr, where: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"set iterated in {where}: iteration order is nondeterministic in "
            "canonical-output code — wrap in sorted(...) (order-free reducers "
            "like sum/min/len are fine)",
        )
