"""CCS001 — all randomness flows through ``repro.rng``."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["GlobalRngRule"]

#: numpy.random members that carry no process-global state and are the
#: building blocks ``repro.rng`` itself is made of.
ALLOWED_NP_RANDOM = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register
class GlobalRngRule(Rule):
    """No ``random`` module and no global-state ``numpy.random`` calls.

    **Invariant.** Every random draw in this repo flows through
    :mod:`repro.rng` (``ensure_rng`` / ``spawn`` / ``derive_seed``), which
    hands out explicit ``numpy.random.Generator`` streams keyed by
    SeedSequence spawn paths.

    **Why.** Task fingerprints and the serial == parallel equivalence
    guarantee (docs/EXECUTION.md) hold because a task's randomness is a
    pure function of ``(root seed, spawn path)``.  One call that touches
    process-global RNG state — ``random.random()``, ``np.random.seed``,
    ``np.random.rand``, a shared ``RandomState`` — makes results depend
    on execution order and worker placement: byte-identical replay, the
    result cache, and the golden traces all silently break.

    **Approved fix.** Thread a ``numpy.random.Generator`` through
    explicitly; create streams with ``repro.rng.ensure_rng`` and derive
    child seeds with ``repro.rng.derive_seed`` / ``repro.rng.spawn``.
    Stateless ``numpy.random`` members (``Generator``, ``default_rng``,
    ``SeedSequence``, the bit generators) are allowed everywhere.

    **Allowlisted.** ``repro/rng.py`` — the single blessed wrapper.
    """

    code = "CCS001"
    title = "global RNG state (random module / legacy numpy.random) used outside repro.rng"
    allow = ("repro/rng.py",)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        from .helpers import collect_import_aliases

        aliases = collect_import_aliases(tree)
        findings: List[Finding] = []

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random" or item.name.startswith("random."):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "the stdlib 'random' module is process-global state; "
                                "use repro.rng (ensure_rng / derive_seed) instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "importing from the stdlib 'random' module; "
                            "use repro.rng (ensure_rng / derive_seed) instead",
                        )
                    )
                elif node.level == 0 and node.module == "numpy.random":
                    for item in node.names:
                        if item.name != "*" and item.name not in ALLOWED_NP_RANDOM:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"numpy.random.{item.name} is legacy global-state "
                                    "RNG API; use an explicit Generator from "
                                    "repro.rng.ensure_rng",
                                )
                            )

        findings.extend(self._check_attribute_chains(tree, ctx, aliases))
        for finding in sorted(findings, key=Finding.sort_key):
            yield finding

    def _check_attribute_chains(
        self, tree: ast.Module, ctx: FileContext, aliases: Dict[str, str]
    ) -> List[Finding]:
        from .helpers import resolve_dotted

        findings: List[Finding] = []
        # Visit top-down and stop descending once a chain is classified, so
        # ``np.random.seed`` is one finding, not also an inner ``np.random``.
        stack: List[Tuple[ast.AST, bool]] = [(tree, False)]
        while stack:
            node, skip = stack.pop()
            if skip:
                continue
            classified = False
            if isinstance(node, (ast.Attribute, ast.Name)):
                dotted = resolve_dotted(node, aliases)
                if dotted is not None:
                    classified = self._classify(dotted, node, ctx, findings)
            for child in ast.iter_child_nodes(node):
                stack.append((child, classified))
        return findings

    def _classify(
        self, dotted: str, node: ast.AST, ctx: FileContext, findings: List[Finding]
    ) -> bool:
        """Record a finding (or an allowance) for *dotted*; True = handled."""
        if dotted == "numpy.random":
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "referencing the global numpy.random module; pass an explicit "
                    "Generator from repro.rng.ensure_rng instead",
                )
            )
            return True
        if dotted.startswith("numpy.random."):
            member = dotted.split(".")[2]
            if member in ALLOWED_NP_RANDOM:
                return True
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"numpy.random.{member} touches process-global RNG state; "
                    "use an explicit Generator from repro.rng.ensure_rng",
                )
            )
            return True
        if dotted == "random" or dotted.startswith("random."):
            # The import itself is already flagged; flagging usages too
            # would duplicate noise, but aliased *members* imported via
            # ``from random import x`` only show up here.
            if "." in dotted:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"stdlib {dotted}() draws from process-global RNG state; "
                        "use repro.rng instead",
                    )
                )
            return True
        return False
