"""CCS009 — nondeterminism source reachable from a replay-critical sink."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..finding import Finding
from ..flow import Program, analyze_program
from ..registry import FlowRule, register

__all__ = ["ImpureSinkPathRule"]

#: Functions whose entire call subtree must be free of nondeterminism
#: sources: everything they execute is (or feeds) replayed state.
SINK_ROOTS: Tuple[str, ...] = (
    "repro.service.journal.Journal.append",
    "repro.service.kernel.ChargingService.submit",
    "repro.service.kernel.ChargingService.advance",
    "repro.service.kernel.ChargingService.drain",
    "repro.service.kernel.ChargingService.cancel",
    "repro.service.kernel.ChargingService.fail_charger",
    "repro.service.kernel.ChargingService.restore_charger",
    "repro.service.kernel.ChargingService.metrics_snapshot",
    "repro.shard.service.ShardedService.submit",
    "repro.shard.service.ShardedService.advance",
    "repro.shard.service.ShardedService.drain",
    "repro.shard.service.ShardedService.cancel",
    "repro.shard.service.ShardedService.fail_charger",
    "repro.shard.service.ShardedService.restore_charger",
    "repro.shard.service.ShardedService.metrics_snapshot",
    "repro.service.plan.IncrementalPlanner.quote",
    "repro.service.admission.AdmissionController.decide",
    "repro.experiments.exec.task.Task.fingerprint",
    "repro.experiments.exec.task.canonical_json",
    "repro.rng.derive_seed",
)

#: Classes whose ``append`` overrides are sinks too (subclass journals).
_JOURNAL_BASE = "repro.service.journal.Journal"


@register
class ImpureSinkPathRule(FlowRule):
    """No nondeterminism source on any path below a replay-critical sink.

    **Invariant.** Starting from the replay-critical entry points —
    ``Journal.append`` (and subclass overrides), the public
    ``ChargingService``/``ShardedService`` input methods, planner
    ``quote``, admission ``decide``, ``Task.fingerprint``,
    ``canonical_json``, ``derive_seed`` — no transitively reachable
    program function reads a nondeterminism source: the wall clock, the
    process-global RNG, OS entropy/UUIDs, environment variables, or
    filesystem listing order.

    **Why.** These entry points decide what gets journaled, quoted,
    admitted, fingerprinted, or seeded.  The per-file rules (CCS001,
    CCS002) catch a ``time.time()`` written *in* such a function, but a
    read three calls below — in a helper in another module — corrupts
    replay identically and is invisible to any single-file rule.  One
    impure helper shared by a sink path turns byte-identical replay into
    a race against the clock.

    **Approved fix.** Thread the value in: take the timestamp from the
    :class:`~repro.service.clock.ServiceClock`, the randomness from an
    explicitly seeded ``Generator`` (``repro.rng.ensure_rng``), the
    configuration from a parameter bound before the run starts.  A read
    that is genuinely pinned before any journaled work (e.g. import-time
    engine selection validated bit-identical by the tier-1 gate) takes an
    inline suppression at the read site stating that pinning.

    **Whole-program.** Findings anchor at the offending source read, and
    the message carries the full call chain from the sink that reaches
    it.
    """

    code = "CCS009"
    title = "nondeterminism source reachable from a replay-critical sink"

    def check_program(self, program: Program) -> Iterator[Finding]:
        analysis = analyze_program(program)
        graph, purity = analysis.graph, analysis.purity

        roots: List[str] = [q for q in SINK_ROOTS if q in graph.functions]
        for cls in sorted(graph.classes.values(), key=lambda c: c.qname):
            if cls.qname != _JOURNAL_BASE and graph.is_subclass_of(
                cls, _JOURNAL_BASE
            ):
                append = cls.methods.get("append")
                if append is not None:
                    roots.append(append.qname)

        chains = graph.reachable_from(roots)
        seen: Dict[Tuple[str, int, int, str], bool] = {}
        for qname in sorted(chains):
            fn = graph.functions[qname]
            info = program.get(fn.modname)
            if info is None:
                continue
            for read in purity.effects_of(qname).sources:
                node = read.node
                key = (
                    fn.modname,
                    int(getattr(node, "lineno", 1)),
                    int(getattr(node, "col_offset", 0)),
                    read.dotted,
                )
                if key in seen:
                    continue
                seen[key] = True
                chain = chains[qname]
                path = " -> ".join(_short(q) for q in chain)
                yield self.finding_at(
                    info,
                    node,
                    f"{read.dotted} ({read.kind}) executes on a replay-critical "
                    f"path: reachable from sink {_short(chain[0])} via {path}; "
                    "thread the value in (ServiceClock / seeded Generator / "
                    "bound config) instead",
                )


def _short(qname: str) -> str:
    """``repro.service.kernel.ChargingService.submit`` → class.method."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qname
