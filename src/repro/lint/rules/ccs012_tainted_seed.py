"""CCS012 — wall-clock/RNG-tainted value flows into seed derivation."""

from __future__ import annotations

from typing import Iterator, Tuple

from ..finding import Finding
from ..flow import Program, analyze_program
from ..flow.taint import trace_taint
from ..registry import FlowRule, register

__all__ = ["TaintedSeedRule"]

#: Program functions every argument of which is seed/fingerprint-critical.
SEED_SINKS: Tuple[str, ...] = (
    "repro.rng.derive_seed",
    "repro.rng.ensure_rng",
    "repro.experiments.exec.task.Task.__init__",
    "repro.experiments.exec.task.canonical_json",
)


@register
class TaintedSeedRule(FlowRule):
    """No nondeterministic *value* may feed a seed or a task fingerprint.

    **Invariant.** No value produced by a nondeterminism source — the
    wall clock, the global RNG, OS entropy, UUIDs, environment reads —
    flows (through any chain of assignments, arithmetic, wrapping calls,
    and function returns) into an argument of ``derive_seed`` /
    ``ensure_rng``, a ``Task`` construction, or ``canonical_json``.

    **Why.** CCS009 bans *executing* a source on a sink path; this rule
    bans the sharper failure where the source's *value* becomes the seed.
    ``derive_seed(int(time.time()))`` passes every per-file rule if the
    clock read and the seed call live in different functions — yet it
    poisons the whole derivation tree: every stream, every trial, every
    fingerprint downstream of that seed differs run to run, and replay
    can never match.  Taint survives laundering: ``int()``, ``f"{t}"``,
    arithmetic, a helper that returns the clock — the value is still the
    clock.

    **Approved fix.** Seeds come from declared configuration (CLI flag,
    spec file, ``derive_seed(root, *path)`` over stable labels); task
    identity comes from the payload, never from when or where it was
    built.  If an experiment genuinely wants a fresh seed per run, make
    it explicit input (``--seed``), not ambient time.

    **Whole-program.** Interprocedural: taint propagates through return
    values and parameters to a fixpoint; findings anchor at the call that
    passes the tainted value sinkward and name the source, the sink, and
    the chain between them.
    """

    code = "CCS012"
    title = "nondeterministic value flows into seed/fingerprint derivation"

    def check_program(self, program: Program) -> Iterator[Finding]:
        analysis = analyze_program(program)
        report = trace_taint(analysis.graph, SEED_SINKS)
        for f in report.findings:
            fn = analysis.graph.functions.get(f.fn)
            if fn is None:
                continue
            info = program.get(fn.modname)
            if info is None:
                continue
            path = " -> ".join(_tail(q) for q in f.chain)
            yield self.finding_at(
                info,
                f.node,
                f"value from {f.source} (line {f.source_line}) flows into "
                f"{_tail(f.sink)} via {path}; seeds and fingerprints must "
                "derive from declared config, not ambient state",
            )


def _tail(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qname
