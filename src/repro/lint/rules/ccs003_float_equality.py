"""CCS003 — float-literal ``==`` / ``!=`` comparisons."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..analyzer import FileContext
from ..finding import Finding
from ..registry import Rule, register

__all__ = ["FloatEqualityRule"]


@register
class FloatEqualityRule(Rule):
    """No ``==`` / ``!=`` against a float literal.

    **Invariant.** Exact float comparisons are only ever made against
    *named sentinels* from :mod:`repro.numeric` (``EXACT_ZERO``,
    ``EXACT_ONE``) or through its helpers (``is_exact_zero``,
    ``is_exact``); approximate comparisons go through
    ``repro.numeric.isclose`` or a named tolerance constant
    (``DEFAULT_REL_TOL``, ``CACHE_REL_TOL``, ...).

    **Why.** A bare ``x == 0.0`` does not say whether the author meant "x
    was *constructed* as exactly zero" (a valid sentinel guard — e.g. the
    session price of an empty member list) or "x is numerically
    negligible" (a bug magnet after any accumulation: ``0.1 + 0.2 !=
    0.3``).  Routing the first kind through ``is_exact_zero`` makes the
    intent machine-visible and reviews trivial, and keeps every tolerance
    the repo relies on (cache-coherence audits, golden-trace drift
    bounds) defined once in ``repro/numeric.py`` instead of scattered as
    magic literals.

    **Approved fix.** Exact sentinel guard → ``is_exact_zero(x)`` /
    ``x == EXACT_ZERO``.  Approximate comparison →
    ``repro.numeric.isclose(a, b)`` or an explicit named tolerance.
    Comparisons against ``float("inf")`` are exact by construction and
    are not flagged.
    """

    code = "CCS003"
    title = "float literal compared with == / != (use repro.numeric sentinels/tolerances)"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for k, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[k], operands[k + 1]
                literal = self._float_literal(left)
                if literal is None:
                    literal = self._float_literal(right)
                if literal is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    ctx,
                    node,
                    f"float literal {literal!r} compared with {symbol}; use "
                    "repro.numeric (is_exact_zero / EXACT_* sentinels / isclose)",
                )

    @staticmethod
    def _float_literal(node: ast.expr) -> Optional[float]:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return node.value
        # A negated literal (``x == -1.0``) parses as UnaryOp(USub, 1.0).
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and type(node.operand.value) is float
        ):
            return -node.operand.value if isinstance(node.op, ast.USub) else node.operand.value
        return None
