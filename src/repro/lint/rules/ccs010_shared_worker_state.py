"""CCS010 — cross-process shared mutable state reachable from workers."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..finding import Finding
from ..flow import Program, analyze_program
from ..registry import FlowRule, register

__all__ = ["SharedWorkerStateRule"]


@register
class SharedWorkerStateRule(FlowRule):
    """Task-kind workers must not touch per-process mutable state.

    **Invariant.** No function reachable from a ``@task_kind`` worker
    mutates module-level mutable state or carries a mutable default
    argument.  Workers receive everything they need in the task payload
    and return everything they produce in the result.

    **Why.** The executor runs workers in-process, threaded, or in
    spawned processes — and the README promises identical results across
    all three.  Module-level state lives once *per process*: a worker
    that appends to a module dict sees its own process's copy, so the
    observable result depends on which process the scheduler placed the
    task in.  Mutable defaults are the same trap one level down — shared
    across calls within a process, fresh in every spawned one.  Either
    way, results stop being a function of the task payload.

    **Approved fix.** Pass state through the task payload and the return
    value; keep registries (``_KINDS``-style) import-time only, written
    by decorators, never by workers.  A worker-reachable cache that is
    provably derived (recomputable from payload alone, like the
    coalition-value memo) takes an inline suppression saying so.

    **Whole-program.** Roots are functions decorated with ``task_kind``;
    the message names the worker and the call chain to the mutation.
    Import-time registration by the decorator itself is exempt by
    construction (decorator expressions are not part of the worker's
    call-time body).
    """

    code = "CCS010"
    title = "worker-reachable mutation of per-process shared state"

    def check_program(self, program: Program) -> Iterator[Finding]:
        analysis = analyze_program(program)
        graph, purity = analysis.graph, analysis.purity

        workers = [
            fn.qname
            for fn in graph.iter_functions()
            if any(
                d == "task_kind" or d.endswith(".task_kind") for d in fn.decorators
            )
        ]
        chains = graph.reachable_from(workers)
        seen: Dict[Tuple[str, int, int, str], bool] = {}
        for qname in sorted(chains):
            fn = graph.functions[qname]
            info = program.get(fn.modname)
            if info is None:
                continue
            effects = purity.effects_of(qname)
            chain = " -> ".join(_tail(q) for q in chains[qname])
            for default in effects.mutable_defaults:
                key = (
                    fn.modname,
                    int(getattr(default, "lineno", 1)),
                    int(getattr(default, "col_offset", 0)),
                    "default",
                )
                if key in seen:
                    continue
                seen[key] = True
                yield self.finding_at(
                    info,
                    default,
                    f"mutable default argument on {_tail(qname)} is reachable "
                    f"from @task_kind worker {_tail(chains[qname][0])} "
                    f"(via {chain}); shared across calls in one process, fresh "
                    "in every spawned one — pass the value explicitly",
                )
            for write in effects.global_writes:
                key = (
                    fn.modname,
                    int(getattr(write.node, "lineno", 1)),
                    int(getattr(write.node, "col_offset", 0)),
                    write.name,
                )
                if key in seen:
                    continue
                seen[key] = True
                yield self.finding_at(
                    info,
                    write.node,
                    f"module-level mutable '{write.name}' is mutated on a "
                    f"@task_kind worker path ({chain}); per-process state makes "
                    "results depend on worker placement — move it into the "
                    "task payload/result",
                )


def _tail(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qname
