"""ccs-lint — domain-aware static analysis for the repro codebase.

Generic linters check style; this package checks the *invariants* the
reproduction's correctness guarantees actually rest on:

- **CCS001** — all randomness flows through :mod:`repro.rng` (task
  fingerprints and serial==parallel equivalence);
- **CCS002** — no wall-clock reads in deterministic code (cache/replay
  byte-identity);
- **CCS003** — no float-literal ``==``/``!=`` (intent-visible numeric
  guards via :mod:`repro.numeric`);
- **CCS004** — coalition cached state is only written by the refresh
  APIs in ``game/coalition.py`` (incremental-cost coherence);
- **CCS005** — append-mode opens only in ``service/journal.py``
  (journal durability / longest-valid-prefix recovery);
- **CCS006** — no set iteration in canonical-output code
  (fingerprint / golden byte-stability);
- **CCS007** — ``json.dumps`` sorts keys in canonical-output code.

Run ``ccs-lint --explain CCS00x`` for any rule's full rationale, or see
docs/LINTING.md for the catalog, the suppression policy, and the recipe
for adding a rule.  The analyzer itself is pure stdlib (its only numpy
exposure is the parent package import) and exposes a small library API
used by the test suite.
"""

from __future__ import annotations

from .analyzer import FileReport, analyze_paths, analyze_source, normalize_module
from .baseline import Baseline
from .finding import Finding
from .registry import Rule, all_rules, get_rule, register

__all__ = [
    "Baseline",
    "FileReport",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "normalize_module",
    "register",
]
