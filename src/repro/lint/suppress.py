"""Inline suppression comments.

Two forms, parsed from real comment tokens (never from string literals)::

    x.fingerprint ^= token  # ccs-lint: ignore[CCS004] -- extension keeps caches coherent
    # ccs-lint: ignore[CCS003, CCS006] -- reason applies to the next line
    value = compute()

A suppression at the end of a code line silences the named codes for
findings anchored on that physical line.  A suppression comment *alone*
on a line covers the next code line below it (intervening comment or
blank lines included), so a justification can span several comment
lines.  ``ignore`` with no bracket list silences every rule on the line
(discouraged — name the codes).

The ``--`` reason text is free-form but strongly encouraged: the
suppression policy (docs/LINTING.md) asks every ignore to say *why* the
invariant holds anyway at that site.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Tuple

__all__ = ["ALL_CODES", "Suppressions", "parse_suppressions"]

#: Sentinel meaning "every code is suppressed on this line".
ALL_CODES = "*"

_PATTERN = re.compile(
    r"#\s*ccs-lint\s*:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?"
)


class Suppressions:
    """Per-line suppressed code sets for one source file."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]]) -> None:
        self._by_line = by_line
        self.matched: Dict[Tuple[int, str], bool] = {}

    def is_suppressed(self, code: str, *lines: int) -> bool:
        """Whether *code* is silenced on any of the given physical lines."""
        for line in lines:
            codes = self._by_line.get(line)
            if codes is not None and (ALL_CODES in codes or code in codes):
                return True
        return False

    @property
    def lines(self) -> List[int]:
        """Physical lines carrying a suppression comment (for audits)."""
        return sorted(self._by_line)


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# ccs-lint: ignore[...]`` comments from *source*.

    Tolerant of tokenization failures (the analyzer reports a syntax
    error separately); a file that cannot be tokenized simply has no
    suppressions.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    # A suppression comment on the final line of a file with no trailing
    # newline must still tokenize: some tokenizer versions error on (or
    # drop) an unterminated last line, so normalize before tokenizing.
    # Line numbers are unaffected — nothing is added before the comment.
    if source and not source.endswith("\n"):
        source = source + "\n"
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions({})
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(tok.string)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            codes = frozenset({ALL_CODES})
        else:
            names = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
            codes = names if names else frozenset({ALL_CODES})
        line = tok.start[0]
        by_line[line] = by_line.get(line, frozenset()) | codes
        # A standalone suppression comment covers the statement below it:
        # carry the codes through any further comment/blank lines down to
        # (and including) the first code line.
        stripped = tok.line.strip()
        if stripped.startswith("#"):
            lines = source.splitlines()
            cursor = line  # 1-based; lines[cursor] is the next physical line
            while cursor < len(lines):
                text = lines[cursor].strip()
                cursor += 1
                by_line[cursor] = by_line.get(cursor, frozenset()) | codes
                if text == "" or text.startswith("#"):
                    continue
                break
    return Suppressions(by_line)
