"""SARIF 2.1.0 emission for ccs-lint findings.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
UIs ingest: ``ccs-lint --format sarif | upload-sarif`` turns findings
into inline PR annotations.  The emitter is deliberately minimal — one
``run``, the full rule catalog in the driver (so every result can carry
a ``ruleIndex``), one physical location per result — and deterministic:
the same findings always serialize to the same bytes (sorted keys,
sorted results, trailing newline).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .finding import Finding
from .registry import Rule, all_rules

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Reserved syntax-error code (CCS000) has no registered Rule class.
_SYNTAX_RULE = {
    "id": "CCS000",
    "name": "SyntaxError",
    "shortDescription": {"text": "file cannot be parsed"},
    "fullDescription": {
        "text": (
            "The analyzer could not parse this file; every other rule is "
            "blind to it until the syntax error is fixed."
        )
    },
}


def _rule_entry(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.code,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.explanation()},
    }


def _uri(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


def to_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    """The SARIF 2.1.0 document for *findings*, as a plain dict."""
    catalog: List[Dict[str, Any]] = [_SYNTAX_RULE]
    catalog.extend(_rule_entry(rule) for rule in all_rules())
    index = {entry["id"]: k for k, entry in enumerate(catalog)}

    results: List[Dict[str, Any]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        result: Dict[str, Any] = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _uri(finding.path),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.code in index:
            result["ruleIndex"] = index[finding.code]
        if finding.snippet:
            region = result["locations"][0]["physicalLocation"]["region"]
            region["snippet"] = {"text": finding.snippet}
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "ccs-lint",
                        "rules": catalog,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """Deterministic JSON text of the SARIF document (sorted keys)."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True) + "\n"
