"""The ``ccs-lint`` command line (also ``python -m repro.lint``).

Usage::

    ccs-lint [paths...]                 # analyze (default: src)
    ccs-lint --explain CCS004           # why a rule exists + approved fix
    ccs-lint --list-rules               # the rule catalog, one line each
    ccs-lint --write-baseline           # grandfather current findings
    ccs-lint --baseline FILE            # explicit baseline location
    ccs-lint --format sarif             # SARIF 2.1.0 on stdout (for CI upload)
    ccs-lint --time-budget 10           # fail if analysis exceeds N seconds

Exit codes: 0 = clean (no unsuppressed, unbaselined findings),
1 = findings (or time budget exceeded), 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .analyzer import analyze_paths
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .finding import Finding
from .registry import all_rules, get_rule
from .sarif import render_sarif

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ccs-lint",
        description=(
            "Domain-aware static analysis for the repro codebase: enforces the "
            "determinism, numeric, and state-discipline invariants the "
            "reproduction's guarantees rest on."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print the full rationale and approved fix for one rule, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE_NAME} in the current directory, if present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary line, not individual findings",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        dest="output_format",
        help="findings output format: human-readable text (default) or SARIF 2.1.0",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        metavar="SECONDS",
        default=None,
        help="fail (exit 1) if the whole analysis takes longer than this",
    )
    return parser


def _resolve_baseline_path(arg: Optional[str], no_baseline: bool) -> Optional[Path]:
    if no_baseline:
        return None
    if arg is not None:
        return Path(arg)
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.exists() else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.explain:
        code = args.explain.upper()
        try:
            rule = get_rule(code)
        except KeyError:
            known = ", ".join(r.code for r in all_rules())
            print(f"unknown rule {code!r}; known rules: {known}", file=sys.stderr)
            return 2
        print(f"{rule.code}: {rule.title}")
        print()
        print(rule.explanation())
        return 0

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all files"
            print(f"{rule.code}  {rule.title}  [scope: {scope}]")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"ccs-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    # Elapsed wall time for the --time-budget gate; a perf timer, never a
    # value that reaches any analyzed or journaled output.
    # ccs-lint: ignore[CCS002] -- measures the linter's own wall time
    # for --time-budget; never enters analyzed output.
    started = time.perf_counter()
    reports = analyze_paths(args.paths)
    findings: List[Finding] = []
    suppressed = 0
    for report in reports:
        findings.extend(report.findings)
        suppressed += len(report.suppressed)
    findings.sort(key=Finding.sort_key)

    if args.write_baseline:
        target = (
            Path(args.baseline) if args.baseline is not None else Path(DEFAULT_BASELINE_NAME)
        )
        count = Baseline.write(target, findings)
        print(f"ccs-lint: wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {target}")
        return 0

    baseline_path = _resolve_baseline_path(args.baseline, args.no_baseline)
    baselined: List[Finding] = []
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"ccs-lint: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
        findings, baselined = baseline.partition(findings)

    if args.output_format == "sarif":
        sys.stdout.write(render_sarif(findings))
    elif not args.quiet:
        for finding in findings:
            print(finding.render())

    n_files = len(reports)
    summary = (
        f"ccs-lint: {len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {n_files} file{'s' if n_files != 1 else ''}"
    )
    extras = []
    if suppressed:
        extras.append(f"{suppressed} suppressed inline")
    if baselined:
        extras.append(f"{len(baselined)} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    print(summary, file=sys.stderr)

    if args.time_budget is not None:
        # ccs-lint: ignore[CCS002] -- perf timer for the linter's own
        # --time-budget gate.
        elapsed = time.perf_counter() - started
        if elapsed > args.time_budget:
            print(
                f"ccs-lint: analysis took {elapsed:.2f}s, over the "
                f"{args.time_budget:.2f}s budget",
                file=sys.stderr,
            )
            return 1
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
