"""``python -m repro.lint`` — same entry point as the ``ccs-lint`` script."""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
