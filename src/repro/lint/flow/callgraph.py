"""A name-resolution-based, conservative call graph.

Functions are identified by *qualified name* —
``repro.service.kernel.ChargingService.submit`` — and edges are resolved
purely from names and declared types, never from runtime values:

- import aliases (absolute *and* relative) resolve cross-module calls;
- ``self.method(...)`` dispatches within the class and its in-program
  base classes;
- ``self.attr.method(...)`` resolves through *attribute type bindings*
  inferred from ``self.attr = ClassName(...)`` assignments, stores of
  annotated parameters (``self.j = j`` with ``j: Journal``), and
  ``self.attr: ClassName`` / ``Optional[ClassName]`` /
  ``Dict[K, ClassName]`` / ``List[ClassName]`` annotations;
- parameter annotations and single-assignment locals
  (``j = Journal(path)``) bind names inside a function body the same way;
- calling a class is an edge to its ``__init__``.

Anything dynamic — callbacks, ``getattr``, values whose type no
annotation or constructor names — stays unresolved.  Like the per-file
alias resolver, the graph errs toward silence: a missing edge can hide a
real violation (documented limitation), a fabricated edge would spray
false findings across the tree.  Nested ``def``s fold into their
enclosing function: a local helper's effects are charged to the function
that defines it, since that is where it is (almost always) called.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .program import ModuleInfo, Program

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "absolute_aliases",
    "build_callgraph",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def absolute_aliases(info: ModuleInfo) -> Dict[str, str]:
    """Local name → absolute dotted target for every import in *info*.

    Same contract as the per-file
    :func:`repro.lint.rules.helpers.collect_import_aliases`, except
    relative imports resolve against the module's package instead of
    carrying leading dots, so the result is directly joinable with
    program module names.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    top = item.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # level=1 resolves in the module's own package, each
                # further dot climbs one package higher.
                parts = info.package.split(".") if info.package else []
                climb = node.level - 1
                parts = parts[: len(parts) - climb] if climb else parts
                base = ".".join(parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for item in node.names:
                if item.name == "*":
                    continue
                bound = item.asname if item.asname is not None else item.name
                aliases[bound] = f"{base}.{item.name}" if base else item.name
    return aliases


@dataclass
class FunctionInfo:
    """One program function or method."""

    qname: str
    modname: str
    name: str
    node: FunctionNode
    cls: Optional[str] = None  # owning class qname, if a method
    decorators: Tuple[str, ...] = ()
    is_property: bool = False

    @property
    def module(self) -> str:
        return self.modname


@dataclass
class ClassInfo:
    """One program class: methods, bases, and attribute type bindings."""

    qname: str
    modname: str
    name: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()  # resolved dotted base names, best effort
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: self.attr → class qname (a single, unambiguous binding).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: self.attr → element class qname for list/dict-of-instances attrs.
    attr_elem_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its AST node."""

    caller: str
    callee: str
    node: ast.AST

    @property
    def line(self) -> int:
        return int(getattr(self.node, "lineno", 1))


class CallGraph:
    """Functions, classes, and resolved call edges for a program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, List[CallSite]] = {}
        self._reverse: Optional[Dict[str, List[str]]] = None
        self._resolvers: Dict[str, "_ModuleResolver"] = {}

    # ------------------------------------------------------------------ #
    # lookup

    def callees(self, qname: str) -> List[CallSite]:
        return self.edges.get(qname, [])

    def callers(self, qname: str) -> List[str]:
        if self._reverse is None:
            rev: Dict[str, List[str]] = {}
            for caller, sites in self.edges.items():
                for site in sites:
                    rev.setdefault(site.callee, []).append(caller)
            self._reverse = {k: sorted(set(v)) for k, v in rev.items()}
        return self._reverse.get(qname, [])

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        return self.classes.get(fn.cls) if fn.cls is not None else None

    def method_on(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Resolve *name* on *cls*, walking in-program base classes."""
        seen: Set[str] = set()
        queue: List[ClassInfo] = [cls]
        while queue:
            current = queue.pop(0)
            if current.qname in seen:
                continue
            seen.add(current.qname)
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                base_cls = self.classes.get(base)
                if base_cls is not None:
                    queue.append(base_cls)
        return None

    def is_subclass_of(self, cls: ClassInfo, base_qname: str) -> bool:
        """Whether *cls* is *base_qname* or transitively derives from it."""
        seen: Set[str] = set()
        queue: List[str] = [cls.qname]
        while queue:
            current = queue.pop(0)
            if current == base_qname:
                return True
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return False

    def reachable_from(self, roots: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
        """BFS over call edges from *roots*.

        Returns ``{qname: witness chain}`` where the chain is the shortest
        discovered call path ``(root, …, qname)`` — the evidence a finding
        message renders.  Roots map to one-element chains.
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for root in roots:
            if root in self.functions and root not in chains:
                chains[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for site in self.callees(current):
                if site.callee in chains or site.callee not in self.functions:
                    continue
                chains[site.callee] = chains[current] + (site.callee,)
                queue.append(site.callee)
        return chains

    # ------------------------------------------------------------------ #
    # iteration

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.functions):
            yield self.functions[qname]


# ---------------------------------------------------------------------- #
# construction


def _annotation_class(
    annotation: Optional[ast.expr], resolver: "_ModuleResolver"
) -> Tuple[Optional[str], Optional[str]]:
    """``(instance class, element class)`` a type annotation names.

    ``Journal`` → ``(qname, None)``; ``Optional[Journal]`` unwraps;
    ``List[Journal]`` / ``Dict[int, Journal]`` / ``Sequence[Journal]``
    yield ``(None, qname)``.  Anything else is ``(None, None)``.
    """
    if annotation is None:
        return None, None
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        cls = resolver.class_for_expr(annotation)
        return (cls.qname if cls is not None else None), None
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else ""
        )
        inner = annotation.slice
        if head_name in ("Optional", "Union"):
            elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for elt in elts:
                instance, _ = _annotation_class(elt, resolver)
                if instance is not None:
                    return instance, None
            return None, None
        if head_name in (
            "List", "Sequence", "Set", "FrozenSet", "Tuple", "Iterable",
            "list", "set", "tuple",
        ):
            elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for elt in elts:
                instance, _ = _annotation_class(elt, resolver)
                if instance is not None:
                    return None, instance
            return None, None
        if head_name in ("Dict", "Mapping", "MutableMapping", "dict", "DefaultDict", "OrderedDict"):
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                instance, _ = _annotation_class(inner.elts[1], resolver)
                if instance is not None:
                    return None, instance
    return None, None


class _ModuleResolver:
    """Name resolution context for one module."""

    def __init__(self, graph: CallGraph, info: ModuleInfo) -> None:
        self.graph = graph
        self.info = info
        self.aliases = absolute_aliases(info)
        self.local_functions: Dict[str, FunctionInfo] = {}
        self.local_classes: Dict[str, ClassInfo] = {}

    def resolve_dotted(self, node: ast.expr) -> Optional[str]:
        """Absolute dotted path of a Name/Attribute chain, or ``None``."""
        parts: List[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_qname(self, dotted: str) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """Program function/class a dotted path names, if any."""
        hit = self.graph.program.resolve_prefix(dotted)
        if hit is None:
            return None
        modname, remainder = hit
        if not remainder:
            return None
        parts = remainder.split(".")
        head_fn = self.graph.functions.get(f"{modname}.{parts[0]}")
        head_cls = self.graph.classes.get(f"{modname}.{parts[0]}")
        if len(parts) == 1:
            return head_fn if head_fn is not None else head_cls
        if len(parts) == 2 and head_cls is not None:
            return self.graph.method_on(head_cls, parts[1])
        return None

    def class_for_expr(self, node: ast.expr) -> Optional[ClassInfo]:
        """The program class a Name/Attribute type expression names."""
        if isinstance(node, ast.Name) and node.id in self.local_classes:
            return self.local_classes[node.id]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotation: resolve the bare class name locally.
            name = node.value.split("[", 1)[0].strip()
            if name in self.local_classes:
                return self.local_classes[name]
            dotted = self.aliases.get(name)
            if dotted is not None:
                target = self.resolve_qname(dotted)
                if isinstance(target, ClassInfo):
                    return target
            return None
        dotted = self.resolve_dotted(node)
        if dotted is None:
            return None
        target = self.resolve_qname(dotted)
        return target if isinstance(target, ClassInfo) else None


class _FunctionScope:
    """Name bindings inside one function body."""

    def __init__(
        self,
        resolver: _ModuleResolver,
        fn: FunctionInfo,
        owner: Optional[ClassInfo],
    ) -> None:
        self.resolver = resolver
        self.fn = fn
        self.owner = owner
        self.self_name: Optional[str] = None
        #: local name → instance class qname
        self.locals: Dict[str, str] = {}
        #: local name → element class qname (containers of instances)
        self.local_elems: Dict[str, str] = {}
        self._bind_params()
        self._bind_locals()

    def _bind_params(self) -> None:
        args = self.fn.node.args
        positional = list(args.posonlyargs) + list(args.args)
        if (
            self.owner is not None
            and positional
            and "staticmethod" not in self.fn.decorators
        ):
            # `self` (or `cls` for classmethods) dispatches on the owner.
            self.self_name = positional[0].arg
            positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            instance, elem = _annotation_class(arg.annotation, self.resolver)
            if instance is not None:
                self.locals[arg.arg] = instance
            elif elem is not None:
                self.local_elems[arg.arg] = elem

    def _bind_locals(self) -> None:
        # Single flow-insensitive pass: a name assigned a resolvable
        # constructor call binds to that class; a later conflicting
        # assignment drops the binding (conservative toward silence).
        dropped: Set[str] = set()
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                cls = self._constructed_class(node.value)
                name = target.id
                if name in dropped:
                    continue
                if cls is not None:
                    if name in self.locals and self.locals[name] != cls.qname:
                        dropped.add(name)
                        del self.locals[name]
                    else:
                        self.locals[name] = cls.qname
                elif name in self.locals:
                    dropped.add(name)
                    del self.locals[name]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                instance, elem = _annotation_class(node.annotation, self.resolver)
                if instance is not None:
                    self.locals[node.target.id] = instance
                elif elem is not None:
                    self.local_elems[node.target.id] = elem

    def _constructed_class(self, value: ast.expr) -> Optional[ClassInfo]:
        if isinstance(value, ast.Call):
            target = self.resolve_callable(value.func)
            if isinstance(target, ClassInfo):
                return target
        return None

    # -------------------------------------------------------------- #
    # expression typing

    def instance_class(self, node: ast.expr) -> Optional[ClassInfo]:
        """The program class an expression is an *instance* of, if known."""
        graph = self.resolver.graph
        if isinstance(node, ast.Name):
            if node.id == self.self_name and self.owner is not None:
                return self.owner
            qname = self.locals.get(node.id)
            return graph.classes.get(qname) if qname is not None else None
        if isinstance(node, ast.Call):
            target = self.resolve_callable(node.func)
            if isinstance(target, ClassInfo):
                return target
            return None
        if isinstance(node, ast.Attribute):
            base = self.instance_class(node.value)
            if base is not None:
                qname = self._attr_type(base, node.attr)
                return graph.classes.get(qname) if qname is not None else None
            return None
        if isinstance(node, ast.Subscript):
            elem = self.element_class(node.value)
            return elem
        return None

    def element_class(self, node: ast.expr) -> Optional[ClassInfo]:
        """The element class of a container expression, if known."""
        graph = self.resolver.graph
        if isinstance(node, ast.Name):
            qname = self.local_elems.get(node.id)
            return graph.classes.get(qname) if qname is not None else None
        if isinstance(node, ast.Attribute):
            base = self.instance_class(node.value)
            if base is not None:
                qname = self._attr_elem_type(base, node.attr)
                return graph.classes.get(qname) if qname is not None else None
        return None

    def _attr_type(self, cls: ClassInfo, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        queue = [cls.qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            info = self.resolver.graph.classes.get(qname)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            queue.extend(info.bases)
        return None

    def _attr_elem_type(self, cls: ClassInfo, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        queue = [cls.qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            info = self.resolver.graph.classes.get(qname)
            if info is None:
                continue
            if attr in info.attr_elem_types:
                return info.attr_elem_types[attr]
            queue.extend(info.bases)
        return None

    # -------------------------------------------------------------- #
    # call resolution

    def resolve_callable(
        self, func: ast.expr
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """What a call's ``func`` expression names, if resolvable."""
        graph = self.resolver.graph
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.resolver.local_functions:
                return self.resolver.local_functions[name]
            if name in self.resolver.local_classes:
                return self.resolver.local_classes[name]
            if (
                name == self.self_name
                and self.owner is not None
                and "classmethod" in self.fn.decorators
            ):
                # `cls(...)` inside a classmethod constructs the owner.
                return self.owner
            dotted = self.resolver.aliases.get(name)
            if dotted is not None:
                return self.resolver.resolve_qname(dotted)
            return None
        if isinstance(func, ast.Attribute):
            # Instance dispatch: self.m / self.attr.m / local.m / call().m
            base_cls = self.instance_class(func.value)
            if base_cls is not None:
                return graph.method_on(base_cls, func.attr)
            # A same-module class qualifying a method (`Kernel.recover(p)`)
            # is not in the import aliases, so check local classes first.
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in self.resolver.local_classes
            ):
                owner_cls = self.resolver.local_classes[func.value.id]
                return graph.method_on(owner_cls, func.attr)
            # Class-qualified or module-qualified dotted path.
            dotted = self.resolver.resolve_dotted(func)
            if dotted is not None:
                return self.resolver.resolve_qname(dotted)
        return None

    def resolve_call_target(self, func: ast.expr) -> Optional[str]:
        """Resolve a call to a function qname (classes → ``__init__``)."""
        target = self.resolve_callable(func)
        if isinstance(target, FunctionInfo):
            return target.qname
        if isinstance(target, ClassInfo):
            init = self.resolver.graph.method_on(target, "__init__")
            return init.qname if init is not None else None
        return None


def _decorator_names(node: FunctionNode, resolver: _ModuleResolver) -> Tuple[str, ...]:
    names: List[str] = []
    for dec in node.decorator_list:
        expr = dec.func if isinstance(dec, ast.Call) else dec
        dotted = resolver.resolve_dotted(expr)
        if dotted is None and isinstance(expr, ast.Name):
            dotted = expr.id
        elif dotted is None and isinstance(expr, ast.Attribute):
            dotted = expr.attr
        if dotted is not None:
            names.append(dotted)
    return tuple(names)


def _collect_definitions(graph: CallGraph) -> Dict[str, _ModuleResolver]:
    """First pass: register every function/class, then resolve bases."""
    resolvers: Dict[str, _ModuleResolver] = {}
    for modname in sorted(graph.program.modules):
        info = graph.program.modules[modname]
        resolver = _ModuleResolver(graph, info)
        resolvers[modname] = resolver
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    qname=f"{modname}.{stmt.name}",
                    modname=modname,
                    name=stmt.name,
                    node=stmt,
                )
                graph.functions[fn.qname] = fn
                resolver.local_functions[stmt.name] = fn
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(
                    qname=f"{modname}.{stmt.name}",
                    modname=modname,
                    name=stmt.name,
                    node=stmt,
                )
                graph.classes[cls.qname] = cls
                resolver.local_classes[stmt.name] = cls
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = FunctionInfo(
                            qname=f"{cls.qname}.{sub.name}",
                            modname=modname,
                            name=sub.name,
                            node=sub,
                            cls=cls.qname,
                        )
                        graph.functions[method.qname] = method
                        cls.methods[sub.name] = method
    # Second sweep now that every class is registered: decorators, bases,
    # and attribute type bindings (which may reference foreign classes).
    for modname, resolver in resolvers.items():
        for fn in list(graph.functions.values()):
            if fn.modname != modname:
                continue
            fn.decorators = _decorator_names(fn.node, resolver)
            fn.is_property = any(
                d in ("property", "functools.cached_property", "cached_property")
                for d in fn.decorators
            )
        for cls in list(graph.classes.values()):
            if cls.modname != modname:
                continue
            bases: List[str] = []
            for base in cls.node.bases:
                target = resolver.class_for_expr(base)
                if target is not None:
                    bases.append(target.qname)
            cls.bases = tuple(bases)
    return resolvers


def _bind_attributes(graph: CallGraph, resolvers: Dict[str, _ModuleResolver]) -> None:
    """Infer ``self.attr`` type bindings from every method body."""
    for cls in graph.classes.values():
        resolver = resolvers[cls.modname]
        instance_bindings: Dict[str, Set[str]] = {}
        elem_bindings: Dict[str, Set[str]] = {}
        for method in cls.methods.values():
            scope = _FunctionScope(resolver, method, cls)
            if scope.self_name is None:
                continue
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, annotation = node.target, node.value, node.annotation
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != scope.self_name
                ):
                    continue
                attr = target.attr
                instance, elem = _annotation_class(annotation, resolver)
                if instance is None and elem is None and value is not None:
                    # Type the right-hand side through the method scope:
                    # covers constructor calls *and* annotated parameters
                    # stored on self (`self.journal = journal` where the
                    # __init__ signature says `journal: Optional[Journal]`).
                    bound = scope.instance_class(value)
                    bound_elem = scope.element_class(value) if bound is None else None
                    if bound is not None:
                        instance = bound.qname
                    elif bound_elem is not None:
                        elem = bound_elem.qname
                    elif isinstance(value, (ast.List, ast.ListComp)):
                        first: Optional[ast.expr]
                        if isinstance(value, ast.List):
                            first = value.elts[0] if value.elts else None
                        else:
                            first = value.elt
                        if isinstance(first, ast.Call):
                            ctor = scope.resolve_callable(first.func)
                            if isinstance(ctor, ClassInfo):
                                elem = ctor.qname
                if instance is not None:
                    instance_bindings.setdefault(attr, set()).add(instance)
                if elem is not None:
                    elem_bindings.setdefault(attr, set()).add(elem)
        # Only unambiguous bindings survive: two different classes assigned
        # to the same attribute means we know nothing safe about it.
        cls.attr_types = {
            attr: next(iter(classes))
            for attr, classes in instance_bindings.items()
            if len(classes) == 1
        }
        cls.attr_elem_types = {
            attr: next(iter(classes))
            for attr, classes in elem_bindings.items()
            if len(classes) == 1
        }


def decorator_nodes(fn_node: FunctionNode) -> Set[int]:
    """AST node ids inside *fn_node*'s decorator expressions.

    Decorators execute once at import time (deterministically), not per
    call, so edge collection and effect scans skip them: ``@task_kind``
    registering a worker is not the worker mutating the registry.
    """
    ids: Set[int] = set()
    for dec in fn_node.decorator_list:
        for node in ast.walk(dec):
            ids.add(id(node))
    return ids


def _collect_edges(graph: CallGraph, resolvers: Dict[str, _ModuleResolver]) -> None:
    for fn in graph.iter_functions():
        resolver = resolvers[fn.modname]
        owner = graph.class_of(fn)
        scope = _FunctionScope(resolver, fn, owner)
        sites: List[CallSite] = []
        skip = decorator_nodes(fn.node)
        call_funcs: Set[int] = {
            id(node.func) for node in ast.walk(fn.node) if isinstance(node, ast.Call)
        }
        for node in ast.walk(fn.node):
            if id(node) in skip:
                continue
            if isinstance(node, ast.Call):
                callee = scope.resolve_call_target(node.func)
                if callee is not None:
                    sites.append(CallSite(caller=fn.qname, callee=callee, node=node))
            elif isinstance(node, ast.Attribute) and id(node) not in call_funcs:
                # Property access is a call in disguise: resolve
                # ``task.fingerprint`` to the @property method.
                base_cls = scope.instance_class(node.value)
                if base_cls is not None:
                    method = graph.method_on(base_cls, node.attr)
                    if method is not None and method.is_property:
                        sites.append(
                            CallSite(caller=fn.qname, callee=method.qname, node=node)
                        )
        graph.edges[fn.qname] = sites


def function_scope(graph: CallGraph, fn: FunctionInfo) -> _FunctionScope:
    """A resolution scope for *fn*'s body (used by the effect scanner)."""
    return _FunctionScope(graph._resolvers[fn.modname], fn, graph.class_of(fn))


def build_callgraph(program: Program) -> CallGraph:
    """Build the full call graph for *program* (parse-free: reuses ASTs)."""
    graph = CallGraph(program)
    resolvers = _collect_definitions(graph)
    graph._resolvers = resolvers
    _bind_attributes(graph, resolvers)
    _collect_edges(graph, resolvers)
    return graph
