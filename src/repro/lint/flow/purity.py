"""Transitive purity summaries and sink-rooted reachability.

Per-function :class:`~repro.lint.flow.effects.Effects` are the atoms;
this module aggregates them over the call graph:

- :func:`summarize` computes, for every function, whether any
  nondeterminism source is reachable *through* it (its own body or any
  transitively called program function), with a witness: the source read
  plus the call chain that reaches it;
- :class:`PuritySummary` answers the queries the rules ask — "is this
  function impure, and how would I show a human why?".

The propagation is a fixpoint over the (possibly cyclic) call graph,
seeded with direct effects and iterated until no summary changes.  Every
derived fact keeps a one-step witness (which callee it came through), so
a full evidence chain reconstructs in O(depth) without storing paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .callgraph import CallGraph
from .effects import Effects, SourceRead, scan_effects

__all__ = ["PuritySummary", "summarize"]


@dataclass(frozen=True)
class _Witness:
    """How impurity reaches a function: directly, or via one callee."""

    read: SourceRead
    via: Optional[str]  # callee qname, None when the read is direct
    site_line: int  # call-site line of the via edge (0 when direct)


class PuritySummary:
    """Direct effects plus transitive impurity for every program function."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.effects: Dict[str, Effects] = {}
        self._impure: Dict[str, _Witness] = {}

    # -------------------------------------------------------------- #
    # queries

    def effects_of(self, qname: str) -> Effects:
        return self.effects.get(qname, Effects())

    def is_impure(self, qname: str) -> bool:
        """Whether a source read is reachable through *qname*."""
        return qname in self._impure

    def impurity_chain(self, qname: str) -> Tuple[List[str], Optional[SourceRead]]:
        """``(call chain, source read)`` witnessing *qname*'s impurity.

        The chain starts at *qname* and ends at the function whose body
        performs the read.  Pure functions return ``([], None)``.
        """
        if qname not in self._impure:
            return [], None
        chain = [qname]
        current = qname
        while True:
            witness = self._impure[current]
            if witness.via is None:
                return chain, witness.read
            chain.append(witness.via)
            current = witness.via

    # -------------------------------------------------------------- #
    # construction

    def _compute(self) -> None:
        for fn in self.graph.iter_functions():
            effects = scan_effects(self.graph, fn)
            self.effects[fn.qname] = effects
            if effects.sources:
                self._impure[fn.qname] = _Witness(
                    read=effects.sources[0], via=None, site_line=0
                )
        # Fixpoint: pull impurity up one call edge at a time.  Iteration
        # order is stable (sorted callers) so witnesses are deterministic.
        changed = True
        while changed:
            changed = False
            for qname in sorted(self.graph.edges):
                if qname in self._impure:
                    continue
                for site in self.graph.callees(qname):
                    if site.callee in self._impure:
                        inner = self._impure[site.callee]
                        self._impure[qname] = _Witness(
                            read=inner.read, via=site.callee, site_line=site.line
                        )
                        changed = True
                        break


def summarize(graph: CallGraph) -> PuritySummary:
    """Scan every function and propagate impurity to a fixpoint."""
    summary = PuritySummary(graph)
    summary._compute()
    return summary
