"""Whole-program determinism analysis (the ``repro.lint.flow`` engine).

The per-file rules (CCS001–CCS008) see one AST at a time, so they cannot
prove the property the repo's guarantees actually rest on: *transitive*
purity.  A wall-clock read three calls below ``ChargingService.submit``
breaks byte-identical replay just as surely as one in ``submit`` itself —
and no single-file rule can see it.

This package parses the whole tree once and builds, in order:

- :mod:`~repro.lint.flow.program` — the module set and its import graph;
- :mod:`~repro.lint.flow.callgraph` — a name-resolution-based,
  conservative call graph (import aliases, ``self`` dispatch, class
  attribute/parameter type bindings; dynamic dispatch stays unresolved
  and errs toward silence, the same trade the per-file alias resolver
  makes);
- :mod:`~repro.lint.flow.effects` — per-function *direct* effect scans
  (nondeterminism-source reads, global/attribute mutations, calls);
- :mod:`~repro.lint.flow.purity` — transitive purity summaries and
  sink-rooted reachability with witness call chains;
- :mod:`~repro.lint.flow.taint` — value-level taint from source reads
  into seed/fingerprint sinks, propagated interprocedurally through
  return values and parameters.

The cross-file rules CCS009–CCS012 are built on top of these layers and
live with the per-file rules in :mod:`repro.lint.rules`; findings render
through the ordinary :class:`~repro.lint.finding.Finding` machinery.
docs/DETERMINISM.md describes the source → sink model in full.
"""

from __future__ import annotations

from dataclasses import dataclass

from .callgraph import CallGraph, CallSite, ClassInfo, FunctionInfo, build_callgraph
from .effects import Effects, SourceRead, scan_effects
from .program import ModuleInfo, Program, dotted_name
from .purity import PuritySummary, summarize
from .taint import TaintFinding, TaintReport, trace_taint


@dataclass
class FlowAnalysis:
    """The shared whole-program layers every flow rule reads."""

    program: Program
    graph: CallGraph
    purity: PuritySummary


def analyze_program(program: Program) -> FlowAnalysis:
    """Build (once) and return the call graph + purity for *program*.

    Memoized on the program itself: four flow rules running over one
    analyzer pass share a single graph construction.
    """
    cached = program.analysis_cache.get("flow")
    if isinstance(cached, FlowAnalysis):
        return cached
    graph = build_callgraph(program)
    analysis = FlowAnalysis(program=program, graph=graph, purity=summarize(graph))
    program.analysis_cache["flow"] = analysis
    return analysis


__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "Effects",
    "FlowAnalysis",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "PuritySummary",
    "SourceRead",
    "TaintFinding",
    "TaintReport",
    "analyze_program",
    "build_callgraph",
    "dotted_name",
    "scan_effects",
    "summarize",
    "trace_taint",
]
