"""Value-level taint: nondeterministic values flowing into seed sinks.

CCS009 asks a *control* question — can a sink's call subtree execute a
source read?  CCS012 asks the sharper *data* question: does the value a
source produced reach a seed-critical argument?  ``t0 = time.time()``
used purely for a log line is a CCS002/CCS009 matter; ``derive_seed(int(
time.time()))`` poisons every stream derived under it, and that is what
this module proves or rules out.

The engine runs a flow-insensitive-across-branches, statement-ordered
pass per function, tracking for each local name the set of *taint roots*
it may carry:

- ``source`` roots — a wall-clock/RNG/entropy read produced the value
  (the :mod:`~repro.lint.flow.effects` catalog decides what counts);
- ``param`` roots — the value derives from one of the function's own
  parameters.

A call's result conservatively carries the union of its argument roots
(so ``int(time.time())`` stays tainted through any wrapping), plus a
source root when the callee is itself a source or a program function
whose return is tainted.  Two interprocedural summaries close the loop,
each iterated to a fixpoint over the call graph:

- *returns-tainted*: some return value carries a source root;
- *param-flows-to-sink*: calling this function taints a seed sink with
  whatever is passed for that parameter (directly or further down).

A finding is emitted where a source-rooted value lands in a sink-bound
argument position, with the full call chain to the ultimate sink.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from .callgraph import CallGraph, ClassInfo, FunctionInfo, function_scope
from .effects import classify_source

__all__ = ["TaintFinding", "TaintReport", "trace_taint"]

#: Taint roots are strings: "source:<dotted>:<line>" or "param:<name>".
_SOURCE_PREFIX = "source:"
_PARAM_PREFIX = "param:"


@dataclass(frozen=True)
class TaintFinding:
    """A nondeterministic value reaching a seed/fingerprint sink."""

    fn: str  # function whose body passes the tainted value onward
    node: ast.AST  # the call receiving the tainted argument
    source: str  # dotted source name, e.g. "time.time"
    source_line: int
    sink: str  # qname of the ultimate sink
    chain: Tuple[str, ...]  # call chain from the receiving callee to the sink

    @property
    def line(self) -> int:
        return int(getattr(self.node, "lineno", 1))


@dataclass
class TaintReport:
    """All taint findings plus the interprocedural summaries behind them."""

    findings: List[TaintFinding] = field(default_factory=list)
    returns_tainted: Dict[str, str] = field(default_factory=dict)  # qname -> source
    param_flows: Dict[str, Dict[str, Tuple[str, Tuple[str, ...]]]] = field(
        default_factory=dict
    )  # qname -> param -> (sink, chain)


def _param_names(fn: FunctionInfo, has_self: bool) -> List[str]:
    args = fn.node.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if has_self and names:
        names = names[1:]
    return names + [a.arg for a in args.kwonlyargs]


class _FunctionPass:
    """One statement-ordered taint pass over a single function body."""

    def __init__(
        self,
        graph: CallGraph,
        fn: FunctionInfo,
        report: TaintReport,
        sinks: FrozenSet[str],
        collect: bool,
    ) -> None:
        self.graph = graph
        self.fn = fn
        self.report = report
        self.sinks = sinks
        self.collect = collect
        self.scope = function_scope(graph, fn)
        self.resolver = graph._resolvers[fn.modname]
        self.env: Dict[str, FrozenSet[str]] = {}
        self.params = set(_param_names(fn, self.scope.self_name is not None))
        self.return_sources: Set[str] = set()
        self.new_param_flows: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        self.new_findings: List[TaintFinding] = []

    # -------------------------------------------------------------- #
    # driving

    def run(self) -> None:
        self._exec_block(self.fn.node.body)

    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            roots = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, roots)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            roots = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prev = self.env.get(stmt.target.id, frozenset())
                self.env[stmt.target.id] = prev | roots
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                roots = self._eval(stmt.value)
                self.return_sources.update(
                    r for r in roots if r.startswith(_SOURCE_PREFIX)
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots = self._eval(stmt.iter)
            self._bind(stmt.target, roots)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                roots = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, roots)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs fold into the parent (same policy as the call
            # graph): their bodies run through the same environment.
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, (ast.Assert,)):
            self._eval(stmt.test)

    def _bind(self, target: ast.expr, roots: FrozenSet[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = roots
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, roots)
        # Attribute/subscript stores: no tracking (objects are opaque).

    # -------------------------------------------------------------- #
    # expression evaluation

    def _eval(self, node: ast.expr) -> FrozenSet[str]:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.params:
                return frozenset({f"{_PARAM_PREFIX}{node.id}"})
            return frozenset()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            dotted = self.resolver.resolve_dotted(node)
            if dotted is not None:
                read = classify_source(dotted, node)
                if read is not None:
                    return frozenset(
                        {f"{_SOURCE_PREFIX}{read.dotted}:{read.line}"}
                    )
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return frozenset()
        roots: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                roots.update(self._eval(child))
            elif isinstance(child, ast.comprehension):
                self._bind(child.target, self._eval(child.iter))
                for cond in child.ifs:
                    self._eval(cond)
        return frozenset(roots)

    def _eval_call(self, node: ast.Call) -> FrozenSet[str]:
        arg_roots: List[FrozenSet[str]] = [self._eval(a) for a in node.args]
        kw_roots: Dict[str, FrozenSet[str]] = {
            kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs splat
                arg_roots.append(self._eval(kw.value))

        result: Set[str] = set()
        for roots in arg_roots:
            result.update(roots)
        for roots in kw_roots.values():
            result.update(roots)

        # Is the callee itself a source?
        dotted = self.resolver.resolve_dotted(node.func)
        if dotted is not None:
            read = classify_source(dotted, node)
            if read is not None:
                result.add(f"{_SOURCE_PREFIX}{read.dotted}:{read.line}")

        target = self.scope.resolve_callable(node.func)
        callee: Optional[FunctionInfo] = None
        if isinstance(target, FunctionInfo):
            callee = target
        elif isinstance(target, ClassInfo):
            init = self.graph.method_on(target, "__init__")
            callee = init
        if callee is not None:
            if callee.qname in self.report.returns_tainted:
                src = self.report.returns_tainted[callee.qname]
                result.add(f"{_SOURCE_PREFIX}{src}:{int(getattr(node, 'lineno', 1))}")
            self._check_sink_call(node, callee, arg_roots, kw_roots)
        return frozenset(result)

    # -------------------------------------------------------------- #
    # sink checking

    def _check_sink_call(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_roots: List[FrozenSet[str]],
        kw_roots: Dict[str, FrozenSet[str]],
    ) -> None:
        callee_params = _param_names(callee, callee.cls is not None)
        flows = self.report.param_flows.get(callee.qname, {})
        is_direct_sink = callee.qname in self.sinks

        positional: List[Tuple[Optional[str], FrozenSet[str]]] = []
        for k, roots in enumerate(arg_roots):
            name = callee_params[k] if k < len(callee_params) else None
            positional.append((name, roots))
        for name, roots in kw_roots.items():
            positional.append((name, roots))

        for name, roots in positional:
            sinkward: Optional[Tuple[str, Tuple[str, ...]]] = None
            if is_direct_sink:
                sinkward = (callee.qname, (callee.qname,))
            elif name is not None and name in flows:
                sink, chain = flows[name]
                sinkward = (sink, (callee.qname,) + chain)
            if sinkward is None:
                continue
            sink, chain = sinkward
            for root in sorted(roots):
                if root.startswith(_SOURCE_PREFIX):
                    _, src, line = root.split(":", 2)
                    if self.collect:
                        self.new_findings.append(
                            TaintFinding(
                                fn=self.fn.qname,
                                node=node,
                                source=src,
                                source_line=int(line),
                                sink=sink,
                                chain=chain,
                            )
                        )
                elif root.startswith(_PARAM_PREFIX):
                    param = root[len(_PARAM_PREFIX):]
                    if param not in self.new_param_flows:
                        self.new_param_flows[param] = (sink, chain)


def trace_taint(graph: CallGraph, sink_qnames: Sequence[str]) -> TaintReport:
    """Run the taint engine over *graph* toward the given sink functions.

    *sink_qnames* name program functions every argument of which is
    seed-critical (e.g. ``repro.rng.derive_seed``).  The report carries
    the findings plus the fixpoint summaries (exposed for tests).
    """
    report = TaintReport()
    sinks = frozenset(q for q in sink_qnames if q in graph.functions)

    # Fixpoint over the two summaries; findings only on the final pass.
    for _ in range(len(graph.functions) + 2):
        changed = False
        for fn in graph.iter_functions():
            run = _FunctionPass(graph, fn, report, sinks, collect=False)
            run.run()
            if run.return_sources and fn.qname not in report.returns_tainted:
                first = sorted(run.return_sources)[0]
                _, src, _line = first.split(":", 2)
                report.returns_tainted[fn.qname] = src
                changed = True
            if run.new_param_flows:
                known = report.param_flows.setdefault(fn.qname, {})
                for param, flow in run.new_param_flows.items():
                    if param not in known:
                        known[param] = flow
                        changed = True
        if not changed:
            break

    seen: Set[Tuple[str, int, str, str]] = set()
    for fn in graph.iter_functions():
        run = _FunctionPass(graph, fn, report, sinks, collect=True)
        run.run()
        for finding in run.new_findings:
            key = (finding.fn, finding.line, finding.source, finding.sink)
            if key not in seen:
                seen.add(key)
                report.findings.append(finding)
    return report
