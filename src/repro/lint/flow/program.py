"""The analyzed module set: sources, ASTs, names, and the import graph.

A :class:`Program` is the unit every whole-program pass works on: the
collection of modules parsed *once*, addressable both by repo-normalized
path (``repro/service/kernel.py`` — what findings and baselines key on)
and by dotted module name (``repro.service.kernel`` — what import
resolution speaks).  Files that fail to parse are skipped here; the
per-file analyzer has already reported them as CCS000.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["ModuleInfo", "Program", "dotted_name"]


def dotted_name(module: str) -> str:
    """Dotted module name for a repo-normalized path.

    ``repro/service/kernel.py`` → ``repro.service.kernel``;
    ``repro/lint/__init__.py`` → ``repro.lint``;
    ``benchmarks/bench_exec.py`` → ``benchmarks.bench_exec``.
    """
    parts = module.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class ModuleInfo:
    """One parsed module of the program."""

    path: str
    module: str
    modname: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def package(self) -> str:
        """The dotted package this module's relative imports resolve in."""
        if self.module.endswith("/__init__.py"):
            return self.modname
        head, _, _ = self.modname.rpartition(".")
        return head


class Program:
    """An immutable set of parsed modules plus their import graph."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Memo for derived analyses (call graph, purity): several flow
        #: rules run over one program; each layer is built exactly once.
        self.analysis_cache: Dict[str, object] = {}
        for info in modules:
            # First binding wins: analyzing overlapping paths must not
            # silently replace a module with a same-named shadow.
            self.modules.setdefault(info.modname, info)

    @classmethod
    def from_sources(
        cls, items: Sequence[Tuple[str, str, Optional[str]]]
    ) -> "Program":
        """Build a program from ``(path, source, module)`` triples.

        *module* is the repo-normalized module path; ``None`` derives it
        from *path* via :func:`repro.lint.analyzer.normalize_module`.
        Unparsable sources are skipped (CCS000 is the per-file
        analyzer's concern).
        """
        from ..analyzer import normalize_module

        infos: List[ModuleInfo] = []
        for path, source, module in items:
            mod = module if module is not None else normalize_module(path)
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            infos.append(
                ModuleInfo(
                    path=path,
                    module=mod,
                    modname=dotted_name(mod),
                    source=source,
                    tree=tree,
                )
            )
        return cls(infos)

    @classmethod
    def load(cls, paths: Sequence[Union[str, Path]]) -> "Program":
        """Parse every ``.py`` file under *paths* into a program."""
        from ..analyzer import iter_python_files

        items: List[Tuple[str, str, Optional[str]]] = []
        for file_path in iter_python_files(paths):
            items.append((str(file_path), file_path.read_text(encoding="utf-8"), None))
        return cls.from_sources(items)

    def __contains__(self, modname: str) -> bool:
        return modname in self.modules

    def __len__(self) -> int:
        return len(self.modules)

    def get(self, modname: str) -> Optional[ModuleInfo]:
        return self.modules.get(modname)

    def by_module(self, module: str) -> Optional[ModuleInfo]:
        """Look up a module by its repo-normalized path."""
        return self.modules.get(dotted_name(module))

    def resolve_prefix(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Split *dotted* into ``(program modname, remainder)``.

        The longest prefix of *dotted* that names a program module wins:
        ``repro.service.journal.Journal.append`` resolves to
        ``("repro.service.journal", "Journal.append")``.  Returns ``None``
        when no prefix is a program module (stdlib, numpy, …).
        """
        parts = dotted.split(".")
        for k in range(len(parts), 0, -1):
            head = ".".join(parts[:k])
            if head in self.modules:
                return head, ".".join(parts[k:])
        return None

    def import_edges(self) -> Dict[str, List[str]]:
        """Module import graph restricted to program modules.

        Edges point importer → imported; targets outside the program are
        dropped.  Used by CCS010 to bound which modules a spawned worker
        process re-imports.
        """
        from .callgraph import absolute_aliases

        edges: Dict[str, List[str]] = {}
        for modname, info in sorted(self.modules.items()):
            targets: List[str] = []
            for dotted in absolute_aliases(info).values():
                hit = self.resolve_prefix(dotted)
                if hit is not None and hit[0] != modname and hit[0] not in targets:
                    targets.append(hit[0])
            edges[modname] = sorted(targets)
        return edges
