"""Per-function *direct* effect scans: the atoms the summaries aggregate.

One pass over each function body records everything the whole-program
rules reason about transitively:

- **source reads** — calls/reads whose value depends on something other
  than the arguments: the wall clock, process-global RNG, OS entropy,
  UUIDs, environment variables, directory listing order, and unordered
  ``set`` iteration (the catalog below);
- **global mutations** — writes to module-level mutable state (CCS010);
- **self mutations** — writes to ``self``-reachable state (CCS011);
- **mutable default arguments** — shared across calls *and* across
  fork-spawned workers (CCS010).

The scan is syntactic and name-resolved only; it never imports analyzed
code.  Each atom carries its AST node so findings anchor at the exact
offending expression, not at the function header.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import (
    CallGraph,
    FunctionInfo,
    _FunctionScope,
    decorator_nodes,
    function_scope,
)

__all__ = [
    "CLOCK_DEFAULT_MEMBERS",
    "Effects",
    "GlobalWrite",
    "SelfWrite",
    "SourceRead",
    "module_level_mutables",
    "scan_effects",
]

#: ``time`` members that read a clock whenever called.
_TIME_CLOCK_MEMBERS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: ``time`` members that read the clock only when the time argument is
#: omitted (``time.gmtime()`` formats *now*; ``time.gmtime(0)`` is pure).
#: ``strftime`` is the same trap one argument later: ``strftime(fmt)``
#: reads the clock, ``strftime(fmt, t)`` is pure.
CLOCK_DEFAULT_MEMBERS = frozenset(
    {"gmtime", "localtime", "ctime", "asctime", "strftime"}
)

_DATETIME_READS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random members that are stateless constructors, not global state.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Exact dotted names that read OS entropy or host identity.
_ENTROPY_READS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "uuid.getnode",
    }
)

#: Dotted names whose *result order* depends on the filesystem.
_FS_ORDER_READS = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)

#: Environment reads.
_ENV_READS = frozenset({"os.getenv", "os.environ"})

#: Method names that mutate the common built-in containers in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Callables whose result is a fresh mutable container.
_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
)


@dataclass(frozen=True)
class SourceRead:
    """One direct nondeterminism-source read inside a function body."""

    kind: str  # "wallclock" | "global_rng" | "entropy" | "env" | "fs_order" | "set_order"
    dotted: str  # human-readable source name, e.g. "time.time"
    node: ast.AST

    @property
    def line(self) -> int:
        return int(getattr(self.node, "lineno", 1))


@dataclass(frozen=True)
class GlobalWrite:
    """A mutation of a module-level name from inside a function."""

    name: str
    node: ast.AST


@dataclass(frozen=True)
class SelfWrite:
    """A mutation of ``self``-reachable state from inside a method."""

    attr: str
    node: ast.AST


@dataclass
class Effects:
    """Everything one function does directly (no propagation)."""

    sources: List[SourceRead] = field(default_factory=list)
    global_writes: List[GlobalWrite] = field(default_factory=list)
    self_writes: List[SelfWrite] = field(default_factory=list)
    mutable_defaults: List[ast.AST] = field(default_factory=list)


def classify_source(dotted: str, node: ast.AST) -> Optional[SourceRead]:
    """Classify a resolved dotted name as a nondeterminism source read.

    *node* should be the most specific AST node for the read (the call,
    or the attribute chain for non-call reads like ``os.environ[...]``).
    """
    if dotted.startswith("time."):
        member = dotted.split(".", 1)[1]
        if member in _TIME_CLOCK_MEMBERS:
            return SourceRead("wallclock", dotted, node)
        if member in CLOCK_DEFAULT_MEMBERS and _defaults_to_now(member, node):
            return SourceRead("wallclock", dotted, node)
    if dotted in _DATETIME_READS:
        return SourceRead("wallclock", dotted, node)
    if dotted == "random" or dotted.startswith("random."):
        member = dotted.split(".", 1)[1] if "." in dotted else ""
        if member not in ("Random", "SystemRandom", ""):
            return SourceRead("global_rng", dotted, node)
    if dotted.startswith("numpy.random."):
        member = dotted.split(".")[2]
        if member not in _ALLOWED_NP_RANDOM:
            return SourceRead("global_rng", dotted, node)
    if dotted in _ENTROPY_READS or dotted.startswith("secrets."):
        return SourceRead("entropy", dotted, node)
    if dotted in _ENV_READS or dotted.startswith("os.environ."):
        return SourceRead("env", dotted, node)
    if dotted in _FS_ORDER_READS:
        return SourceRead("fs_order", dotted, node)
    return None


def _defaults_to_now(member: str, node: ast.AST) -> bool:
    """Whether a clock-defaulting ``time`` call omitted its time argument."""
    if not isinstance(node, ast.Call):
        return False
    n_args = len(node.args) + len(node.keywords)
    return n_args <= 1 if member == "strftime" else n_args == 0


def module_level_mutables(tree: ast.Module) -> Dict[str, ast.AST]:
    """Names bound at module level to a mutable container literal/factory.

    These are exactly the objects that live once per *process*: mutated
    from a worker, each fork sees (and mutates) its own copy, so results
    depend on worker placement.  Assignments of immutable values, and
    re-exports, are ignored.
    """
    mutables: Dict[str, ast.AST] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        if not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables[target.id] = stmt
    return mutables


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        parts: List[str] = []
        current: ast.expr = value.func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            dotted = ".".join(reversed(parts))
            return dotted in _MUTABLE_FACTORIES
    return False


def scan_effects(graph: CallGraph, fn: FunctionInfo) -> Effects:
    """Scan *fn*'s body for direct effects (sources, writes, defaults)."""
    scope = function_scope(graph, fn)
    resolver = graph._resolvers[fn.modname]
    effects = Effects()

    mutables = module_level_mutables(graph.program.modules[fn.modname].tree)
    local_names = _assigned_locals(fn.node)
    global_decls = {
        name
        for node in ast.walk(fn.node)
        if isinstance(node, ast.Global)
        for name in node.names
    }

    for default in list(fn.node.args.defaults) + [
        d for d in fn.node.args.kw_defaults if d is not None
    ]:
        if _is_mutable_value(default):
            effects.mutable_defaults.append(default)

    # Top-down chain classification, mirroring CCS001: once a chain is
    # classified as a source, its sub-chains are not re-reported.
    # Decorator expressions are import-time, not call-time: skipped.
    skip = decorator_nodes(fn.node)
    classified: Set[int] = set()
    for node in ast.walk(fn.node):
        if id(node) in skip:
            continue
        if isinstance(node, ast.Call):
            dotted = resolver.resolve_dotted(node.func)
            if dotted is not None:
                read = classify_source(dotted, node)
                if read is not None:
                    effects.sources.append(read)
                    for sub in ast.walk(node.func):
                        classified.add(id(sub))
        elif isinstance(node, (ast.Attribute, ast.Name)) and id(node) not in classified:
            dotted = resolver.resolve_dotted(node)
            if dotted is not None:
                read = classify_source(dotted, node)
                if read is not None:
                    effects.sources.append(read)
                    for sub in ast.walk(node):
                        classified.add(id(sub))

        # Mutations.
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                _record_store(
                    target, scope, mutables, local_names, global_decls, effects, node
                )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            _record_store(
                node.target, scope, mutables, local_names, global_decls, effects, node
            )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                _record_method_mutation(
                    node.func.value, scope, mutables, local_names, global_decls,
                    effects, node,
                )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                _record_store(
                    target, scope, mutables, local_names, global_decls, effects, node
                )

    # De-duplicate source reads that the walk visited twice (a call and
    # its func chain can both classify at the same location).
    unique: Dict[Tuple[int, int, str], SourceRead] = {}
    for read in effects.sources:
        key = (read.line, int(getattr(read.node, "col_offset", 0)), read.dotted)
        unique.setdefault(key, read)
    effects.sources = [unique[k] for k in sorted(unique)]
    return effects


def _assigned_locals(fn_node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _root_of(target: ast.expr) -> Tuple[ast.expr, bool]:
    """Peel Subscript/Attribute layers; True when any layer was peeled."""
    current = target
    peeled = False
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        current = current.value
        peeled = True
    return current, peeled


def _record_store(
    target: ast.expr,
    scope: _FunctionScope,
    mutables: Dict[str, ast.AST],
    local_names: Set[str],
    global_decls: Set[str],
    effects: Effects,
    node: ast.AST,
) -> None:
    root, peeled = _root_of(target)
    if not isinstance(root, ast.Name):
        return
    if scope.self_name is not None and root.id == scope.self_name and peeled:
        # self.attr = ..., self.attr[k] = ..., self.attr.field = ...
        effects.self_writes.append(SelfWrite(attr=_first_attr(target), node=node))
        return
    if root.id not in mutables:
        return
    # A bare assignment anywhere in the function makes the name local
    # (Python scoping), so only `global`-declared rebinds touch the
    # module object; subscript/attribute stores always do.
    shadowed = root.id in local_names and root.id not in global_decls
    if peeled and not shadowed:
        effects.global_writes.append(GlobalWrite(name=root.id, node=node))
    elif not peeled and root.id in global_decls:
        effects.global_writes.append(GlobalWrite(name=root.id, node=node))


def _first_attr(target: ast.expr) -> str:
    """The attribute name closest to ``self`` in a store target chain."""
    chain: List[str] = []
    current = target
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        if isinstance(current, ast.Attribute):
            chain.append(current.attr)
        current = current.value
    return chain[-1] if chain else "?"


def _record_method_mutation(
    base: ast.expr,
    scope: _FunctionScope,
    mutables: Dict[str, ast.AST],
    local_names: Set[str],
    global_decls: Set[str],
    effects: Effects,
    node: ast.AST,
) -> None:
    root, peeled = _root_of(base)
    if not isinstance(root, ast.Name):
        return
    if scope.self_name is not None and root.id == scope.self_name:
        if peeled:  # self.attr.append(...) — mutation of self-reachable state
            effects.self_writes.append(SelfWrite(attr=_first_attr(base), node=node))
        return
    shadowed = root.id in local_names and root.id not in global_decls
    if root.id in mutables and not shadowed:
        effects.global_writes.append(GlobalWrite(name=root.id, node=node))
