"""The rule model and registry.

A rule is a class with a ``CCS0xx`` code, a one-line title, an optional
*scope* (module-path prefixes it applies to; ``None`` = everywhere), an
*allow* list (module paths exempt by design — the one blessed
implementation site of the invariant), and a :meth:`Rule.check` that
walks a parsed AST and yields findings.

The rule docstring is user-facing: ``ccs-lint --explain CCS0xx`` renders
it verbatim, so each docstring states the invariant, *why* it matters
(what silently breaks when it is violated), and the approved fix.
"""

from __future__ import annotations

import ast
import inspect
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Type

from .finding import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .analyzer import FileContext
    from .flow.program import ModuleInfo, Program

__all__ = ["FlowRule", "Rule", "all_rules", "get_rule", "register"]

#: code -> rule class; populated by the :func:`register` decorator.
_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for ccs-lint rules."""

    #: ``CCS0xx`` identifier; unique across the registry.
    code: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Module-path prefixes this rule is restricted to (``None`` = all files).
    scope: Optional[Tuple[str, ...]] = None
    #: Module paths exempt by design (the invariant's implementation site).
    allow: Tuple[str, ...] = ()
    #: Whole-program rules run once over a :class:`Program`, not per file.
    whole_program: bool = False

    def applies_to(self, module: str) -> bool:
        """Whether this rule runs on *module* (a repo-normalized path)."""
        if any(module == a or module.startswith(a.rstrip("/") + "/") for a in self.allow):
            return False
        if self.scope is None:
            return True
        return any(module.startswith(s) for s in self.scope)

    def check(self, tree: ast.Module, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for *tree*; overridden by every concrete rule."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at *node* with this rule's code."""
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0)) + 1
        snippet = ctx.lines[line - 1] if 0 < line <= len(ctx.lines) else ""
        return Finding(
            path=ctx.path,
            module=ctx.module,
            line=line,
            col=col,
            code=self.code,
            message=message,
            snippet=snippet,
        )

    @classmethod
    def explanation(cls) -> str:
        """The rule's docstring, dedented — the ``--explain`` text."""
        doc = cls.__doc__ or "(no documentation)"
        return inspect.cleandoc(doc)


class FlowRule(Rule):
    """Base class for whole-program (cross-file) rules.

    A flow rule sees the entire :class:`~repro.lint.flow.program.Program`
    at once — call graph, purity summaries, taint — and yields findings
    that may anchor in any module.  The analyzer routes each finding
    through that file's inline suppressions exactly like a per-file
    finding, and ``applies_to`` filters by the *finding's* module, so
    ``scope``/``allow`` keep their usual meaning.
    """

    whole_program: bool = True

    def check(self, tree: ast.Module, ctx: "FileContext") -> Iterator[Finding]:
        """Flow rules have no per-file pass."""
        return iter(())

    def check_program(self, program: "Program") -> Iterator[Finding]:
        """Yield findings over the whole program; overridden by subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers

    def finding_at(self, info: "ModuleInfo", node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at *node* inside module *info*."""
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0)) + 1
        snippet = info.lines[line - 1] if 0 < line <= len(info.lines) else ""
        return Finding(
            path=info.path,
            module=info.module,
            line=line,
            col=col,
            code=self.code,
            message=message,
            snippet=snippet,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (codes must be unique)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"rule code {cls.code} registered twice")
    _REGISTRY[cls.code] = cls
    return cls


def _load_builtin_rules() -> None:
    # Imported lazily so registry.py itself stays import-cycle-free.
    from . import rules  # noqa: F401  (importing registers the rule classes)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    _load_builtin_rules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """The rule registered under *code*; raises ``KeyError`` if unknown."""
    _load_builtin_rules()
    return _REGISTRY[code]()
