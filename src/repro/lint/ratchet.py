"""The baseline ratchet: the grandfather list may shrink, never grow.

CI usage (the lint job)::

    git show origin/main:.ccs-lint-baseline.json > /tmp/baseline-main.json
    python -m repro.lint.ratchet /tmp/baseline-main.json .ccs-lint-baseline.json

Exit 0 when the proposed baseline is a sub-multiset of the reference
(equal or burned down); exit 1 listing every added entry otherwise.  A
missing reference file counts as empty — a branch can never use "main
had no baseline yet" to smuggle one in.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .baseline import Baseline

__all__ = ["added_entries", "main"]


def added_entries(
    reference: Baseline, proposed: Baseline
) -> List[Tuple[Tuple[str, str, str], int]]:
    """Entries (with multiplicities) in *proposed* beyond *reference*.

    Each item is ``(finding key, how many more than the reference
    allows)``; empty means the ratchet holds.
    """
    added: List[Tuple[Tuple[str, str, str], int]] = []
    for key, count in sorted(proposed.entries.items()):
        extra = count - reference.entries.get(key, 0)
        if extra > 0:
            added.append((key, extra))
    return added


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 2:
        print(
            "usage: python -m repro.lint.ratchet REFERENCE_BASELINE PROPOSED_BASELINE",
            file=sys.stderr,
        )
        return 2
    try:
        reference = Baseline.load(Path(args[0]))
        proposed = Baseline.load(Path(args[1]))
    except (ValueError, OSError) as exc:
        print(f"ratchet: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    added = added_entries(reference, proposed)
    if not added:
        print(
            f"ratchet: ok ({len(proposed)} entries, reference {len(reference)})",
            file=sys.stderr,
        )
        return 0
    print(
        "ratchet: baseline grew — fix the findings instead of grandfathering them:",
        file=sys.stderr,
    )
    for (code, module, snippet), extra in added:
        note = f" (x{extra})" if extra > 1 else ""
        print(f"  {code} {module}: {snippet}{note}", file=sys.stderr)
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
