"""Drive the rules over files: parse once, run every applicable rule.

The analyzer is pure stdlib and side-effect free: it reads sources,
parses them with :mod:`ast`, asks each registered rule for findings, and
applies inline suppressions.  Baselines are the CLI's concern
(:mod:`repro.lint.cli`), so library callers — the test suite, a future
pre-commit hook — always see the full picture.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .finding import Finding
from .registry import Rule, all_rules
from .suppress import parse_suppressions

__all__ = ["FileContext", "FileReport", "analyze_paths", "analyze_source", "normalize_module"]

#: Reserved code for files the analyzer cannot parse at all.
SYNTAX_ERROR_CODE = "CCS000"


@dataclass
class FileContext:
    """Everything a rule may need to know about the file under analysis."""

    path: str
    module: str
    source: str
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


@dataclass
class FileReport:
    """Per-file analysis outcome: active findings plus suppressed ones."""

    path: str
    module: str
    findings: List[Finding]
    suppressed: List[Finding]


def normalize_module(path: Union[str, Path]) -> str:
    """Repo-normalized module path: the part from the last ``repro/`` on.

    ``src/repro/service/journal.py`` and
    ``/somewhere/repo/src/repro/service/journal.py`` both normalize to
    ``repro/service/journal.py``, so rule scoping and baseline keys are
    independent of the working directory.  Paths outside the package
    normalize to their POSIX form unchanged.
    """
    parts = Path(path).as_posix().split("/")
    for k in range(len(parts) - 1, -1, -1):
        if parts[k] == "repro":
            return "/".join(parts[k:])
    return "/".join(p for p in parts if p not in (".", ""))


def analyze_source(
    source: str,
    path: str,
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> FileReport:
    """Analyze one in-memory source text.

    *module* defaults to ``normalize_module(path)``; tests pass synthetic
    module paths (e.g. ``repro/service/kernel.py``) to exercise scoped
    rules on fixture snippets.
    """
    mod = module if module is not None else normalize_module(path)
    ctx = FileContext(path=path, module=mod, source=source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1)
        snippet = ctx.lines[line - 1] if 0 < line <= len(ctx.lines) else ""
        finding = Finding(
            path=path,
            module=mod,
            line=line,
            col=col,
            code=SYNTAX_ERROR_CODE,
            message=f"file cannot be parsed: {exc.msg}",
            snippet=snippet,
        )
        return FileReport(path=path, module=mod, findings=[finding], suppressed=[])

    active_rules = list(rules) if rules is not None else all_rules()
    raw: List[Finding] = []
    for rule in active_rules:
        if not rule.applies_to(mod):
            continue
        raw.extend(rule.check(tree, ctx))

    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(raw, key=Finding.sort_key):
        if suppressions.is_suppressed(finding.code, finding.line):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return FileReport(path=path, module=mod, findings=findings, suppressed=suppressed)


def _iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    out: List[Path] = []
    for item in paths:
        p = Path(item)
        if p.is_dir():
            out.extend(
                f for f in sorted(p.rglob("*.py")) if "__pycache__" not in f.parts
            )
        else:
            out.append(p)
    return out


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
) -> List[FileReport]:
    """Analyze every ``.py`` file under *paths* (files or directories)."""
    active_rules = list(rules) if rules is not None else all_rules()
    reports: List[FileReport] = []
    for file_path in _iter_python_files(paths):
        text = file_path.read_text(encoding="utf-8")
        reports.append(
            analyze_source(text, str(file_path), rules=active_rules)
        )
    return reports
