"""Drive the rules over files: parse once, run every applicable rule.

The analyzer is pure stdlib and side-effect free: it reads sources,
parses them with :mod:`ast`, asks each registered rule for findings, and
applies inline suppressions.  Per-file rules run on each file's AST;
whole-program :class:`~repro.lint.registry.FlowRule`\\ s run once over
the full :class:`~repro.lint.flow.program.Program` (built from the same
single parse set) and their findings are routed back into the per-file
reports through the same suppression machinery.  Baselines are the CLI's
concern (:mod:`repro.lint.cli`), so library callers — the test suite, a
future pre-commit hook — always see the full picture.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .finding import Finding
from .registry import FlowRule, Rule, all_rules
from .suppress import parse_suppressions

__all__ = [
    "FileContext",
    "FileReport",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "iter_python_files",
    "normalize_module",
]

#: Reserved code for files the analyzer cannot parse at all.
SYNTAX_ERROR_CODE = "CCS000"


@dataclass
class FileContext:
    """Everything a rule may need to know about the file under analysis."""

    path: str
    module: str
    source: str
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


@dataclass
class FileReport:
    """Per-file analysis outcome: active findings plus suppressed ones."""

    path: str
    module: str
    findings: List[Finding]
    suppressed: List[Finding]


def normalize_module(path: Union[str, Path]) -> str:
    """Repo-normalized module path: the part from the last ``repro/`` on.

    ``src/repro/service/journal.py`` and
    ``/somewhere/repo/src/repro/service/journal.py`` both normalize to
    ``repro/service/journal.py``, so rule scoping and baseline keys are
    independent of the working directory.  Paths outside the package
    normalize to their POSIX form unchanged.
    """
    parts = Path(path).as_posix().split("/")
    for k in range(len(parts) - 1, -1, -1):
        if parts[k] == "repro":
            return "/".join(parts[k:])
    return "/".join(p for p in parts if p not in (".", ""))


def analyze_source(
    source: str,
    path: str,
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> FileReport:
    """Analyze one in-memory source text.

    *module* defaults to ``normalize_module(path)``; tests pass synthetic
    module paths (e.g. ``repro/service/kernel.py``) to exercise scoped
    rules on fixture snippets.
    """
    mod = module if module is not None else normalize_module(path)
    ctx = FileContext(path=path, module=mod, source=source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1)
        snippet = ctx.lines[line - 1] if 0 < line <= len(ctx.lines) else ""
        finding = Finding(
            path=path,
            module=mod,
            line=line,
            col=col,
            code=SYNTAX_ERROR_CODE,
            message=f"file cannot be parsed: {exc.msg}",
            snippet=snippet,
        )
        return FileReport(path=path, module=mod, findings=[finding], suppressed=[])

    active_rules = list(rules) if rules is not None else all_rules()
    raw: List[Finding] = []
    for rule in active_rules:
        if not rule.applies_to(mod):
            continue
        raw.extend(rule.check(tree, ctx))

    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(raw, key=Finding.sort_key):
        if suppressions.is_suppressed(finding.code, finding.line):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return FileReport(path=path, module=mod, findings=findings, suppressed=suppressed)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under *paths*, sorted, ``__pycache__`` excluded."""
    out: List[Path] = []
    for item in paths:
        p = Path(item)
        if p.is_dir():
            out.extend(
                f for f in sorted(p.rglob("*.py")) if "__pycache__" not in f.parts
            )
        else:
            out.append(p)
    return out


def _route_flow_findings(
    reports: List[FileReport],
    items: Sequence[Tuple[str, str, Optional[str]]],
    flow_rules: Sequence[FlowRule],
) -> None:
    """Run whole-program rules and merge their findings into *reports*.

    The program is built from the already-read sources (one parse set for
    the whole run); each finding passes through its own file's inline
    suppressions, and ``applies_to`` filters on the finding's module so
    per-rule scope/allow behave identically to per-file rules.
    """
    from .flow.program import Program

    program = Program.from_sources(items)
    sources = {path: text for path, text, _ in items}
    by_path = {report.path: report for report in reports}
    extra: Dict[str, List[Finding]] = {}
    for rule in flow_rules:
        for finding in rule.check_program(program):
            if rule.applies_to(finding.module):
                extra.setdefault(finding.path, []).append(finding)
    for path, found in extra.items():
        report = by_path.get(path)
        if report is None:
            continue
        suppressions = parse_suppressions(sources.get(path, ""))
        for finding in found:
            if suppressions.is_suppressed(finding.code, finding.line):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
        report.findings.sort(key=Finding.sort_key)
        report.suppressed.sort(key=Finding.sort_key)


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
) -> List[FileReport]:
    """Analyze every ``.py`` file under *paths* (files or directories).

    Per-file rules run on each file; flow rules run once over the whole
    set.  Passing an explicit *rules* list restricts both kinds.
    """
    active_rules = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in active_rules if not r.whole_program]
    flow_rules = [r for r in active_rules if isinstance(r, FlowRule)]
    reports: List[FileReport] = []
    items: List[Tuple[str, str, Optional[str]]] = []
    for file_path in iter_python_files(paths):
        text = file_path.read_text(encoding="utf-8")
        items.append((str(file_path), text, None))
        reports.append(analyze_source(text, str(file_path), rules=file_rules))
    if flow_rules:
        _route_flow_findings(reports, items, flow_rules)
    return reports


def analyze_sources(
    items: Sequence[Tuple[str, str, Optional[str]]],
    rules: Optional[Sequence[Rule]] = None,
) -> List[FileReport]:
    """Analyze in-memory ``(path, source, module)`` triples as one program.

    The flow-rule equivalent of calling :func:`analyze_source` per item:
    per-file rules see each source alone, flow rules see them all as one
    program.  Tests use this to build multi-file fixture programs.
    """
    active_rules = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in active_rules if not r.whole_program]
    flow_rules = [r for r in active_rules if isinstance(r, FlowRule)]
    reports: List[FileReport] = []
    for path, text, module in items:
        reports.append(analyze_source(text, path, module=module, rules=file_rules))
    if flow_rules:
        _route_flow_findings(reports, items, flow_rules)
    return reports
