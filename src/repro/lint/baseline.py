"""The grandfathered-findings baseline.

A baseline lets the CI gate turn on strict *today* while pre-existing
findings are burned down incrementally: findings recorded in the
baseline file are reported as "baselined" and do not fail the run; any
*new* finding does.  This repo's checked-in baseline
(``.ccs-lint-baseline.json``) is empty — the initial burn-down happened
in the PR that introduced the linter — but the mechanism stays so a
future rule can land before its violations are all fixed.

Entries key on ``(code, module, stripped source line)`` rather than line
numbers, so unrelated edits that shift a file do not resurrect
grandfathered findings; editing the offending line itself *does* (the
edit is exactly the moment to fix it properly).  Duplicate keys are
counted: three identical offending lines need three baseline entries.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from .finding import Finding

__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]

BASELINE_VERSION = 1

#: Looked up in the current directory when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = ".ccs-lint-baseline.json"


class Baseline:
    """A multiset of grandfathered finding keys."""

    def __init__(self, entries: "Counter[Tuple[str, str, str]]") -> None:
        self._entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(Counter())

    @property
    def entries(self) -> "Counter[Tuple[str, str, str]]":
        """The grandfathered key multiset (a copy; used by the ratchet)."""
        return Counter(self._entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return cls.empty()
        if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline file {path}")
        entries: "Counter[Tuple[str, str, str]]" = Counter()
        for item in doc.get("findings", []):
            entries[(str(item["code"]), str(item["module"]), str(item["content"]))] += 1
        return cls(entries)

    def partition(self, findings: List[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into ``(new, baselined)``.

        Consumes baseline entries as they match, so N grandfathered
        copies of a line absorb at most N findings.
        """
        budget = Counter(self._entries)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            key = finding.key()
            if budget[key] > 0:
                budget[key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    @staticmethod
    def write(path: Union[str, Path], findings: List[Finding]) -> int:
        """Record *findings* as the new baseline; returns the entry count."""
        items: List[Dict[str, Any]] = [
            {"code": f.code, "module": f.module, "content": f.snippet.strip()}
            for f in sorted(findings, key=Finding.sort_key)
        ]
        doc = {"version": BASELINE_VERSION, "findings": items}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return len(items)

    def __len__(self) -> int:
        return sum(self._entries.values())
