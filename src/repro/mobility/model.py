"""Moving-cost and travel-time models.

The CCS objective charges each device a *monetary* moving cost for the trip
to its charger.  The default is the paper-style linear model (cost-per-
meter), but the module exposes a protocol so ablations can plug in convex
costs (fatigue) or metric substitutions (Manhattan travel on a campus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError
from ..geometry import Point

__all__ = [
    "MobilityModel",
    "LinearMobility",
    "QuadraticMobility",
    "ManhattanMobility",
]


@runtime_checkable
class MobilityModel(Protocol):
    """Maps a trip to its monetary cost and duration."""

    def moving_cost(self, origin: Point, destination: Point, rate: float) -> float:
        """Monetary cost for a device with per-meter *rate* to make the trip."""
        ...

    def travel_time(self, origin: Point, destination: Point, speed: float) -> float:
        """Seconds the trip takes at *speed* meters/second."""
        ...


class _EuclideanTravelTime:
    """Shared straight-line travel-time behaviour."""

    def travel_time(self, origin: Point, destination: Point, speed: float) -> float:
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        return origin.distance_to(destination) / speed


@dataclass(frozen=True)
class LinearMobility(_EuclideanTravelTime):
    """``cost = rate * euclidean_distance`` — the model the paper assumes."""

    def moving_cost(self, origin: Point, destination: Point, rate: float) -> float:
        if rate < 0:
            raise ConfigurationError(f"moving rate must be nonnegative, got {rate}")
        return rate * origin.distance_to(destination)

    def moving_cost_matrix(self, distances, rates):
        """Whole-matrix fast path: ``rates[:, None] * distances``.

        *distances* is the device x charger Euclidean distance matrix and
        *rates* the per-device rate vector; each entry is bitwise equal to
        the scalar :meth:`moving_cost` on the same distance (one IEEE
        multiply either way).  ``CCSInstance`` probes for this hook so the
        cost matrix is derived from the shared distance matrix instead of
        ``n * m`` per-pair model calls.
        """
        rates = np.asarray(rates, dtype=float)
        if np.any(rates < 0):
            raise ConfigurationError("moving rates must be nonnegative")
        return rates[:, None] * np.asarray(distances, dtype=float)


@dataclass(frozen=True)
class QuadraticMobility(_EuclideanTravelTime):
    """``cost = rate * d + curvature * d**2`` — convex long-trip penalty.

    Models devices for which long trips are disproportionately expensive
    (battery stress, mission downtime).  Used by ablation benchmarks to show
    the schedulers do not depend on linearity of the moving cost.
    """

    curvature: float = 0.001

    def __post_init__(self) -> None:
        if self.curvature < 0:
            raise ConfigurationError(
                f"curvature must be nonnegative, got {self.curvature}"
            )

    def moving_cost(self, origin: Point, destination: Point, rate: float) -> float:
        if rate < 0:
            raise ConfigurationError(f"moving rate must be nonnegative, got {rate}")
        d = origin.distance_to(destination)
        return rate * d + self.curvature * d**2


@dataclass(frozen=True)
class ManhattanMobility:
    """L1 travel for grid-constrained environments (corridors, city blocks)."""

    def moving_cost(self, origin: Point, destination: Point, rate: float) -> float:
        if rate < 0:
            raise ConfigurationError(f"moving rate must be nonnegative, got {rate}")
        return rate * origin.manhattan_distance_to(destination)

    def travel_time(self, origin: Point, destination: Point, speed: float) -> float:
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        return origin.manhattan_distance_to(destination) / speed
