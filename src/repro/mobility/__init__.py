"""Mobility substrate: moving-cost models and trip kinematics."""

from .model import LinearMobility, ManhattanMobility, MobilityModel, QuadraticMobility
from .planner import Trip

__all__ = [
    "MobilityModel",
    "LinearMobility",
    "QuadraticMobility",
    "ManhattanMobility",
    "Trip",
]
