"""Trip planning helpers for the testbed simulator.

Scheduling decides *where* each device goes; the simulator still needs the
kinematics of getting there.  :class:`Trip` tracks a straight-line journey
with constant speed so the discrete-event engine can interpolate positions
and charge travel energy as time advances.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..geometry import Point

__all__ = ["Trip"]


@dataclass
class Trip:
    """A straight-line trip from *origin* to *destination* at *speed* m/s."""

    origin: Point
    destination: Point
    speed: float

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {self.speed}")

    @property
    def length(self) -> float:
        """Trip length in meters."""
        return self.origin.distance_to(self.destination)

    @property
    def duration(self) -> float:
        """Trip duration in seconds."""
        return self.length / self.speed

    def position_at(self, elapsed: float) -> Point:
        """Position *elapsed* seconds after departure (clamped to endpoints)."""
        if elapsed < 0:
            raise ValueError(f"elapsed must be nonnegative, got {elapsed}")
        return self.origin.towards(self.destination, self.speed * elapsed)

    def distance_travelled(self, elapsed: float) -> float:
        """Meters covered after *elapsed* seconds (clamped to trip length)."""
        if elapsed < 0:
            raise ValueError(f"elapsed must be nonnegative, got {elapsed}")
        return min(self.length, self.speed * elapsed)
