"""Wireless power transfer propagation and efficiency models.

In the cooperative-charging service model devices travel *to* the charger,
so scheduling only needs the charger's pad efficiency.  The simulator,
however, models noisy short-range WPT links, and ablations explore
distance-dependent efficiency — both are served by the empirical model of
He et al. widely used in the WRSN literature:

    p_r(d) = alpha / (d + beta)^2

normalised so the efficiency at contact distance is a configured value and
clipped to zero beyond a hard cutoff ``d_max``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["WptLink", "contact_efficiency"]


@dataclass(frozen=True)
class WptLink:
    """Distance-dependent WPT efficiency ``eta(d) = alpha / (d + beta)^2``.

    Parameters
    ----------
    alpha, beta:
        Shape parameters of the empirical quadratic attenuation model.
        ``eta(0) = alpha / beta**2`` must land in ``(0, 1]`` — efficiency
        can never exceed unity.
    d_max:
        Hard charging range in meters; ``eta(d) = 0`` for ``d > d_max``.
    """

    alpha: float
    beta: float
    d_max: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigurationError("alpha and beta must be positive")
        if self.d_max <= 0:
            raise ConfigurationError(f"d_max must be positive, got {self.d_max}")
        if self.alpha / self.beta**2 > 1.0:
            raise ConfigurationError(
                "alpha/beta^2 is the contact efficiency and must be <= 1, "
                f"got {self.alpha / self.beta ** 2:.3f}"
            )

    def efficiency(self, distance: float) -> float:
        """End-to-end power transfer efficiency at *distance* meters."""
        if distance < 0:
            raise ValueError(f"distance must be nonnegative, got {distance}")
        if distance > self.d_max:
            return 0.0
        return self.alpha / (distance + self.beta) ** 2

    def received_power(self, transmit_power: float, distance: float) -> float:
        """Power delivered to a receiver at *distance* for the given transmit power."""
        if transmit_power < 0:
            raise ValueError(f"transmit_power must be nonnegative, got {transmit_power}")
        return transmit_power * self.efficiency(distance)


def contact_efficiency(eta: float, d_max: float = 1.0) -> WptLink:
    """Build a :class:`WptLink` whose efficiency at distance zero equals *eta*.

    Convenience for scheduling-level models that only care about the pad
    efficiency: ``beta`` is fixed at 1 m and ``alpha = eta`` so
    ``eta(0) = eta`` exactly.
    """
    if not 0.0 < eta <= 1.0:
        raise ConfigurationError(f"contact efficiency must be in (0, 1], got {eta}")
    return WptLink(alpha=eta, beta=1.0, d_max=d_max)
