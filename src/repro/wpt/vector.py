"""Vectorized charger pricing — the tariff table behind the array engine.

The array-native CCSGA engine (:mod:`repro.game.arraycore`) evaluates
every (device, coalition) candidate move of a scan at once, which needs
session prices for a whole *vector* of hypothetical total demands spread
across heterogeneous chargers.  :class:`ChargerPriceTable` packs the
per-charger tariff parameters into flat arrays once and answers such
queries with a handful of numpy ops.

**Bit-identity contract.**  Every price this table produces must be
bitwise equal to the scalar path
(``instance.charging_price_for_demand`` →
:meth:`repro.wpt.charger.Charger.price_for_stored` →
:meth:`repro.wpt.pricing._TariffBase.session_price`).  Power-law and
linear tariffs take a closed-form fast path (``base + unit *
np.power(E, exponent)`` — numpy's pow, the same implementation the
scalar path routes through, with linear tariffs folded in as exponent
1.0 since ``np.power(E, 1.0)`` is bitwise ``E``); any other tariff is
evaluated per charger through its ``session_price_vector`` /
``session_price`` methods, which replicate the scalar arithmetic
exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..numeric import EXACT_ZERO
from .charger import Charger
from .pricing import LinearTariff, PowerLawTariff

__all__ = ["ChargerPriceTable"]


class ChargerPriceTable:
    """Flat per-charger tariff parameters for vectorized session pricing."""

    def __init__(self, chargers: Sequence[Charger]):
        self.chargers = tuple(chargers)
        m = len(self.chargers)
        self._efficiency = np.array([c.efficiency for c in self.chargers], dtype=float)
        self._base = np.zeros(m, dtype=float)
        self._unit = np.zeros(m, dtype=float)
        self._exponent = np.ones(m, dtype=float)
        self._closed_form = np.zeros(m, dtype=bool)
        for j, charger in enumerate(self.chargers):
            tariff = charger.tariff
            if type(tariff) is PowerLawTariff:
                self._base[j] = tariff.base
                self._unit[j] = tariff.unit
                self._exponent[j] = tariff.exponent
                self._closed_form[j] = True
            elif type(tariff) is LinearTariff:
                self._base[j] = tariff.base
                self._unit[j] = tariff.unit
                self._closed_form[j] = True

    def prices(self, totals: np.ndarray, chargers_idx: np.ndarray) -> np.ndarray:
        """Session prices for summed stored demands at per-element chargers.

        ``prices(t, c)[k]`` equals
        ``instance.charging_price_for_demand(float(t[k]), int(c[k]))``
        bitwise, including the exact-zero free-session guard.
        """
        totals = np.asarray(totals, dtype=float)
        chargers_idx = np.asarray(chargers_idx, dtype=np.int64)
        if np.any(totals < 0):
            raise ValueError("demands must be nonnegative")
        emitted = totals / self._efficiency[chargers_idx]
        fast = self._closed_form[chargers_idx]
        if fast.all():
            out = self._base[chargers_idx] + self._unit[chargers_idx] * np.power(
                emitted, self._exponent[chargers_idx]
            )
        else:
            out = np.empty_like(totals)
            if fast.any():
                sub = chargers_idx[fast]
                out[fast] = self._base[sub] + self._unit[sub] * np.power(
                    emitted[fast], self._exponent[sub]
                )
            for j in np.unique(chargers_idx[~fast]):
                mask = chargers_idx == int(j)
                out[mask] = self._prices_one_charger(int(j), emitted[mask])
        zero = totals == EXACT_ZERO
        if zero.any():
            out[zero] = 0.0
        return out

    def _prices_one_charger(self, charger: int, emitted: np.ndarray) -> np.ndarray:
        """Generic-tariff fallback: one charger, a vector of emitted energies."""
        tariff = self.chargers[charger].tariff
        vector = getattr(tariff, "session_price_vector", None)
        if vector is not None:
            return np.asarray(vector(emitted), dtype=float)
        return np.array([tariff.session_price(float(e)) for e in emitted], dtype=float)

    def singleton_price_matrix(self, demands: np.ndarray) -> np.ndarray:
        """``(n, m)`` singleton prices: device *i* charging alone at charger *j*.

        Column ``j`` is bitwise equal to evaluating
        ``chargers[j].price_for_stored(d)`` per device.
        """
        demands = np.asarray(demands, dtype=float)
        if np.any(demands < 0):
            raise ValueError("demands must be nonnegative")
        out = np.empty((demands.shape[0], len(self.chargers)), dtype=float)
        for j, charger in enumerate(self.chargers):
            emitted = demands / charger.efficiency
            if self._closed_form[j]:
                col = self._base[j] + self._unit[j] * np.power(
                    emitted, self._exponent[j]
                )
                zero = emitted == EXACT_ZERO
                if zero.any():
                    col = np.where(zero, 0.0, col)
            else:
                col = self._prices_one_charger(j, emitted)
            out[:, j] = col
        return out
