"""Charging-service tariffs.

The economics of cooperative charging live here.  A tariff maps the energy
a session must *emit* to the money the session costs:

    price(E) = base + unit * g(E)

with ``g`` concave and nondecreasing, ``g(0) = 0``.  Two properties follow
and everything downstream depends on them:

1. **Cooperation pays.**  ``price(E1 + E2) <= price(E1) + price(E2) - base``
   — merging two sessions saves at least one base fee, and a strictly
   concave ``g`` saves more through the volume discount.
2. **Submodularity.**  For a fixed charger, the group cost
   ``f(G) = price(sum of member emissions) + modular moving costs`` is a
   submodular set function, which is what CCSA's SFM machinery exploits
   (see :mod:`repro.submodular`).

Tariffs are frozen dataclasses so chargers can share them safely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..errors import ConfigurationError
from ..numeric import EXACT_ZERO, is_exact_zero

__all__ = [
    "Tariff",
    "LinearTariff",
    "PowerLawTariff",
    "PiecewiseConcaveTariff",
    "is_concave_nondecreasing",
]


@runtime_checkable
class Tariff(Protocol):
    """A charging-session price schedule.

    Implementations must guarantee ``volume_charge`` is nondecreasing and
    concave in the emitted energy with ``volume_charge(0) == 0``; the
    library's submodularity arguments (and CCSA's correctness) rest on it.
    """

    base: float

    def volume_charge(self, energy: float) -> float:
        """Energy-dependent part of the price, ``unit * g(E)``."""
        ...

    def session_price(self, energy: float) -> float:
        """Total price of a session emitting *energy* joules (0 for an empty session)."""
        ...


class _TariffBase:
    """Shared ``session_price`` logic: empty sessions are free, others pay base + volume."""

    base: float

    def volume_charge(self, energy: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def session_price(self, energy: float) -> float:
        if energy < 0:
            raise ValueError(f"energy must be nonnegative, got {energy}")
        if is_exact_zero(energy):
            return 0.0
        return self.base + self.volume_charge(energy)

    def volume_charge_vector(self, energy: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`volume_charge` over an energy vector.

        The fallback evaluates the scalar method per element, so any
        subclass override must stay bitwise equal to that — the array
        engine's equivalence with the object engine depends on it.
        """
        return np.array([self.volume_charge(float(e)) for e in energy], dtype=float)

    def session_price_vector(self, energy: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`session_price` over an energy vector.

        Same base-plus-volume arithmetic (and the same exact-zero guard)
        applied per element; bitwise equal to the scalar path.
        """
        e = np.asarray(energy, dtype=float)
        if np.any(e < 0):
            raise ValueError("energy must be nonnegative")
        out = self.base + self.volume_charge_vector(e)
        zero = e == EXACT_ZERO
        if zero.any():
            out = np.where(zero, 0.0, out)
        return out


@dataclass(frozen=True)
class LinearTariff(_TariffBase):
    """``price(E) = base + unit * E``.

    With a linear volume charge the *only* cooperative saving is the shared
    base fee — the ablation point the paper's base-price sweep probes.
    """

    base: float
    unit: float

    def __post_init__(self) -> None:
        if self.base < 0 or self.unit < 0:
            raise ConfigurationError("base and unit prices must be nonnegative")

    def volume_charge(self, energy: float) -> float:
        if energy < 0:
            raise ValueError(f"energy must be nonnegative, got {energy}")
        return self.unit * energy

    def volume_charge_vector(self, energy: np.ndarray) -> np.ndarray:
        if np.any(energy < 0):
            raise ValueError("energy must be nonnegative")
        return self.unit * energy


@dataclass(frozen=True)
class PowerLawTariff(_TariffBase):
    """``price(E) = base + unit * E**exponent`` with ``exponent`` in ``(0, 1]``.

    The default volume-discount curve: strictly concave for exponent < 1,
    reducing to :class:`LinearTariff` at exponent = 1.
    """

    base: float
    unit: float
    exponent: float = 0.8

    def __post_init__(self) -> None:
        if self.base < 0 or self.unit < 0:
            raise ConfigurationError("base and unit prices must be nonnegative")
        if not 0.0 < self.exponent <= 1.0:
            raise ConfigurationError(
                f"exponent must be in (0, 1] for a concave tariff, got {self.exponent}"
            )

    def volume_charge(self, energy: float) -> float:
        if energy < 0:
            raise ValueError(f"energy must be nonnegative, got {energy}")
        # Routed through numpy's pow (not the ``**`` libm pow) so the scalar
        # and vectorized tariff paths share one implementation: numpy's pow
        # is bitwise self-consistent between its scalar, strided, and SIMD
        # code paths, whereas libm pow and numpy pow differ by 1 ulp on a
        # small fraction of inputs — which would break the array engine's
        # bit-identity contract.
        return self.unit * float(np.power(energy, self.exponent))

    def volume_charge_vector(self, energy: np.ndarray) -> np.ndarray:
        if np.any(energy < 0):
            raise ValueError("energy must be nonnegative")
        return self.unit * np.power(energy, self.exponent)


@dataclass(frozen=True)
class PiecewiseConcaveTariff(_TariffBase):
    """Volume charge defined by marginal prices over energy brackets.

    ``breakpoints`` are bracket upper bounds (strictly increasing, the last
    bracket extends to infinity) and ``marginal_prices`` the per-joule price
    within each bracket.  Marginal prices must be nonincreasing so the curve
    is concave — the shape of real volume-discount schedules.
    """

    base: float
    breakpoints: Sequence[float]
    marginal_prices: Sequence[float]

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError("base price must be nonnegative")
        bp, mp = list(self.breakpoints), list(self.marginal_prices)
        if len(mp) != len(bp) + 1:
            raise ConfigurationError(
                "need exactly one more marginal price than breakpoints "
                f"(got {len(mp)} prices, {len(bp)} breakpoints)"
            )
        if any(b <= 0 for b in bp) or any(b2 <= b1 for b1, b2 in zip(bp, bp[1:])):
            raise ConfigurationError("breakpoints must be positive and strictly increasing")
        if any(p < 0 for p in mp):
            raise ConfigurationError("marginal prices must be nonnegative")
        if any(p2 > p1 for p1, p2 in zip(mp, mp[1:])):
            raise ConfigurationError(
                "marginal prices must be nonincreasing (concave volume discount)"
            )
        # Normalise to tuples so the dataclass stays hashable.
        object.__setattr__(self, "breakpoints", tuple(bp))
        object.__setattr__(self, "marginal_prices", tuple(mp))

    def volume_charge(self, energy: float) -> float:
        if energy < 0:
            raise ValueError(f"energy must be nonnegative, got {energy}")
        total = 0.0
        lower = 0.0
        for upper, price in zip(self.breakpoints, self.marginal_prices):
            if energy <= lower:
                break
            total += price * (min(energy, upper) - lower)
            lower = upper
        if energy > lower:
            total += self.marginal_prices[-1] * (energy - lower)
        return total

    def volume_charge_vector(self, energy: np.ndarray) -> np.ndarray:
        if np.any(energy < 0):
            raise ValueError("energy must be nonnegative")
        # Per-element accumulation in exactly the scalar method's bracket
        # order: each element receives the same sequence of
        # ``price * (min(E, upper) - lower)`` additions it would get from
        # the scalar loop (elements past their last bracket simply stop
        # accumulating, which is what the scalar ``break`` does).
        total = np.zeros_like(energy, dtype=float)
        lower = 0.0
        for upper, price in zip(self.breakpoints, self.marginal_prices):
            active = energy > lower
            if active.any():
                e = energy[active]
                total[active] += price * (np.minimum(e, upper) - lower)
            lower = upper
        active = energy > lower
        if active.any():
            total[active] += self.marginal_prices[-1] * (energy[active] - lower)
        return total


def is_concave_nondecreasing(
    tariff: Tariff, e_max: float, samples: int = 64, tol: float = 1e-9
) -> bool:
    """Empirically check a tariff's volume charge on ``[0, e_max]``.

    Samples the curve and verifies midpoint concavity and monotonicity.
    Used by tests and by :class:`~repro.core.instance.CCSInstance` in strict
    mode to reject tariffs that would break CCSA's submodularity argument.
    """
    if e_max <= 0:
        raise ValueError(f"e_max must be positive, got {e_max}")
    xs = [e_max * k / samples for k in range(samples + 1)]
    ys = [tariff.volume_charge(x) for x in xs]
    if abs(ys[0]) > tol:
        return False
    for y1, y2 in zip(ys, ys[1:]):
        if y2 < y1 - tol:
            return False
    for k in range(1, samples):
        if ys[k] < 0.5 * (ys[k - 1] + ys[k + 1]) - tol * max(1.0, abs(ys[k])):
            return False
    return not math.isnan(ys[-1])
