"""Charging-service providers.

A :class:`Charger` is one stationary WPT station offering charging as a
service: it has a location, a tariff, hardware limits (transmit power, pad
efficiency, slot capacity), and knows how to price and time a session for a
group's energy demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import ConfigurationError
from ..geometry import Point
from .pricing import PowerLawTariff, Tariff

__all__ = ["Charger"]


@dataclass(frozen=True)
class Charger:
    """One wireless charging service point.

    Parameters
    ----------
    charger_id:
        Stable identifier, unique within an instance.
    position:
        Location of the charging pad.
    tariff:
        Price schedule for a session (see :mod:`repro.wpt.pricing`).
    efficiency:
        End-to-end WPT efficiency at the pad, in ``(0, 1]``.  A device that
        needs ``d`` joules *stored* forces the charger to emit
        ``d / efficiency`` joules, and the tariff prices emitted energy.
    transmit_power:
        RF power emitted while a session runs, in watts; determines session
        duration in the testbed simulator.
    capacity:
        Maximum devices that fit around the pad in one session
        (``None`` = unbounded, the pure-economics setting).
    service_discipline:
        How the pad serves a group, affecting session *duration* only
        (pricing depends on energy, not time):

        - ``"sequential"`` (default): one transmit chain, members charged
          back-to-back; duration = total emitted energy / power.
        - ``"concurrent"``: one coil per slot, members charged
          simultaneously at full per-device power; duration = slowest
          member's emitted energy / power.
    """

    charger_id: str
    position: Point
    tariff: Tariff = field(default_factory=lambda: PowerLawTariff(base=10.0, unit=1.0))
    efficiency: float = 0.8
    transmit_power: float = 5.0
    capacity: Optional[int] = None
    service_discipline: str = "sequential"

    _DISCIPLINES = ("sequential", "concurrent")

    def __post_init__(self) -> None:
        if not self.charger_id:
            raise ConfigurationError("charger_id must be a nonempty string")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.transmit_power <= 0:
            raise ConfigurationError(
                f"transmit_power must be positive, got {self.transmit_power}"
            )
        if self.capacity is not None and self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")
        if self.service_discipline not in self._DISCIPLINES:
            raise ConfigurationError(
                f"service_discipline must be one of {self._DISCIPLINES}, "
                f"got {self.service_discipline!r}"
            )

    def emitted_energy(self, stored_demands: Iterable[float]) -> float:
        """Joules the charger must emit to store the given demands in batteries."""
        total = 0.0
        for d in stored_demands:
            if d < 0:
                raise ValueError(f"demands must be nonnegative, got {d}")
            total += d
        return total / self.efficiency

    def session_price(self, stored_demands: Iterable[float]) -> float:
        """Price of one session satisfying *stored_demands* (0 if all-zero)."""
        return self.tariff.session_price(self.emitted_energy(stored_demands))

    def price_for_stored(self, total_stored: float) -> float:
        """Price of a session storing *total_stored* joules in total.

        Fast path for callers that already hold the summed demand — one
        division and one tariff evaluation instead of re-iterating the
        group (``session_price(demands) == price_for_stored(sum(demands))``
        up to summation order).
        """
        if total_stored < 0:
            raise ValueError(f"demands must be nonnegative, got {total_stored}")
        return self.tariff.session_price(total_stored / self.efficiency)

    def session_duration(self, stored_demands: Iterable[float]) -> float:
        """Seconds the session runs, per the pad's service discipline.

        Sequential pads serve members back-to-back (duration = total
        emitted energy / power); concurrent pads charge every slot at once
        (duration = slowest member's emitted energy / power).  An all-zero
        session takes zero time either way.
        """
        demands = [float(d) for d in stored_demands]
        if any(d < 0 for d in demands):
            raise ValueError("demands must be nonnegative")
        if self.service_discipline == "concurrent":
            if not demands:
                return 0.0
            return (max(demands) / self.efficiency) / self.transmit_power
        return self.emitted_energy(demands) / self.transmit_power

    def admits(self, group_size: int) -> bool:
        """True if a group of *group_size* devices fits in one session."""
        if group_size < 0:
            raise ValueError(f"group_size must be nonnegative, got {group_size}")
        return self.capacity is None or group_size <= self.capacity
