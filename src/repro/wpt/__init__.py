"""WPT substrate: propagation, tariffs, and charging-service providers."""

from .charger import Charger
from .pricing import (
    LinearTariff,
    PiecewiseConcaveTariff,
    PowerLawTariff,
    Tariff,
    is_concave_nondecreasing,
)
from .propagation import WptLink, contact_efficiency
from .vector import ChargerPriceTable

__all__ = [
    "Charger",
    "ChargerPriceTable",
    "Tariff",
    "LinearTariff",
    "PowerLawTariff",
    "PiecewiseConcaveTariff",
    "is_concave_nondecreasing",
    "WptLink",
    "contact_efficiency",
]
