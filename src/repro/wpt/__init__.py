"""WPT substrate: propagation, tariffs, and charging-service providers."""

from .charger import Charger
from .pricing import (
    LinearTariff,
    PiecewiseConcaveTariff,
    PowerLawTariff,
    Tariff,
    is_concave_nondecreasing,
)
from .propagation import WptLink, contact_efficiency

__all__ = [
    "Charger",
    "Tariff",
    "LinearTariff",
    "PowerLawTariff",
    "PiecewiseConcaveTariff",
    "is_concave_nondecreasing",
    "WptLink",
    "contact_efficiency",
]
