"""Statistical helpers for experiment reporting.

The paper reports point averages; a careful reproduction should state how
certain they are.  These helpers add Student-t confidence intervals,
paired t-tests (the field experiment is a paired design by construction),
and bootstrap intervals for statistics without a clean parametric form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np
from scipy import stats as sps

from .rng import RandomState, ensure_rng

__all__ = ["MeanCI", "mean_ci", "paired_t_test", "PairedTest", "bootstrap_ci"]


@dataclass(frozen=True)
class MeanCI:
    """A sample mean with its two-sided Student-t confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3g} [{self.low:.3g}, {self.high:.3g}] ({self.confidence:.0%})"


def mean_ci(samples: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Student-t confidence interval for the mean of *samples*.

    Requires at least two samples (one sample has no dispersion estimate);
    a degenerate zero-variance sample collapses to a point interval.
    """
    xs = [float(x) for x in samples]
    if len(xs) < 2:
        raise ValueError(f"need >= 2 samples for a confidence interval, got {len(xs)}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(xs)
    mean = sum(xs) / n
    var = sum((x - mean) ** 2 for x in xs) / (n - 1)
    half = sps.t.ppf(0.5 + confidence / 2.0, df=n - 1) * math.sqrt(var / n)
    return MeanCI(mean=mean, low=mean - half, high=mean + half, confidence=confidence, n=n)


@dataclass(frozen=True)
class PairedTest:
    """Result of a paired t-test between two matched samples."""

    mean_difference: float
    t_statistic: float
    p_value: float
    n: int

    @property
    def significant_at_5pct(self) -> bool:
        """Convenience: is the difference significant at alpha = 0.05?"""
        return self.p_value < 0.05


def paired_t_test(baseline: Sequence[float], candidate: Sequence[float]) -> PairedTest:
    """Paired t-test of ``baseline - candidate`` (positive mean = candidate cheaper).

    The field-trial harness guarantees pairing (identical realized worlds),
    so this is the right test for "CCSA beats NCA" claims.
    """
    a = [float(x) for x in baseline]
    b = [float(x) for x in candidate]
    if len(a) != len(b):
        raise ValueError(f"paired samples must match in length: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ValueError("need >= 2 pairs")
    diffs = [x - y for x, y in zip(a, b)]
    t_stat, p = sps.ttest_rel(a, b)
    return PairedTest(
        mean_difference=sum(diffs) / len(diffs),
        t_statistic=float(t_stat),
        p_value=float(p),
        n=len(a),
    )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = None,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: RandomState = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for an arbitrary statistic.

    Deterministic for a fixed *rng* seed; default statistic is the mean.
    """
    xs = np.asarray([float(x) for x in samples])
    if xs.size < 2:
        raise ValueError("need >= 2 samples to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    stat = statistic if statistic is not None else (lambda s: float(np.mean(s)))
    gen = ensure_rng(rng)
    values = [
        stat(xs[gen.integers(0, xs.size, size=xs.size)]) for _ in range(resamples)
    ]
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(values, alpha)),
        float(np.quantile(values, 1.0 - alpha)),
    )
