"""Evaluation harness for online scheduling policies.

Runs a policy over an arrival stream, costs its final schedule, and
compares it with the **clairvoyant offline** solution — CCSA run on the
full instance as if every request had been known in advance.  The ratio
``online / offline`` is the empirical competitive ratio the online
experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

from ..core import CCSInstance, Schedule, ccsa, comprehensive_cost, validate_schedule
from ..mobility import MobilityModel
from ..numeric import is_exact_zero
from ..wpt import Charger
from .arrivals import Arrival

__all__ = ["OnlineOutcome", "evaluate_policy", "compare_policies"]


@dataclass(frozen=True)
class OnlineOutcome:
    """One policy's performance on one arrival stream."""

    policy: str
    online_cost: float
    offline_cost: float
    n_sessions: int

    @property
    def competitive_ratio(self) -> float:
        """``online / clairvoyant-offline`` — 1.0 means no regret.

        A zero offline cost (possible under a degenerate tariff with no
        base fee and free volume) is handled explicitly rather than
        raising ``ZeroDivisionError``: if the online cost is also zero
        the policy matched the optimum (ratio 1.0); otherwise the ratio
        is unbounded and reported as ``float("inf")``.
        """
        if is_exact_zero(self.offline_cost):
            return 1.0 if is_exact_zero(self.online_cost) else float("inf")
        return self.online_cost / self.offline_cost


def evaluate_policy(
    policy,
    arrivals: Sequence[Arrival],
    chargers: Sequence[Charger],
    mobility: Optional[MobilityModel] = None,
    offline_solver: Callable[[CCSInstance], Schedule] = ccsa,
) -> OnlineOutcome:
    """Run *policy* on the stream and benchmark it against clairvoyance.

    The online schedule is validated for feasibility before costing, so a
    buggy policy fails loudly instead of reporting a bogus ratio.
    """
    schedule, instance = policy.run(arrivals, chargers, mobility)
    validate_schedule(schedule, instance)
    online_cost = comprehensive_cost(schedule, instance)
    offline_cost = comprehensive_cost(offline_solver(instance), instance)
    return OnlineOutcome(
        policy=policy.name,
        online_cost=online_cost,
        offline_cost=offline_cost,
        n_sessions=schedule.n_sessions,
    )


def compare_policies(
    policies: Mapping[str, object],
    arrivals: Sequence[Arrival],
    chargers: Sequence[Charger],
    mobility: Optional[MobilityModel] = None,
) -> Dict[str, OnlineOutcome]:
    """Evaluate several policies on the *same* arrival stream."""
    return {
        name: evaluate_policy(policy, arrivals, chargers, mobility)
        for name, policy in policies.items()
    }
