"""Arrival processes for online cooperative charging.

The offline CCS problem assumes all charging requests are known up front.
Real service systems see requests *arrive*: a device shows up at time t
wanting energy, and the scheduler must commit it to a session without
knowing who comes next.  This module generates such request streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import Device
from ..energy import uniform_demands
from ..errors import ConfigurationError
from ..geometry import Field, uniform_deployment
from ..rng import RandomState, ensure_rng

__all__ = ["Arrival", "poisson_arrivals"]


@dataclass(frozen=True)
class Arrival:
    """One charging request: a device appearing at a point in time."""

    time: float
    device: Device


def poisson_arrivals(
    n: int,
    rate: float,
    field: Field,
    demand_low: float = 10e3,
    demand_high: float = 40e3,
    moving_rate: float = 0.05,
    rng: RandomState = None,
) -> List[Arrival]:
    """Generate *n* requests with exponential inter-arrival times.

    Positions are uniform over *field* and demands uniform over the given
    range — the online analogue of the simulation workload.  Returned
    sorted by arrival time (trivially true for a Poisson stream).
    """
    if n < 0:
        raise ConfigurationError(f"n must be nonnegative, got {n}")
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    gen = ensure_rng(rng)
    gaps = gen.exponential(1.0 / rate, size=n)
    times = gaps.cumsum()
    positions = uniform_deployment(field, n, gen)
    demands = uniform_demands(n, demand_low, demand_high, gen)
    return [
        Arrival(
            time=float(t),
            device=Device(
                device_id=f"a{k:04d}",
                position=p,
                demand=d,
                moving_rate=moving_rate,
            ),
        )
        for k, (t, p, d) in enumerate(zip(times, positions, demands))
    ]
