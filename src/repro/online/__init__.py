"""Online cooperative charging (extension): requests arrive over time."""

from .arrivals import Arrival, poisson_arrivals
from .harness import OnlineOutcome, compare_policies, evaluate_policy
from .traces import burst_arrivals, diurnal_arrivals
from .scheduler import BatchScheduler, GreedyDispatch, OnlineRun, OpenSession

__all__ = [
    "Arrival",
    "poisson_arrivals",
    "diurnal_arrivals",
    "burst_arrivals",
    "OpenSession",
    "OnlineRun",
    "GreedyDispatch",
    "BatchScheduler",
    "OnlineOutcome",
    "evaluate_policy",
    "compare_policies",
]
