"""Realistic request traces: diurnal and bursty arrival patterns.

Poisson streams (:mod:`.arrivals`) have constant intensity; real charging
demand does not — field robots work shifts, sensors see event bursts.
These generators produce the structured streams the online policies are
actually judged on:

- :func:`diurnal_arrivals` — a 24 h inhomogeneous Poisson process whose
  rate follows a day/night profile (thinning method);
- :func:`burst_arrivals` — quiet background traffic punctuated by
  synchronized bursts (e.g. a detection event waking a whole cluster),
  the worst case for small commitment windows and the best for batching.
"""

from __future__ import annotations

import math
from typing import List

from ..core import Device
from ..energy import uniform_demands
from ..errors import ConfigurationError
from ..geometry import Field, uniform_deployment
from ..rng import RandomState, ensure_rng
from .arrivals import Arrival

__all__ = ["diurnal_arrivals", "burst_arrivals"]

_DAY = 86_400.0


def diurnal_arrivals(
    n: int,
    field: Field,
    peak_rate: float = 1 / 60.0,
    trough_ratio: float = 0.15,
    peak_hour: float = 14.0,
    demand_low: float = 10e3,
    demand_high: float = 40e3,
    moving_rate: float = 0.05,
    rng: RandomState = None,
) -> List[Arrival]:
    """*n* requests over one day with a sinusoidal day/night rate profile.

    The intensity is ``λ(t) = peak_rate · (r + (1-r)·(1+cos(2π(t-t_peak)/day))/2)``
    with ``r = trough_ratio``; samples are drawn by Lewis–Shedler thinning
    against the constant majorant ``peak_rate`` and truncated to *n*
    requests (wrapping into following days if the first day is too quiet).
    """
    if n < 0:
        raise ConfigurationError(f"n must be nonnegative, got {n}")
    if peak_rate <= 0:
        raise ConfigurationError(f"peak_rate must be positive, got {peak_rate}")
    if not 0.0 < trough_ratio <= 1.0:
        raise ConfigurationError(
            f"trough_ratio must be in (0, 1], got {trough_ratio}"
        )
    gen = ensure_rng(rng)
    t_peak = peak_hour * 3600.0

    def intensity(t: float) -> float:
        phase = math.cos(2.0 * math.pi * (t - t_peak) / _DAY)
        return peak_rate * (trough_ratio + (1.0 - trough_ratio) * (1.0 + phase) / 2.0)

    times: List[float] = []
    t = 0.0
    while len(times) < n:
        t += float(gen.exponential(1.0 / peak_rate))
        if gen.uniform() <= intensity(t) / peak_rate:
            times.append(t)

    positions = uniform_deployment(field, n, gen)
    demands = uniform_demands(n, demand_low, demand_high, gen)
    return [
        Arrival(
            time=t,
            device=Device(
                device_id=f"dz{k:04d}", position=p, demand=d, moving_rate=moving_rate
            ),
        )
        for k, (t, p, d) in enumerate(zip(times, positions, demands))
    ]


def burst_arrivals(
    n_bursts: int,
    burst_size: int,
    field: Field,
    burst_spacing: float = 1800.0,
    burst_spread: float = 30.0,
    cluster_spread: float = 0.05,
    demand_low: float = 10e3,
    demand_high: float = 40e3,
    moving_rate: float = 0.05,
    rng: RandomState = None,
) -> List[Arrival]:
    """Synchronized bursts: *n_bursts* events, each waking *burst_size* devices.

    Each burst happens at a random point of the field; its devices appear
    within ``burst_spread`` seconds around the burst time and within a
    Gaussian cluster of relative width ``cluster_spread`` around the burst
    location — the co-located, co-timed demand that makes cooperation
    (and batching) shine.  Returned sorted by time.
    """
    if n_bursts < 0 or burst_size < 1:
        raise ConfigurationError("need n_bursts >= 0 and burst_size >= 1")
    if burst_spacing <= 0 or burst_spread < 0:
        raise ConfigurationError("invalid burst timing parameters")
    gen = ensure_rng(rng)
    sigma = cluster_spread * min(field.width, field.height)

    arrivals: List[Arrival] = []
    centers = uniform_deployment(field, max(n_bursts, 0), gen)
    k = 0
    for b in range(n_bursts):
        burst_time = (b + 1) * burst_spacing
        center = centers[b]
        demands = uniform_demands(burst_size, demand_low, demand_high, gen)
        for d in demands:
            jitter_t = abs(float(gen.normal(0.0, burst_spread)))
            pos = field.clamp(
                center.translated(
                    float(gen.normal(0.0, sigma)), float(gen.normal(0.0, sigma))
                )
            )
            arrivals.append(
                Arrival(
                    time=burst_time + jitter_t,
                    device=Device(
                        device_id=f"db{k:04d}",
                        position=pos,
                        demand=d,
                        moving_rate=moving_rate,
                    ),
                )
            )
            k += 1
    arrivals.sort(key=lambda a: a.time)
    return arrivals
