"""Online schedulers: commit each arrival without seeing the future.

Two policies spanning the latency/cost trade-off:

- :class:`GreedyDispatch` commits each request the moment it arrives: join
  the open session whose *total-cost increase* is smallest (accounting for
  the newcomer's moving cost and the session's price growth), or open a
  new session at the best charger if that is cheaper.  Sessions **depart**
  — close to new members — ``window`` seconds after their first member
  arrived, modelling a pad that will not wait forever.
- :class:`BatchScheduler` buffers arrivals for ``window`` seconds and
  solves each batch with an offline algorithm (CCSA by default).  Higher
  latency, better grouping.

Both produce, at :meth:`~OnlineRun.finish`, a complete schedule over all
arrived devices, evaluated against the clairvoyant offline optimum by the
harness in :mod:`.harness`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core import CCSInstance, Device, Schedule, Session, ccsa
from ..errors import ConfigurationError
from ..mobility import LinearMobility, MobilityModel
from ..wpt import Charger
from .arrivals import Arrival

__all__ = ["OpenSession", "OnlineRun", "GreedyDispatch", "BatchScheduler"]


@dataclass
class OpenSession:
    """A session still accepting members during an online run."""

    charger: int
    opened_at: float
    members: List[Device] = field(default_factory=list)

    def demands(self) -> List[float]:
        """Stored-energy demands of the current members."""
        return [d.demand for d in self.members]


@dataclass
class OnlineRun:
    """Accumulated state of one online scheduling run."""

    chargers: Sequence[Charger]
    mobility: MobilityModel
    open_sessions: List[OpenSession] = field(default_factory=list)
    closed_sessions: List[OpenSession] = field(default_factory=list)
    devices: List[Device] = field(default_factory=list)

    def close_expired(self, now: float, window: float) -> None:
        """Depart every open session older than *window* seconds."""
        still_open = []
        for s in self.open_sessions:
            if now - s.opened_at >= window:
                self.closed_sessions.append(s)
            else:
                still_open.append(s)
        self.open_sessions = still_open

    def finish(self, solver_name: str) -> Tuple[Schedule, CCSInstance]:
        """Close everything and freeze the run into a schedule + instance.

        The instance is built over all arrived devices (in arrival order)
        so the schedule can be costed with the standard offline machinery
        and compared against a clairvoyant solver on the same instance.
        """
        if not self.devices:
            raise ConfigurationError("no arrivals were scheduled")
        self.closed_sessions.extend(self.open_sessions)
        self.open_sessions = []
        instance = CCSInstance(
            devices=list(self.devices),
            chargers=list(self.chargers),
            mobility=self.mobility,
        )
        sessions = [
            Session(
                charger=s.charger,
                members=frozenset(
                    instance.device_index(d.device_id) for d in s.members
                ),
            )
            for s in self.closed_sessions
            if s.members
        ]
        return Schedule(sessions, solver=solver_name), instance


class GreedyDispatch:
    """Immediate-commitment online policy (see module docstring)."""

    name = "online-greedy"

    def __init__(self, window: float = 120.0):
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.window = window

    def run(
        self,
        arrivals: Sequence[Arrival],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
    ) -> Tuple[Schedule, CCSInstance]:
        """Process *arrivals* in order; return the final schedule + instance."""
        mobility = mobility if mobility is not None else LinearMobility()
        state = OnlineRun(chargers=chargers, mobility=mobility)

        for arrival in arrivals:
            state.close_expired(arrival.time, self.window)
            device = arrival.device
            state.devices.append(device)

            best_delta, best_action = None, None
            for session in state.open_sessions:
                charger = chargers[session.charger]
                if not charger.admits(len(session.members) + 1):
                    continue
                old = charger.session_price(session.demands())
                new = charger.session_price(session.demands() + [device.demand])
                delta = (new - old) + mobility.moving_cost(
                    device.position, charger.position, device.moving_rate
                )
                if best_delta is None or delta < best_delta:
                    best_delta, best_action = delta, ("join", session)
            for j, charger in enumerate(chargers):
                delta = charger.session_price([device.demand]) + mobility.moving_cost(
                    device.position, charger.position, device.moving_rate
                )
                if best_delta is None or delta < best_delta:
                    best_delta, best_action = delta, ("open", j)

            kind, target = best_action
            if kind == "join":
                target.members.append(device)
            else:
                state.open_sessions.append(
                    OpenSession(charger=target, opened_at=arrival.time, members=[device])
                )
        return state.finish(self.name)


class BatchScheduler:
    """Windowed batching: buffer arrivals, solve each batch offline."""

    name = "online-batch"

    def __init__(
        self,
        window: float = 120.0,
        solver: Callable[[CCSInstance], Schedule] = ccsa,
    ):
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.window = window
        self.solver = solver

    def run(
        self,
        arrivals: Sequence[Arrival],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
    ) -> Tuple[Schedule, CCSInstance]:
        """Process *arrivals* in windowed batches; return schedule + instance."""
        mobility = mobility if mobility is not None else LinearMobility()
        state = OnlineRun(chargers=chargers, mobility=mobility)

        batch: List[Arrival] = []
        batch_deadline: Optional[float] = None

        def flush() -> None:
            if not batch:
                return
            sub_instance = CCSInstance(
                devices=[a.device for a in batch],
                chargers=list(chargers),
                mobility=mobility,
            )
            sub_schedule = self.solver(sub_instance)
            for session in sub_schedule.sessions:
                state.closed_sessions.append(
                    OpenSession(
                        charger=session.charger,
                        opened_at=batch[0].time,
                        members=[batch[i].device for i in sorted(session.members)],
                    )
                )
            batch.clear()

        for arrival in arrivals:
            if batch_deadline is not None and arrival.time >= batch_deadline:
                flush()
                batch_deadline = None
            if batch_deadline is None:
                batch_deadline = arrival.time + self.window
            batch.append(arrival)
            state.devices.append(arrival.device)
        flush()
        return state.finish(self.name)
