"""Minimum-density subset search for greedy submodular covering.

The CCSA scheduler repeatedly asks: *among the uncovered devices, which
subset has the lowest average cost at this charger?*  Formally, given a
submodular ``f`` with ``f({}) = 0``, find a nonempty ``S`` minimizing the
density ``f(S) / |S|``.

This module solves that fractional program with **Dinkelbach's method**:
the optimal density ``λ*`` is the unique root of
``h(λ) = min_S [ f(S) - λ|S| ]``, and for each ``λ`` the inner problem is a
plain submodular minimization (``f`` minus a modular function), solved by
the Fujishige–Wolfe engine in :mod:`.minimization`.  Each iteration either
proves the incumbent optimal or strictly lowers the incumbent density, so
the method terminates after finitely many SFM calls (in practice 2–5).

An optional cardinality cap supports charger slot capacities; because
cardinality-constrained SFM is NP-hard in general, the cap is enforced by a
greedy peel documented on :func:`densest_subset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

from ..errors import ConvergenceError
from .function import SetFunction
from .minimization import SFMResult, minimize

__all__ = ["DensityResult", "densest_subset"]


@dataclass(frozen=True)
class DensityResult:
    """A nonempty subset and its cost density ``f(subset)/|subset|``."""

    subset: FrozenSet[int]
    density: float
    sfm_calls: int


def _peel_to_capacity(
    f: SetFunction, subset: FrozenSet[int], lam: float, max_size: int
) -> FrozenSet[int]:
    """Greedily remove elements until ``|subset| <= max_size``.

    At each step drops the element whose removal most reduces
    ``f(S) - lam * |S|``; a heuristic repair (the capped problem is NP-hard),
    exact whenever no peeling is needed.
    """
    current = set(subset)
    while len(current) > max_size:
        best_elem, best_val = None, None
        for e in current:
            trial = frozenset(current - {e})
            val = f(trial) - lam * len(trial)
            if best_val is None or val < best_val:
                best_elem, best_val = e, val
        current.remove(best_elem)
    return frozenset(current)


def densest_subset(
    f: SetFunction,
    max_size: Optional[int] = None,
    tol: float = 1e-9,
    max_rounds: int = 100,
    sfm: Callable[[SetFunction], SFMResult] = minimize,
) -> DensityResult:
    """Find a nonempty subset (approximately) minimizing ``f(S)/|S|``.

    Parameters
    ----------
    f:
        Submodular set function with ``f({}) == 0`` and positive values on
        singletons (costs).  Raises ``ValueError`` on an empty ground set —
        there is no nonempty subset to return.
    max_size:
        Optional cardinality cap (charger slot capacity).  Without a cap the
        result is an exact density minimizer (up to *tol*); with a cap,
        over-large SFM solutions are repaired by greedy peeling.
    sfm:
        The submodular minimizer to use for inner problems; injectable so
        tests can substitute the brute-force reference.
    """
    if f.n == 0:
        raise ValueError("densest_subset requires a nonempty ground set")
    if max_size is not None and max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    if abs(f(frozenset())) > tol:
        raise ValueError("densest_subset requires f({}) == 0; normalize the function first")

    # Incumbent: the best singleton (always feasible under any cap).
    best = min(
        (frozenset({e}) for e in f.ground_set),
        key=lambda s: (f(s), tuple(sorted(s))),
    )
    best_density = f(best)
    sfm_calls = 0

    for _ in range(max_rounds):
        shifted = f.shifted_by_modular([best_density] * f.n)
        result = sfm(shifted)
        sfm_calls += 1
        candidate = result.minimizer
        if max_size is not None and len(candidate) > max_size:
            candidate = _peel_to_capacity(f, candidate, best_density, max_size)
        if not candidate:
            return DensityResult(best, best_density, sfm_calls)
        cand_density = f(candidate) / len(candidate)
        if cand_density >= best_density - tol * max(1.0, abs(best_density)):
            return DensityResult(best, best_density, sfm_calls)
        best, best_density = candidate, cand_density
    raise ConvergenceError(
        f"Dinkelbach density search did not converge in {max_rounds} rounds",
        iterations=max_rounds,
    )
