"""Submodular optimization toolkit.

Everything CCSA needs from submodularity theory, implemented from scratch:
set-function abstraction and checks (:mod:`.function`), the Lovász
extension (:mod:`.lovasz`), Fujishige–Wolfe minimum-norm-point SFM
(:mod:`.minimization`), and Dinkelbach minimum-density search
(:mod:`.greedy`).
"""

from .function import (
    SetFunction,
    concave_of_modular,
    is_monotone,
    is_submodular,
    modular,
    powerset,
)
from .greedy import DensityResult, densest_subset
from .lovasz import is_submodular_sampled, lovasz_extension, lovasz_subgradient
from .minimization import SFMResult, greedy_vertex, minimize, minimize_brute_force

__all__ = [
    "SetFunction",
    "modular",
    "concave_of_modular",
    "is_submodular",
    "is_monotone",
    "powerset",
    "SFMResult",
    "greedy_vertex",
    "minimize",
    "minimize_brute_force",
    "lovasz_extension",
    "lovasz_subgradient",
    "is_submodular_sampled",
    "DensityResult",
    "densest_subset",
]
