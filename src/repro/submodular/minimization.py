"""Submodular function minimization (SFM).

Implements the Fujishige–Wolfe minimum-norm-point algorithm from scratch:

1. The **base polytope** ``B(f)`` of a (normalized) submodular function
   admits linear optimization by Edmonds' greedy rule: to minimize
   ``<w, x>`` over ``B(f)``, sort the ground set by increasing ``w`` and
   take marginal gains along that order (:func:`greedy_vertex`).
2. **Wolfe's algorithm** uses that oracle to find the minimum-norm point
   ``x*`` of ``B(f)`` as a convex combination of vertices, alternating
   *major* cycles (add the vertex minimizing ``<x, q>``) and *minor* cycles
   (project onto the affine hull of the current corral, shrinking it when a
   convex coefficient would go negative).
3. Fujishige's theorem recovers the minimizer of ``f`` from ``x*``:
   ``{i : x*_i < 0}`` is the (inclusion-)minimal minimizer and
   ``{i : x*_i <= 0}`` the maximal one; ``min f`` equals the sum of the
   negative components of ``x*``.

Floating point makes the threshold delicate, so :func:`minimize` finishes
with a deterministic local-search polish: it tries both Fujishige sets plus
single-element flips and returns the best set actually *evaluated* — the
returned value is therefore always an exact evaluation of ``f``, with the
norm-point machinery serving only to locate it.

A brute-force reference (:func:`minimize_brute_force`) backs the test
suite's cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConvergenceError
from .function import SetFunction, powerset

__all__ = ["SFMResult", "greedy_vertex", "minimize", "minimize_brute_force"]


@dataclass(frozen=True)
class SFMResult:
    """Outcome of a submodular minimization.

    Attributes
    ----------
    minimizer:
        A set attaining :attr:`value` (ties broken toward smaller sets).
    value:
        ``f(minimizer)`` as evaluated by the set function itself.
    major_cycles:
        Wolfe major-cycle count (0 for trivial/brute-force paths).
    norm_point:
        The minimum-norm point found, or ``None`` for non-Wolfe paths.
    """

    minimizer: FrozenSet[int]
    value: float
    major_cycles: int = 0
    norm_point: Optional[Tuple[float, ...]] = None


def greedy_vertex(f: SetFunction, weights: np.ndarray, f_empty: float = 0.0) -> np.ndarray:
    """Edmonds' greedy rule: the vertex of ``B(f - f_empty)`` minimizing ``<weights, x>``.

    Sorts elements by increasing weight (index as tie-break, making the
    oracle deterministic) and assigns each its marginal gain along that
    prefix order.
    """
    order = np.lexsort((np.arange(f.n), weights))
    vertex = np.empty(f.n, dtype=float)
    prefix: set = set()
    prev = f_empty
    for e in order:
        prefix.add(int(e))
        cur = f(prefix)
        vertex[int(e)] = cur - prev
        prev = cur
    return vertex


def _affine_minimizer(points: np.ndarray) -> np.ndarray:
    """Coefficients of the min-norm point in the affine hull of *points* (rows).

    Solves the KKT system of ``min ||alpha @ points||^2  s.t. sum(alpha)=1``
    by least squares, which stays stable when the corral is nearly affinely
    dependent.
    """
    m = points.shape[0]
    gram = points @ points.T
    kkt = np.zeros((m + 1, m + 1))
    kkt[:m, :m] = gram
    kkt[:m, m] = 1.0
    kkt[m, :m] = 1.0
    rhs = np.zeros(m + 1)
    rhs[m] = 1.0
    sol, *_ = np.linalg.lstsq(kkt, rhs, rcond=None)
    return sol[:m]


def _wolfe_min_norm_point(
    f: SetFunction, f_empty: float, tol: float, max_iter: int
) -> Tuple[np.ndarray, int]:
    """Minimum-norm point of the base polytope of the normalized ``f``."""
    first = greedy_vertex(f, np.zeros(f.n), f_empty)
    corral = [first]
    coeffs = np.array([1.0])
    x = first.copy()
    majors = 0
    prev_norm_sq = float("inf")

    while majors < max_iter:
        majors += 1
        q = greedy_vertex(f, x, f_empty)
        # Optimality: x is the min-norm point iff <x, x> <= <x, q>.  The
        # slack is relative to ||x||^2 — CCS costs are O(1e4), so an
        # absolute tolerance would never fire.
        norm_sq = float(x @ x)
        if norm_sq <= float(x @ q) + tol * max(1.0, norm_sq):
            break
        if norm_sq >= prev_norm_sq * (1.0 - 1e-12):
            break  # no measurable progress: numerically converged
        prev_norm_sq = norm_sq
        if any(np.allclose(q, p, atol=1e-12) for p in corral):
            break  # oracle re-proposed a corral vertex: numerically converged
        corral.append(q)
        coeffs = np.append(coeffs, 0.0)

        # Minor cycles: project onto the affine hull, trimming the corral
        # whenever the projection leaves the convex hull.
        for _ in range(3 * f.n + 10):
            pts = np.array(corral)
            alpha = _affine_minimizer(pts)
            if np.all(alpha > 1e-12):
                coeffs = alpha
                x = alpha @ pts
                break
            # Move from coeffs toward alpha until the first coefficient dies.
            diffs = coeffs - alpha
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(diffs > 1e-15, coeffs / diffs, np.inf)
            theta = min(1.0, float(ratios.min()))
            coeffs = (1.0 - theta) * coeffs + theta * alpha
            coeffs[coeffs < 1e-12] = 0.0
            keep = coeffs > 0.0
            if not keep.any():  # degenerate; restart from the best vertex
                keep[int(np.argmin((pts**2).sum(axis=1)))] = True
            corral = [p for p, k in zip(corral, keep) if k]
            coeffs = coeffs[keep]
            coeffs = coeffs / coeffs.sum()
            x = coeffs @ np.array(corral)
        else:
            raise ConvergenceError(
                "Wolfe minor cycle failed to terminate", iterations=majors
            )
    else:
        raise ConvergenceError(
            f"Wolfe's algorithm exceeded {max_iter} major cycles", iterations=majors
        )
    return x, majors


def _polish(f: SetFunction, candidates: Sequence[FrozenSet[int]]) -> Tuple[FrozenSet[int], float]:
    """Evaluate candidate sets and locally improve the best by 1-element flips.

    Guarantees the returned value is a true evaluation of ``f`` and a local
    minimum under single flips, absorbing any floating-point slack left by
    the norm-point thresholding.
    """
    seen = {frozenset(): f(frozenset())}
    for c in candidates:
        seen.setdefault(c, f(c))
    best = min(seen, key=lambda s: (seen[s], len(s), tuple(sorted(s))))
    improved = True
    while improved:
        improved = False
        for e in f.ground_set:
            trial = best - {e} if e in best else best | {e}
            val = seen.get(trial)
            if val is None:
                val = f(trial)
                seen[trial] = val
            strictly_better = val < seen[best] - 1e-12
            # Exact <= on ties so (value, len) strictly decreases
            # lexicographically and the loop must terminate.
            same_but_smaller = val <= seen[best] and len(trial) < len(best)
            if strictly_better or same_but_smaller:
                best = trial
                improved = True
                break
    return best, seen[best]


def minimize(
    f: SetFunction, tol: float = 1e-7, max_iter: int = 10_000
) -> SFMResult:
    """Minimize the submodular set function *f* over all subsets.

    The function need not be normalized; ``f({})`` is subtracted internally
    and the reported :attr:`SFMResult.value` is in the original scale.
    Raises :class:`~repro.errors.ConvergenceError` if Wolfe's algorithm
    stalls (which for genuinely submodular inputs indicates *tol* is tighter
    than the evaluation noise).
    """
    if f.n == 0:
        return SFMResult(frozenset(), f(frozenset()))
    f_empty = f(frozenset())
    x, majors = _wolfe_min_norm_point(f, f_empty, tol, max_iter)

    thresh = tol * max(1.0, float(np.abs(x).max()))
    minimal = frozenset(int(i) for i in np.flatnonzero(x < -thresh))
    maximal = frozenset(int(i) for i in np.flatnonzero(x <= thresh))
    best, value = _polish(f, [minimal, maximal])
    return SFMResult(best, value, major_cycles=majors, norm_point=tuple(float(v) for v in x))


def minimize_brute_force(f: SetFunction) -> SFMResult:
    """Exhaustive minimizer for cross-checking (ground sets up to ~22)."""
    best: FrozenSet[int] = frozenset()
    best_val = f(best)
    for s in powerset(f.n):
        v = f(s)
        if v < best_val - 1e-15:
            best, best_val = s, v
    return SFMResult(best, best_val)
