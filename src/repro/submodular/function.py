"""Set functions over a finite ground set.

CCSA treats "the cost of serving device subset S at charger j" as a set
function and minimizes it (shifted by a modular term) with general-purpose
machinery.  This module defines the set-function abstraction that machinery
consumes:

- :class:`SetFunction` — a callable over frozensets of ground-set indices,
  with caching, because SFM evaluates the same sets many times;
- algebraic combinators (:meth:`SetFunction.shifted_by_modular`,
  :func:`modular`, :func:`concave_of_modular`) mirroring exactly how the
  CCS group-cost function decomposes;
- exhaustive :func:`is_submodular` / :func:`is_monotone` checkers used by
  the test suite and by randomized verification of model assumptions.

Ground-set elements are the integers ``0..n-1``; higher layers map device
identifiers onto indices before calling in.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, Sequence, Tuple

__all__ = [
    "SetFunction",
    "modular",
    "concave_of_modular",
    "is_submodular",
    "is_monotone",
    "powerset",
]

SetLike = Iterable[int]


class SetFunction:
    """A cached set function ``f: 2^V -> R`` on ground set ``V = {0..n-1}``.

    Wraps an arbitrary callable; every evaluation is memoized on the
    frozenset of elements, which turns the repeated marginal-value queries
    of Wolfe's algorithm and the greedy cover from dominant cost into cache
    hits.
    """

    def __init__(self, n: int, fn: Callable[[FrozenSet[int]], float], name: str = "f"):
        if n < 0:
            raise ValueError(f"ground set size must be nonnegative, got {n}")
        self.n = n
        self.name = name
        self._fn = fn
        self._cache: Dict[FrozenSet[int], float] = {}

    @property
    def ground_set(self) -> Tuple[int, ...]:
        """The ground set as a tuple ``(0, ..., n-1)``."""
        return tuple(range(self.n))

    def __call__(self, subset: SetLike) -> float:
        key = frozenset(subset)
        if not key <= set(self.ground_set):
            bad = sorted(key - set(self.ground_set))
            raise ValueError(f"elements {bad} outside ground set of size {self.n}")
        value = self._cache.get(key)
        if value is None:
            value = float(self._fn(key))
            self._cache[key] = value
        return value

    def marginal(self, element: int, subset: SetLike) -> float:
        """Marginal value ``f(S + e) - f(S)``; *element* must not be in *subset*."""
        base = frozenset(subset)
        if element in base:
            raise ValueError(f"element {element} already in subset")
        return self(base | {element}) - self(base)

    def shifted_by_modular(self, weights: Sequence[float], name: str = None) -> "SetFunction":
        """Return ``g(S) = f(S) - sum_{i in S} weights[i]``.

        Subtracting a modular function preserves submodularity; this is the
        transformation the Dinkelbach density search applies at every
        lambda step.
        """
        if len(weights) != self.n:
            raise ValueError(
                f"need one weight per ground element ({self.n}), got {len(weights)}"
            )
        w = [float(x) for x in weights]

        def g(subset: FrozenSet[int]) -> float:
            return self(subset) - sum(w[i] for i in subset)

        return SetFunction(self.n, g, name=name or f"{self.name}-modular")

    def restricted_to(self, elements: Sequence[int]) -> "SetFunction":
        """Return *f* restricted to a sub-ground-set.

        The restriction is re-indexed to ``0..len(elements)-1``; element *k*
        of the restriction corresponds to ``elements[k]`` of the original.
        Restriction preserves submodularity, so CCSA can minimize over only
        the still-uncovered devices.
        """
        mapping = list(dict.fromkeys(elements))  # dedupe, preserve order
        if any(e not in set(self.ground_set) for e in mapping):
            raise ValueError("restriction elements must lie in the ground set")

        def g(subset: FrozenSet[int]) -> float:
            return self(frozenset(mapping[k] for k in subset))

        return SetFunction(len(mapping), g, name=f"{self.name}|restricted")

    def cache_size(self) -> int:
        """Number of memoized evaluations (used by performance tests)."""
        return len(self._cache)


def modular(weights: Sequence[float], name: str = "modular") -> SetFunction:
    """The modular function ``f(S) = sum_{i in S} weights[i]``."""
    w = [float(x) for x in weights]

    def fn(subset: FrozenSet[int]) -> float:
        return sum(w[i] for i in subset)

    return SetFunction(len(w), fn, name=name)


def concave_of_modular(
    weights: Sequence[float],
    concave: Callable[[float], float],
    name: str = "concave-of-modular",
) -> SetFunction:
    """``f(S) = g(sum_{i in S} weights[i])`` for concave nondecreasing *g*.

    With nonnegative weights this is the textbook submodular family — and
    precisely the volume-charge part of a CCS group cost.  Concavity of *g*
    is the caller's responsibility (checked empirically by
    :func:`repro.wpt.pricing.is_concave_nondecreasing` for tariffs).
    """
    w = [float(x) for x in weights]
    if any(x < 0 for x in w):
        raise ValueError("concave_of_modular requires nonnegative weights")

    def fn(subset: FrozenSet[int]) -> float:
        return float(concave(sum(w[i] for i in subset)))

    return SetFunction(len(w), fn, name=name)


def powerset(n: int) -> Iterable[FrozenSet[int]]:
    """All ``2**n`` subsets of ``{0..n-1}``, smallest first.

    Only for tests and exhaustive checks; guards against accidental use on
    large ground sets.
    """
    if n > 22:
        raise ValueError(f"refusing to enumerate 2**{n} subsets")
    elements = range(n)
    for r in range(n + 1):
        for combo in itertools.combinations(elements, r):
            yield frozenset(combo)


def is_submodular(f: SetFunction, tol: float = 1e-9) -> bool:
    """Exhaustively verify the diminishing-returns inequality.

    Checks ``f(S + e) - f(S) >= f(T + e) - f(T)`` for all ``S ⊆ T`` and
    ``e ∉ T`` via the equivalent pairwise condition
    ``f(S ∪ {a}) + f(S ∪ {b}) >= f(S ∪ {a,b}) + f(S)``.  Exponential — test
    use only.
    """
    for s in powerset(f.n):
        rest = [e for e in f.ground_set if e not in s]
        for idx, a in enumerate(rest):
            for b in rest[idx + 1 :]:
                lhs = f(s | {a}) + f(s | {b})
                rhs = f(s | {a, b}) + f(s)
                if lhs < rhs - tol * max(1.0, abs(lhs), abs(rhs)):
                    return False
    return True


def is_monotone(f: SetFunction, tol: float = 1e-9) -> bool:
    """Exhaustively verify ``f(S) <= f(S + e)`` everywhere.  Test use only."""
    for s in powerset(f.n):
        for e in f.ground_set:
            if e not in s and f.marginal(e, s) < -tol:
                return False
    return True
