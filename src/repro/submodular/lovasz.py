"""The Lovász extension of a set function.

The Lovász extension ``f^L : [0,1]^n -> R`` is the unique extension that is
convex exactly when ``f`` is submodular.  We use it two ways:

- as a *randomized submodularity certificate*: convexity of ``f^L`` along
  random segments is checked by property tests far faster than exhaustive
  pair checks allow;
- as the continuous relaxation backing the norm-point view of SFM (the
  greedy vertex of :mod:`.minimization` is precisely a subgradient here).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..rng import RandomState, ensure_rng
from .function import SetFunction

__all__ = ["lovasz_extension", "lovasz_subgradient", "is_submodular_sampled"]


def _check_point(f: SetFunction, x: Sequence[float]) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.shape != (f.n,):
        raise ValueError(f"point must have shape ({f.n},), got {arr.shape}")
    return arr


def lovasz_extension(f: SetFunction, x: Sequence[float]) -> float:
    """Evaluate the Lovász extension of *f* at *x*.

    Uses the Choquet-integral form: sort coordinates decreasingly
    ``x_{(1)} >= ... >= x_{(n)}`` and accumulate
    ``sum_k (x_{(k)} - x_{(k+1)}) * f(top-k prefix)`` with ``x_{(n+1)} = 0``
    plus the normalization term ``f({})``.  Agrees with ``f`` on 0/1
    vectors.
    """
    arr = _check_point(f, x)
    if f.n == 0:
        return f(frozenset())
    order = np.argsort(-arr, kind="stable")
    value = f(frozenset())
    prefix: set = set()
    prev_f = value
    total = 0.0
    for idx in order:
        prefix.add(int(idx))
        cur_f = f(prefix)
        total += (cur_f - prev_f) * arr[int(idx)]
        prev_f = cur_f
    return value + total


def lovasz_subgradient(f: SetFunction, x: Sequence[float]) -> np.ndarray:
    """A subgradient of the Lovász extension at *x* (Edmonds' greedy vector).

    Component ``i`` is the marginal gain of ``i`` along the decreasing-order
    prefix chain of *x*.  For submodular ``f`` this vector lies in the base
    polytope and supports ``f^L`` from below.
    """
    arr = _check_point(f, x)
    grad = np.empty(f.n, dtype=float)
    order = np.argsort(-arr, kind="stable")
    prefix: set = set()
    prev = f(frozenset())
    for idx in order:
        prefix.add(int(idx))
        cur = f(prefix)
        grad[int(idx)] = cur - prev
        prev = cur
    return grad


def is_submodular_sampled(
    f: SetFunction,
    trials: int = 200,
    rng: RandomState = None,
    tol: float = 1e-8,
) -> bool:
    """Randomized submodularity check via midpoint convexity of ``f^L``.

    Samples pairs of points in ``[0,1]^n`` and verifies
    ``f^L((x+y)/2) <= (f^L(x) + f^L(y))/2 + tol``.  A single violation
    certifies non-submodularity; passing all trials is strong (not certain)
    evidence of submodularity at a cost linear in *trials* — unlike the
    exhaustive checker in :mod:`.function`.
    """
    gen = ensure_rng(rng)
    if f.n == 0:
        return True
    for _ in range(trials):
        x = gen.uniform(0.0, 1.0, size=f.n)
        y = gen.uniform(0.0, 1.0, size=f.n)
        mid = lovasz_extension(f, (x + y) / 2.0)
        avg = 0.5 * (lovasz_extension(f, x) + lovasz_extension(f, y))
        if mid > avg + tol * max(1.0, abs(avg)):
            return False
    return True
