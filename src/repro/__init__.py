"""repro — Cooperative Charging as Service (ICDCS 2021) reproduction.

A production-grade implementation of the paper's cooperative charging
service model for mobile wireless rechargeable sensor networks:

- the **CCS problem** (joint charging-cost + moving-cost minimization)
  with concave charging tariffs and slot-capacitated chargers;
- two **intragroup cost-sharing schemes** (egalitarian, proportional) plus
  a Shapley-value extension;
- **CCSA**, the greedy + submodular-function-minimization approximation
  algorithm (Fujishige–Wolfe SFM implemented from scratch);
- **CCSGA**, the coalition-formation-game algorithm with guaranteed
  convergence to a pure Nash equilibrium;
- exact optimal solvers, a noncooperation baseline, a discrete-event
  testbed simulator reproducing the paper's 5-charger / 8-node field
  experiment, and a benchmark harness regenerating every evaluation
  table and figure.

Quickstart::

    from repro import quick_instance, ccsa, noncooperation, comprehensive_cost

    inst = quick_instance(n_devices=20, n_chargers=4, seed=7)
    coop = ccsa(inst)
    solo = noncooperation(inst)
    print(comprehensive_cost(coop, inst), comprehensive_cost(solo, inst))
"""

from .core import (
    CCSGAResult,
    CCSInstance,
    Device,
    EgalitarianSharing,
    ProportionalSharing,
    Schedule,
    Session,
    ShapleySharing,
    ccsa,
    ccsga,
    comprehensive_cost,
    demand_greedy,
    member_costs,
    nearest_charger,
    noncooperation,
    optimal_bell,
    optimal_schedule,
    random_grouping,
    validate_schedule,
)
from .errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleError,
    ReproError,
    ScheduleValidationError,
    SimulationError,
)
from .geometry import Field, Point
from .wpt import Charger, LinearTariff, PiecewiseConcaveTariff, PowerLawTariff
from .workloads import quick_instance

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # problem
    "Device",
    "Charger",
    "CCSInstance",
    "Point",
    "Field",
    "LinearTariff",
    "PowerLawTariff",
    "PiecewiseConcaveTariff",
    # solutions
    "Session",
    "Schedule",
    "comprehensive_cost",
    "validate_schedule",
    "member_costs",
    # sharing schemes
    "EgalitarianSharing",
    "ProportionalSharing",
    "ShapleySharing",
    # solvers
    "ccsa",
    "ccsga",
    "CCSGAResult",
    "optimal_schedule",
    "optimal_bell",
    "noncooperation",
    "nearest_charger",
    "random_grouping",
    "demand_greedy",
    # workloads
    "quick_instance",
    # errors
    "ReproError",
    "ConfigurationError",
    "InfeasibleError",
    "ScheduleValidationError",
    "ConvergenceError",
    "SimulationError",
]
