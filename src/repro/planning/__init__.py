"""Deployment planning (extension): choosing charger locations."""

from .placement import (
    PlacementResult,
    candidate_sites,
    greedy_placement,
    kmeans_placement,
    random_placement,
)

__all__ = [
    "PlacementResult",
    "candidate_sites",
    "greedy_placement",
    "kmeans_placement",
    "random_placement",
]
