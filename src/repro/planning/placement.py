"""Charger placement: where should an operator install its pads?

The paper takes charger locations as given; an operator rolling out the
service must *choose* them.  Placement interacts with cooperation — a pad
serving a device cluster amortizes its sessions across the whole cluster —
so the right objective is the scheduled comprehensive cost, not raw
distance.  This module provides:

- :func:`candidate_sites` — a grid of admissible pad locations;
- :func:`greedy_placement` — iteratively add the site whose addition most
  reduces the *scheduled* cost (CCSGA response by default); the classic
  greedy for facility location, here with a cooperative objective;
- :func:`kmeans_placement` — geometry-only baseline (Lloyd's algorithm on
  device positions, from scratch);
- :func:`random_placement` — sanity baseline.

All functions return charger lists ready to drop into a
:class:`~repro.core.instance.CCSInstance`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core import CCSInstance, Device, Schedule, ccsga, comprehensive_cost
from ..errors import ConfigurationError
from ..geometry import Field, Point, grid_deployment
from ..rng import RandomState, ensure_rng
from ..wpt import Charger

__all__ = [
    "PlacementResult",
    "candidate_sites",
    "greedy_placement",
    "kmeans_placement",
    "random_placement",
]

#: Evaluates a deployment: devices + chargers in, scheduled cost out.
Evaluator = Callable[[CCSInstance], float]


def _default_evaluator(instance: CCSInstance) -> float:
    return comprehensive_cost(ccsga(instance, certify=False).schedule, instance)


@dataclass(frozen=True)
class PlacementResult:
    """Chosen pads plus the cost trajectory of the greedy additions."""

    chargers: tuple
    cost_trajectory: tuple

    @property
    def final_cost(self) -> float:
        """Scheduled comprehensive cost with the full placement."""
        return self.cost_trajectory[-1]


def candidate_sites(field: Field, grid_side: int = 6) -> List[Point]:
    """A ``grid_side**2`` lattice of admissible pad locations over *field*."""
    if grid_side < 1:
        raise ConfigurationError(f"grid_side must be >= 1, got {grid_side}")
    return grid_deployment(field, grid_side * grid_side)


def _materialize(prototype: Charger, position: Point, index: int) -> Charger:
    return dataclasses.replace(
        prototype, charger_id=f"site{index:03d}", position=position
    )


def greedy_placement(
    devices: Sequence[Device],
    sites: Sequence[Point],
    k: int,
    prototype: Charger,
    evaluator: Optional[Evaluator] = None,
) -> PlacementResult:
    """Greedily pick *k* of *sites*, minimizing scheduled cost at each step.

    Every candidate extension is evaluated by scheduling the devices
    against the tentative pad set — expensive but faithful: a pad's value
    depends on the coalitions it enables, which geometry alone cannot see.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > len(sites):
        raise ConfigurationError(f"cannot place {k} pads on {len(sites)} sites")
    evaluate = evaluator if evaluator is not None else _default_evaluator

    chosen: List[Point] = []
    remaining = list(sites)
    trajectory: List[float] = []
    for _ in range(k):
        best_site, best_cost = None, None
        for site in remaining:
            chargers = [
                _materialize(prototype, p, i) for i, p in enumerate(chosen + [site])
            ]
            cost = evaluate(CCSInstance(devices=list(devices), chargers=chargers))
            if best_cost is None or cost < best_cost:
                best_site, best_cost = site, cost
        chosen.append(best_site)
        remaining.remove(best_site)
        trajectory.append(best_cost)

    chargers = tuple(_materialize(prototype, p, i) for i, p in enumerate(chosen))
    return PlacementResult(chargers=chargers, cost_trajectory=tuple(trajectory))


def kmeans_placement(
    devices: Sequence[Device],
    k: int,
    prototype: Charger,
    max_iter: int = 100,
    rng: RandomState = 0,
) -> List[Charger]:
    """Lloyd's k-means on device positions — the geometry-only baseline.

    Initializes centers on random devices, iterates assign/update until
    stable; empty clusters are reseeded on the farthest device.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > len(devices):
        raise ConfigurationError(f"cannot place {k} pads for {len(devices)} devices")
    gen = ensure_rng(rng)
    points = np.array([(d.position.x, d.position.y) for d in devices])
    centers = points[gen.choice(len(points), size=k, replace=False)].astype(float)

    for _ in range(max_iter):
        dists = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = dists.argmin(axis=1)
        new_centers = centers.copy()
        for c in range(k):
            members = points[labels == c]
            if len(members):
                new_centers[c] = members.mean(axis=0)
            else:
                new_centers[c] = points[dists.min(axis=1).argmax()]
        if np.allclose(new_centers, centers):
            break
        centers = new_centers

    return [
        _materialize(prototype, Point(float(x), float(y)), i)
        for i, (x, y) in enumerate(centers)
    ]


def random_placement(
    field: Field,
    k: int,
    prototype: Charger,
    rng: RandomState = 0,
) -> List[Charger]:
    """*k* pads uniformly at random — the sanity baseline."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    from ..geometry import uniform_deployment

    positions = uniform_deployment(field, k, ensure_rng(rng))
    return [_materialize(prototype, p, i) for i, p in enumerate(positions)]
