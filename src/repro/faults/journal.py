"""A service journal whose appends fail on cue.

:class:`FaultyJournal` is a :class:`~repro.service.journal.Journal` with a
``fail_at`` map of ``{record seq: mode}``.  When the kernel appends the
record carrying a scheduled seq, the write fails in one of two ways:

``"enospc"``
    Raises ``OSError(ENOSPC)`` from ``_write`` *before* any bytes land.
    This exercises the clean failure path: ``Journal.append`` truncates
    back to the captured offset and surfaces a typed
    :class:`~repro.errors.JournalWriteError`; the journal on disk stays a
    valid prefix and ``seq`` is not consumed.

``"torn"``
    Writes roughly half the record's bytes, flushes them to disk, then
    raises :class:`~repro.errors.InjectedFaultError` — which is *not* an
    ``OSError``, so the append's truncate-and-retype cleanup never runs.
    This simulates ``kill -9`` / power loss mid-write: the process "dies"
    with a garbage tail on disk, and recovery must find the longest valid
    prefix (:meth:`Journal.read_records`) and replay past it.

The ``fail_at`` dict is consumed in place (fired entries are popped), so a
recovery driver can hand the *same* dict to each successive journal
instance: faults already fired stay fired, faults not yet reached stay
armed.  Record numbering is stable across recovery because replay is
byte-identical.  Fired faults are logged in :attr:`fired` as
``(seq, mode)`` for assertions.

``sync`` defaults to ``False`` here — chaos tests measure logic, not disk
latency, and an fsync per record makes the hypothesis suite crawl.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import InjectedFaultError
from ..service.journal import Journal

__all__ = ["FaultyJournal"]


class FaultyJournal(Journal):
    """A journal that fails scheduled appends (see module docstring)."""

    def __init__(
        self,
        path: Union[str, Path],
        truncate: bool = True,
        sync: bool = False,
        fail_at: Optional[Dict[int, str]] = None,
    ) -> None:
        super().__init__(path, truncate=truncate, sync=sync)
        #: ``{seq: "enospc" | "torn"}`` — shared and consumed in place.
        self.fail_at: Dict[int, str] = fail_at if fail_at is not None else {}
        #: Faults that actually fired, as ``(seq, mode)``.
        self.fired: List[Tuple[int, str]] = []

    def _write(self, line: str) -> None:
        mode = self.fail_at.pop(self.seq, None)
        if mode is None:
            super()._write(line)
            return
        self.fired.append((self.seq, mode))
        if mode == "enospc":
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), str(self.path))
        # torn: half the record reaches disk, then the "process dies".
        assert self._fh is not None
        self._fh.write(line[: max(1, len(line) // 2)])
        self._fh.flush()
        raise InjectedFaultError(
            f"journal {self.path}: torn write injected at seq={self.seq}"
        )
