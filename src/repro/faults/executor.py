"""A parallel executor whose workers die on schedule.

:class:`FaultyExecutor` wraps *any* task list: the fault plan names task
indices (``FaultPlan.worker_crashes() -> {index: count}``), and the
executor's submission hook routes those tasks through a wrapper that
``os._exit(23)``\\ s the worker on its first *count* attempts — after
which the task runs normally.  Unlike the chaos task kinds in
:mod:`repro.faults.tasks`, this injects crashes *underneath* real
experiment tasks, so the retry/rebuild machinery is exercised against the
actual workloads.

Attempt counting must survive the dead worker, so it lives in counter
files under ``marker_dir`` keyed by task fingerprint.  Attempts of one
task are serialized (never in flight twice), so plain read-modify-write
is race-free per key.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, Optional

from ..experiments.exec.executors import ParallelExecutor
from ..experiments.exec.task import Task, execute_task

__all__ = ["FaultyExecutor"]


def _execute_with_crashes(task: Task, marker_dir: str, crashes: int) -> Any:
    """Worker-side wrapper: die on the first *crashes* attempts, then run.

    Module-level so it pickles to worker processes under any start
    method.  ``os._exit`` skips all cleanup — the parent observes exactly
    what a segfault or OOM-kill produces: a dead worker and a broken
    pool.
    """
    path = os.path.join(marker_dir, f"attempts-{task.fingerprint}")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            n = int(fh.read().strip() or 0)
    except FileNotFoundError:
        n = 0
    n += 1
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(str(n))
    if n <= crashes:
        os._exit(23)
    return execute_task(task)


class FaultyExecutor(ParallelExecutor):
    """A :class:`ParallelExecutor` with scheduled worker crashes.

    Parameters are those of :class:`ParallelExecutor` plus:

    crashes:
        ``{task index: crash count}`` — the worker executing that task
        dies on its first *count* attempts (then the task succeeds, if
        its retry budget allows that many re-submissions).
    marker_dir:
        Directory for the cross-attempt counter files.  Required when
        *crashes* is non-empty.
    """

    def __init__(
        self,
        jobs: int,
        crashes: Optional[Dict[int, int]] = None,
        marker_dir: Optional[str] = None,
        **kwargs: Any,
    ):
        super().__init__(jobs, **kwargs)
        self.crashes: Dict[int, int] = dict(crashes or {})
        if self.crashes and marker_dir is None:
            raise ValueError("FaultyExecutor with crashes requires marker_dir")
        self.marker_dir = marker_dir

    def _submit(self, pool: ProcessPoolExecutor, task: Task, index: int) -> Future:
        count = self.crashes.get(index, 0)
        if count > 0:
            assert self.marker_dir is not None
            return pool.submit(_execute_with_crashes, task, self.marker_dir, count)
        return super()._submit(pool, task, index)
