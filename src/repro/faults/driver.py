"""Feed a request stream *and* a fault plan into a charging service.

:func:`merge_timeline` interleaves submissions with kernel fault events
into one deterministic, time-sorted timeline (submissions first at equal
times, so a same-instant ``no_show`` cancellation finds its request).
:func:`drive` feeds a timeline into an existing service —
the fault-free path, and the in-memory chaos path.

:func:`drive_with_recovery` is the full crash loop: the service journals
through a :class:`~repro.faults.journal.FaultyJournal`, and whenever an
injected write failure "kills the daemon"
(:class:`~repro.errors.JournalWriteError` for a clean ``ENOSPC``,
:class:`~repro.errors.InjectedFaultError` for a torn mid-record write),
the dead service object is abandoned,
:meth:`~repro.service.kernel.ChargingService.recover` rebuilds a fresh
one from the longest valid journal prefix, and the *entire* timeline is
re-fed from the start — every kernel input is idempotent (known request
ids, applied fault keys), so the re-feed no-ops through everything
already journaled and continues from the crash point.  The surviving
``fail_at`` dict is shared across journal instances, so multi-fault plans
arm correctly: fired faults stay fired, later faults stay armed (record
numbering is stable because recovery is byte-identical).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import InjectedFaultError, JournalWriteError, ServiceError
from ..service.kernel import ChargingService, ServiceConfig
from ..service.request import ChargingRequest
from .journal import FaultyJournal
from .plan import FaultEvent, FaultPlan

__all__ = ["apply_event", "drive", "drive_with_recovery", "merge_timeline"]

#: One timeline item: ``("submit", t, ChargingRequest)`` or
#: ``("fault", t, FaultEvent)``.
TimelineItem = Tuple[str, float, Any]


def merge_timeline(
    requests: Sequence[ChargingRequest], plan: FaultPlan
) -> List[TimelineItem]:
    """Interleave submissions and kernel fault events, time-sorted.

    At equal times submissions come first (priority 0 vs 1), then kind,
    then id — a total, deterministic order.  Journal and worker faults
    are not timeline items; they key on seq / task index, not time.
    """
    items: List[Tuple[Tuple[float, int, str, str], TimelineItem]] = []
    for req in requests:
        key = (float(req.submitted_at), 0, "submit", req.request_id)
        items.append((key, ("submit", float(req.submitted_at), req)))
    for event in plan.kernel_events():
        key = (float(event.t), 1, event.kind, event.target)
        items.append((key, ("fault", float(event.t), event)))
    items.sort(key=lambda pair: pair[0])
    return [item for _key, item in items]


def apply_event(service: ChargingService, item: TimelineItem) -> None:
    """Apply one timeline item to *service*."""
    tag, t, payload = item
    if tag == "submit":
        service.submit(payload)
        return
    event: FaultEvent = payload
    if event.kind == "charger_down":
        service.fail_charger(event.target, at=t)
    elif event.kind == "charger_up":
        service.restore_charger(event.target, at=t)
    elif event.kind == "cancel":
        service.cancel(event.target, at=t, reason=event.reason or "cancelled")
    elif event.kind == "no_show":
        service.cancel(event.target, at=t, reason=event.reason or "no-show")
    else:  # pragma: no cover - merge_timeline filters to kernel kinds
        raise ServiceError(f"not a kernel fault kind: {event.kind!r}")


def drive(
    service: ChargingService,
    requests: Sequence[ChargingRequest],
    plan: Optional[FaultPlan] = None,
    drain: bool = True,
    advance_to: Optional[float] = None,
) -> ChargingService:
    """Feed *requests* interleaved with *plan*'s kernel faults; no crashes.

    ``advance_to`` optionally drives the clock past the last event before
    the drain (the ``ccs-serve --duration`` knob).  Journal/worker faults
    in the plan are ignored here — use :func:`drive_with_recovery`
    (journal) or :class:`~repro.faults.executor.FaultyExecutor` (workers).
    """
    for item in merge_timeline(requests, plan if plan is not None else FaultPlan()):
        apply_event(service, item)
    if advance_to is not None:
        service.advance(advance_to)
    if drain:
        service.drain()
    return service


def drive_with_recovery(
    journal_path: Union[str, Path],
    chargers: Sequence[Any],
    requests: Sequence[ChargingRequest],
    plan: FaultPlan,
    mobility: Optional[Any] = None,
    scheme: Optional[Any] = None,
    config: Optional[ServiceConfig] = None,
    drain: bool = True,
    advance_to: Optional[float] = None,
) -> Tuple[ChargingService, Dict[str, Any]]:
    """Run the full crash → recover → re-feed loop (module docstring).

    Returns ``(service, stats)`` where *stats* counts the injected
    crashes and successful recoveries and lists the fired journal faults
    as ``(seq, mode)``.

    A fault can fire *during recovery* too: replay re-derives past the
    crash point (the input that was mid-derivation when the daemon died
    is itself in the journal prefix), so a later armed seq can be reached
    while replaying — exactly like a disk that keeps failing while the
    daemon restarts.  Recovery is simply retried; each crash consumes one
    armed fault, so the loop is bounded by the plan.
    """
    fail_at = plan.journal_faults()  # shared; FaultyJournal pops fired entries
    budget = len(fail_at)  # every crash fires (and disarms) exactly one fault
    timeline = merge_timeline(requests, plan)
    journals: List[FaultyJournal] = []
    stats: Dict[str, Any] = {"crashes": 0, "recoveries": 0}

    def factory(path: Union[str, Path]) -> FaultyJournal:
        journal = FaultyJournal(path, truncate=True, sync=False, fail_at=fail_at)
        journals.append(journal)
        return journal

    def crashed() -> None:
        stats["crashes"] += 1
        if stats["crashes"] > budget:
            raise ServiceError(
                f"fault plan still crashing after {budget} armed faults; "
                "a journal fault seq is being re-armed or re-hit"
            )
        journals[-1].close()

    service = ChargingService(
        chargers, mobility=mobility, scheme=scheme, config=config,
        journal=factory(journal_path),
    )
    while True:
        try:
            for item in timeline:
                apply_event(service, item)
            if advance_to is not None:
                service.advance(advance_to)
            if drain:
                service.drain()
            break
        except (InjectedFaultError, JournalWriteError):
            # The "daemon" is dead: abandon its in-memory state entirely
            # and rebuild from the longest valid journal prefix, retrying
            # if the disk fails again mid-replay.
            crashed()
            while True:
                try:
                    service = ChargingService.recover(
                        journal_path, chargers, mobility=mobility,
                        scheme=scheme, config=config, journal_factory=factory,
                    )
                    stats["recoveries"] += 1
                    break
                except (InjectedFaultError, JournalWriteError):
                    crashed()
    stats["journal_faults_fired"] = sorted(
        entry for journal in journals for entry in journal.fired
    )
    stats["journal_faults_unfired"] = sorted(fail_at.items())
    return service, stats
