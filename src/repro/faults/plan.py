"""The fault model: what breaks, and exactly when.

A :class:`FaultPlan` is an immutable, sorted schedule of
:class:`FaultEvent`\\ s.  Plans are either authored explicitly (tests
pinning one scenario), loaded from JSON (``ccs-serve --fault-plan
plan.json``), or *generated* from a seed
(:meth:`FaultPlan.generate`, ``--fault-plan seed:N``) — generation draws
every coin through :func:`repro.rng.derive_seed` spawn keys, so the same
seed over the same request stream yields the same chaos on every machine,
with no wall-clock or global-RNG dependence (CCS001/CCS002 stay clean).

Event kinds:

======================  ================================================
``charger_down``        charger *target* fails at ``t`` (kernel input)
``charger_up``          charger *target* recovers at ``t`` (kernel input)
``cancel``              request *target* withdraws at ``t`` (kernel input)
``no_show``             request *target* never arrives; cancelled at its
                        own submission time (kernel input)
``journal_write``       the journal append writing record seq *target*
                        fails; ``mode`` picks a clean ``enospc`` error or
                        a ``torn`` mid-record crash
``worker_crash``        executor task index *target* dies (``os._exit``)
                        on its first ``count`` attempts
``shard_kill``          shard *target* (id as str) is killed at ``t`` and
                        immediately recovered from its journal; ``mode``
                        ``"torn"`` first damages the journal tail
``snapshot_corrupt``    shard *target*'s newest state snapshot file is
                        garbled at ``t`` — recovery must detect the
                        checksum failure and fall back (older snapshot,
                        then full replay), never trust it
``crash_in_snapshot``   shard *target* "dies mid-snapshot-write" at
                        ``t``: a half-written ``*.tmp`` sibling is left
                        next to the journal and the shard is killed;
                        recovery must ignore the litter
``recovery_crash``      shard *target*'s *recovery itself* crashes on its
                        first ``count`` attempts (the replay journal's
                        writes fail); ``mode`` picks ``enospc``/``torn``
                        — the supervisor's crash-loop backoff/escalation
                        path
======================  ================================================

Kernel events land at logical-clock times; journal faults key on the
record sequence number (stable across recovery, because recovery is
byte-identical); worker crashes key on the task index; shard kills key
on the shard id and are consumed by
:func:`repro.shard.driver.drive_sharded`.

:meth:`FaultPlan.generate` draws from *shared* per-kind streams, so the
set of entities present changes every draw — fine for single-kernel
chaos, wrong for shard-stability tests.  :meth:`FaultPlan.generate_keyed`
instead keys each draw by entity id (``derive_seed(seed, "outage", cid)``,
``derive_seed(seed, "cancel", rid)``), making each entity's fate a pure
function of ``(seed, entity)`` — stable under any subsetting, including
spatial sharding.  :meth:`FaultPlan.generate_shard_kills` does the same
per shard via ``derive_seed(seed, "shard", shard_id)``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..rng import derive_seed, ensure_rng

__all__ = ["FAULT_KINDS", "SUPERVISOR_KINDS", "FaultEvent", "FaultPlan"]

FAULT_KINDS = (
    "charger_down",
    "charger_up",
    "cancel",
    "no_show",
    "journal_write",
    "worker_crash",
    "shard_kill",
    "snapshot_corrupt",
    "crash_in_snapshot",
    "recovery_crash",
)

#: Kinds the *supervised* sharded chaos driver consumes as timeline
#: items (``recovery_crash`` is armed per shard instead — it keys on
#: recovery attempts, not on a time).
SUPERVISOR_KINDS = frozenset(
    {"shard_kill", "snapshot_corrupt", "crash_in_snapshot"}
)

#: Kinds the service kernel consumes as input events.
KERNEL_KINDS = frozenset({"charger_down", "charger_up", "cancel", "no_show"})

#: Namespace constants for seed derivation (arbitrary, fixed forever).
_NS_OUTAGE = 101
_NS_CANCEL = 102
_NS_JOURNAL = 103
_NS_WORKER = 104


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (see module docstring for the kinds).

    ``target`` is a charger id, request id, journal record seq (as str),
    or task index (as str) depending on ``kind``.  ``mode`` is only
    meaningful for ``journal_write`` (``"enospc"`` / ``"torn"``);
    ``count`` only for ``worker_crash`` (crashes before succeeding) and
    ``cancel``/``no_show`` carry an optional human ``reason``.
    """

    t: float
    kind: str
    target: str
    mode: Optional[str] = None
    count: int = 1
    reason: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not (math.isfinite(self.t) and self.t >= 0.0):
            raise ConfigurationError(
                f"fault time must be finite and nonnegative, got {self.t}"
            )
        if self.kind == "journal_write" and self.mode not in ("enospc", "torn"):
            raise ConfigurationError(
                f"journal_write mode must be 'enospc' or 'torn', got {self.mode!r}"
            )
        if self.kind == "shard_kill" and self.mode not in (None, "torn"):
            raise ConfigurationError(
                f"shard_kill mode must be None (clean) or 'torn', got {self.mode!r}"
            )
        if self.kind == "recovery_crash" and self.mode not in (None, "enospc", "torn"):
            raise ConfigurationError(
                f"recovery_crash mode must be None, 'enospc', or 'torn', "
                f"got {self.mode!r}"
            )
        if self.kind in ("snapshot_corrupt", "crash_in_snapshot") and self.mode is not None:
            raise ConfigurationError(
                f"{self.kind} takes no mode, got {self.mode!r}"
            )
        if self.count < 1:
            raise ConfigurationError(f"fault count must be >= 1, got {self.count}")

    def sort_key(self) -> Tuple[float, str, str]:
        return (self.t, self.kind, self.target)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "t": float(self.t),
            "kind": self.kind,
            "target": self.target,
        }
        if self.mode is not None:
            doc["mode"] = self.mode
        if self.count != 1:
            doc["count"] = int(self.count)
        if self.reason is not None:
            doc["reason"] = self.reason
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultEvent":
        return cls(
            t=float(doc["t"]),
            kind=doc["kind"],
            target=str(doc["target"]),
            mode=doc.get("mode"),
            count=int(doc.get("count", 1)),
            reason=doc.get("reason"),
        )


class FaultPlan:
    """An immutable, time-sorted schedule of faults."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=FaultEvent.sort_key)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds: Dict[str, int] = {}
        for e in self.events:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        return f"FaultPlan({len(self.events)} events: {kinds})"

    # ------------------------------------------------------------------ #
    # views by consumer

    def kernel_events(self) -> List[FaultEvent]:
        """Events the service kernel consumes, in time order."""
        return [e for e in self.events if e.kind in KERNEL_KINDS]

    def journal_faults(self) -> Dict[int, str]:
        """``{record seq: mode}`` for :class:`~repro.faults.journal.FaultyJournal`."""
        return {
            int(e.target): str(e.mode)
            for e in self.events
            if e.kind == "journal_write"
        }

    def worker_crashes(self) -> Dict[int, int]:
        """``{task index: crash count}`` for :class:`~repro.faults.executor.FaultyExecutor`."""
        return {
            int(e.target): int(e.count)
            for e in self.events
            if e.kind == "worker_crash"
        }

    def shard_kills(self) -> List[FaultEvent]:
        """``shard_kill`` events in time order, for the sharded chaos driver."""
        return [e for e in self.events if e.kind == "shard_kill"]

    def supervisor_events(self) -> List[FaultEvent]:
        """Timeline events the supervised driver consumes
        (``shard_kill`` / ``snapshot_corrupt`` / ``crash_in_snapshot``),
        in time order."""
        return [e for e in self.events if e.kind in SUPERVISOR_KINDS]

    def recovery_crashes(self) -> Dict[int, Dict[int, str]]:
        """``{shard id: {seq: mode}}`` arming per-shard *recovery* crashes.

        A ``recovery_crash`` event with ``count=N`` arms replay-journal
        write failures at record seqs ``1..N``: each recovery attempt of
        that shard pops exactly one armed seq (earlier seqs were consumed
        by earlier attempts), so the shard's recovery fails N times and
        then succeeds — the crash-loop shape the supervisor's backoff and
        escalation are built against.  Mode defaults to ``"enospc"``.
        """
        armed: Dict[int, Dict[int, str]] = {}
        for e in self.events:
            if e.kind != "recovery_crash":
                continue
            per = armed.setdefault(int(e.target), {})
            start = max(per) if per else 0
            for k in range(start + 1, start + int(e.count) + 1):
                per[k] = e.mode or "enospc"
        return armed

    # ------------------------------------------------------------------ #
    # (de)serialization

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultPlan":
        return cls([FaultEvent.from_dict(e) for e in doc.get("events", [])])

    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------------ #
    # seeded generation

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        charger_ids: Sequence[str] = (),
        requests: Sequence[Any] = (),
        horizon: Optional[float] = None,
        outage_prob: float = 0.5,
        mean_outage: float = 300.0,
        cancel_prob: float = 0.1,
        no_show_prob: float = 0.05,
        cancel_window: float = 240.0,
        journal_faults: int = 1,
        journal_records: Optional[int] = None,
        n_tasks: int = 0,
        worker_crash_prob: float = 0.3,
        max_worker_crashes: int = 2,
    ) -> "FaultPlan":
        """Draw a random plan, reproducibly, from *seed*.

        *requests* are :class:`~repro.service.request.ChargingRequest`
        objects (only ``request_id`` / ``submitted_at`` are read).  Each
        charger suffers an outage with ``outage_prob``, lasting an
        exponential ``mean_outage`` seconds; each request cancels with
        ``cancel_prob`` (some time into its wait) or never shows with
        ``no_show_prob``.  ``journal_faults`` append failures land on
        record seqs in ``[1, journal_records)`` (estimated from the
        stream when not given), alternating clean/torn modes.  With
        ``n_tasks`` > 0, executor task indices crash with
        ``worker_crash_prob``, up to ``max_worker_crashes`` times each.

        At least one charger is always left standing: a plan that takes
        the whole field down only tests the trivial all-rejected path.
        """
        events: List[FaultEvent] = []
        if horizon is None:
            last = max((float(r.submitted_at) for r in requests), default=0.0)
            horizon = last + 600.0

        rng = ensure_rng(derive_seed(int(seed), _NS_OUTAGE))
        downed = 0
        for cid in charger_ids:
            if downed >= max(0, len(charger_ids) - 1):
                break
            if rng.random() < outage_prob:
                t_down = float(rng.uniform(0.0, horizon))
                duration = float(rng.exponential(mean_outage))
                events.append(FaultEvent(t=t_down, kind="charger_down", target=cid))
                events.append(
                    FaultEvent(t=t_down + duration, kind="charger_up", target=cid)
                )
                downed += 1

        rng = ensure_rng(derive_seed(int(seed), _NS_CANCEL))
        for req in requests:
            u = rng.random()
            delay = float(rng.uniform(0.0, cancel_window))
            if u < cancel_prob:
                events.append(
                    FaultEvent(
                        t=float(req.submitted_at) + delay,
                        kind="cancel",
                        target=req.request_id,
                        reason="cancelled",
                    )
                )
            elif u < cancel_prob + no_show_prob:
                events.append(
                    FaultEvent(
                        t=float(req.submitted_at),
                        kind="no_show",
                        target=req.request_id,
                        reason="no-show",
                    )
                )

        if journal_faults > 0:
            if journal_records is None:
                journal_records = 6 * max(1, len(requests)) + 2
            rng = ensure_rng(derive_seed(int(seed), _NS_JOURNAL))
            hi = max(2, int(journal_records))
            seqs = sorted(
                int(s) for s in rng.choice(
                    range(1, hi), size=min(journal_faults, hi - 1), replace=False
                )
            )
            for i, s in enumerate(seqs):
                events.append(
                    FaultEvent(
                        t=0.0,
                        kind="journal_write",
                        target=str(s),
                        mode="enospc" if i % 2 == 0 else "torn",
                    )
                )

        if n_tasks > 0:
            rng = ensure_rng(derive_seed(int(seed), _NS_WORKER))
            for k in range(n_tasks):
                if rng.random() < worker_crash_prob:
                    events.append(
                        FaultEvent(
                            t=0.0,
                            kind="worker_crash",
                            target=str(k),
                            count=int(rng.integers(1, max_worker_crashes + 1)),
                        )
                    )

        return cls(events)

    @classmethod
    def generate_keyed(
        cls,
        seed: int,
        *,
        charger_ids: Sequence[str] = (),
        requests: Sequence[Any] = (),
        horizon: Optional[float] = None,
        outage_prob: float = 0.5,
        mean_outage: float = 300.0,
        cancel_prob: float = 0.1,
        no_show_prob: float = 0.05,
        cancel_window: float = 240.0,
    ) -> "FaultPlan":
        """Draw a plan whose every coin is keyed by the entity it affects.

        Charger *cid*'s outage comes from ``derive_seed(seed, "outage",
        cid)`` and request *rid*'s cancel/no-show from ``derive_seed(seed,
        "cancel", rid)``, so each entity's fate is a pure function of
        ``(seed, entity id)`` — independent of which *other* entities are
        in the lists or in what order.  Restricting the plan to any subset
        of chargers/requests (e.g. those a spatial shard owns) therefore
        yields exactly the faults :meth:`generate_keyed` would have drawn
        for that subset alone; the 2→4 shard-stability regression test is
        built on this.

        The price of per-entity independence is that no cross-entity
        guarantee is possible: unlike :meth:`generate`, nothing stops
        every charger from drawing an outage, so callers pick
        ``outage_prob`` (or the charger layout) to keep the field alive.
        Journal and worker faults are positional, not entity-keyed, and
        deliberately absent here.
        """
        events: List[FaultEvent] = []
        if horizon is None:
            last = max((float(r.submitted_at) for r in requests), default=0.0)
            horizon = last + 600.0

        for cid in charger_ids:
            rng = ensure_rng(derive_seed(int(seed), "outage", cid))
            if rng.random() < outage_prob:
                t_down = float(rng.uniform(0.0, horizon))
                duration = float(rng.exponential(mean_outage))
                events.append(FaultEvent(t=t_down, kind="charger_down", target=cid))
                events.append(
                    FaultEvent(t=t_down + duration, kind="charger_up", target=cid)
                )

        for req in requests:
            rng = ensure_rng(derive_seed(int(seed), "cancel", req.request_id))
            u = rng.random()
            delay = float(rng.uniform(0.0, cancel_window))
            if u < cancel_prob:
                events.append(
                    FaultEvent(
                        t=float(req.submitted_at) + delay,
                        kind="cancel",
                        target=req.request_id,
                        reason="cancelled",
                    )
                )
            elif u < cancel_prob + no_show_prob:
                events.append(
                    FaultEvent(
                        t=float(req.submitted_at),
                        kind="no_show",
                        target=req.request_id,
                        reason="no-show",
                    )
                )

        return cls(events)

    @classmethod
    def generate_shard_kills(
        cls,
        seed: int,
        n_shards: int,
        horizon: float,
        *,
        kill_prob: float = 0.5,
        torn_prob: float = 0.5,
    ) -> "FaultPlan":
        """Draw ``shard_kill`` events, one coin per shard.

        Shard *s* draws from ``derive_seed(seed, "shard", s)``: with
        ``kill_prob`` it is killed once at a uniform time in ``[0,
        horizon)``, torn (journal tail damaged) with ``torn_prob``,
        cleanly otherwise.  Because each shard's draw is keyed by its id,
        changing ``n_shards`` never reshuffles the fate of the shards
        that exist under both counts.
        """
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if not (math.isfinite(horizon) and horizon > 0.0):
            raise ConfigurationError(
                f"horizon must be finite and positive, got {horizon}"
            )
        events: List[FaultEvent] = []
        for sid in range(n_shards):
            rng = ensure_rng(derive_seed(int(seed), "shard", sid))
            if rng.random() < kill_prob:
                events.append(
                    FaultEvent(
                        t=float(rng.uniform(0.0, horizon)),
                        kind="shard_kill",
                        target=str(sid),
                        mode="torn" if rng.random() < torn_prob else None,
                    )
                )
        return cls(events)

    @classmethod
    def generate_supervised(
        cls,
        seed: int,
        n_shards: int,
        horizon: float,
        *,
        kill_prob: float = 0.5,
        torn_prob: float = 0.5,
        snapshot_corrupt_prob: float = 0.3,
        snapshot_crash_prob: float = 0.2,
        recovery_crash_prob: float = 0.3,
        max_recovery_crashes: int = 2,
    ) -> "FaultPlan":
        """Draw the self-healing chaos mix, one keyed stream per shard.

        Extends :meth:`generate_shard_kills` with the snapshot/recovery
        fault categories: each shard independently draws a kill (torn or
        clean), a snapshot corruption shortly before it, a
        crash-during-snapshot-write, and up to ``max_recovery_crashes``
        crashes of its recovery replay.  Every coin comes from
        ``derive_seed(seed, "supervised", shard)``, so the plan for shard
        *s* is a pure function of ``(seed, s)`` — stable under any shard
        count.
        """
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if not (math.isfinite(horizon) and horizon > 0.0):
            raise ConfigurationError(
                f"horizon must be finite and positive, got {horizon}"
            )
        events: List[FaultEvent] = []
        for sid in range(n_shards):
            rng = ensure_rng(derive_seed(int(seed), "supervised", sid))
            if rng.random() < kill_prob:
                t_kill = float(rng.uniform(horizon * 0.25, horizon))
                events.append(
                    FaultEvent(
                        t=t_kill,
                        kind="shard_kill",
                        target=str(sid),
                        mode="torn" if rng.random() < torn_prob else None,
                    )
                )
                if rng.random() < snapshot_corrupt_prob:
                    events.append(
                        FaultEvent(
                            t=float(rng.uniform(0.0, t_kill)),
                            kind="snapshot_corrupt",
                            target=str(sid),
                        )
                    )
                if rng.random() < recovery_crash_prob:
                    events.append(
                        FaultEvent(
                            t=0.0,
                            kind="recovery_crash",
                            target=str(sid),
                            count=int(rng.integers(1, max_recovery_crashes + 1)),
                            mode="enospc" if rng.random() < 0.5 else "torn",
                        )
                    )
            if rng.random() < snapshot_crash_prob:
                events.append(
                    FaultEvent(
                        t=float(rng.uniform(0.0, horizon)),
                        kind="crash_in_snapshot",
                        target=str(sid),
                    )
                )
        return cls(events)
