"""Chaos task kinds for exercising the executors.

These kinds are *module-qualified* (``"repro.faults.tasks:<name>"``) so a
worker started with the ``spawn`` method — which inherits no registry from
the parent — can resolve them: :func:`~repro.experiments.exec.task.execute_task`
imports the module part of a qualified kind on first miss.

All three are deterministic functions of ``(params, seed, trial)`` except
where a *marker directory* deliberately carries cross-attempt state: a
crash-until-retried task must know how many times it already died, and the
only channel that survives ``os._exit`` is the filesystem.
"""

from __future__ import annotations

import os
import time
from typing import Any, Mapping

from ..rng import derive_seed
from ..experiments.exec.task import task_kind

__all__ = ["crash_counter_path"]


def crash_counter_path(marker_dir: str, key: str) -> str:
    """Path of the attempt-counter file for one crashy task."""
    return os.path.join(marker_dir, f"attempts-{key}")


def _bump_attempts(marker_dir: str, key: str) -> int:
    """Record one more attempt for *key*; returns the new attempt count.

    A plain read-increment-write is enough: attempts of the *same* task
    are serialized (a task is never in flight twice), so there is no
    concurrent writer for a given key.
    """
    path = crash_counter_path(marker_dir, key)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            n = int(fh.read().strip() or 0)
    except FileNotFoundError:
        n = 0
    n += 1
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(str(n))
    return n


@task_kind("repro.faults.tasks:echo")
def _echo(params: Mapping[str, Any], seed: int, trial: int) -> Any:
    """A trivially deterministic task: hash of the inputs."""
    return {"value": derive_seed(seed, trial) % 100003, "trial": trial}


@task_kind("repro.faults.tasks:raise")
def _raise(params: Mapping[str, Any], seed: int, trial: int) -> Any:
    """Fail with an ordinary exception on the first N attempts.

    ``params["fail_attempts"]`` attempts raise ``ValueError``; attempt
    N+1 succeeds.  With no ``marker_dir`` the task always raises.
    """
    marker_dir = params.get("marker_dir")
    limit = int(params.get("fail_attempts", 1))
    if marker_dir is not None:
        n = _bump_attempts(marker_dir, f"raise-{seed}-{trial}")
        if n > limit:
            return {"value": trial, "attempts": n}
    raise ValueError(f"injected task failure (trial={trial})")


@task_kind("repro.faults.tasks:crash")
def _crash(params: Mapping[str, Any], seed: int, trial: int) -> Any:
    """Kill the worker process outright on the first N attempts.

    ``os._exit`` skips every ``finally``/atexit — the parent sees a dead
    worker and a :class:`BrokenProcessPool`, exactly like a segfault or
    an OOM-kill.  Requires ``params["marker_dir"]`` so later attempts can
    tell they already died.
    """
    marker_dir = params["marker_dir"]
    limit = int(params.get("crash_attempts", 1))
    n = _bump_attempts(marker_dir, f"crash-{seed}-{trial}")
    if n <= limit:
        os._exit(23)
    return {"value": trial, "attempts": n}


@task_kind("repro.faults.tasks:hang")
def _hang(params: Mapping[str, Any], seed: int, trial: int) -> Any:
    """Sleep far past any reasonable deadline on the first N attempts.

    Used to exercise ``task_timeout``: the parent terminates the stuck
    worker, and the retry (attempt N+1) returns promptly.
    """
    marker_dir = params.get("marker_dir")
    limit = int(params.get("hang_attempts", 1))
    if marker_dir is not None:
        n = _bump_attempts(marker_dir, f"hang-{seed}-{trial}")
        if n > limit:
            return {"value": trial, "attempts": n}
    time.sleep(float(params.get("hang_seconds", 3600.0)))
    return {"value": trial, "attempts": 0}  # pragma: no cover - killed first
