"""repro.faults — deterministic fault injection for the charging service.

The paper's model silently assumes chargers stay up and every coalition
member shows up and pays its share; this package drops that assumption.
It supplies a seed-derived fault *model* and the *injection* layer that
lands each fault at a precise logical-clock time, so the failure
semantics in :mod:`repro.service` and :mod:`repro.experiments.exec` can
be exercised — and their invariants asserted — under chaos that is fully
reproducible from a single integer seed.

Layout:

- :mod:`.plan` — :class:`FaultEvent` / :class:`FaultPlan`: the schedule
  of charger outages/recoveries, cancellations, no-shows, journal write
  failures, worker crashes, shard kills, snapshot corruption, crashes
  mid-snapshot-write, and crash-looping recoveries.  Built on
  :func:`repro.rng.derive_seed`; never wall-clock or global RNG.
- :mod:`.journal` — :class:`FaultyJournal`: a service journal whose
  appends fail on cue (clean ``ENOSPC`` or a torn mid-record write).
- :mod:`.executor` — :class:`FaultyExecutor`: a parallel executor whose
  workers die (``os._exit``) on scheduled attempts.
- :mod:`.tasks` — module-qualified chaos task kinds for spawned workers.
- :mod:`.driver` — feed a request stream *and* a fault plan into a
  :class:`~repro.service.kernel.ChargingService`, including the
  crash → recover → re-feed loop the chaos suite asserts byte-identity
  over.

See ``docs/FAULTS.md`` for the fault model and the failure-semantics
state diagram.
"""

from .driver import apply_event, drive, drive_with_recovery, merge_timeline
from .executor import FaultyExecutor
from .journal import FaultyJournal
from .plan import FAULT_KINDS, SUPERVISOR_KINDS, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "SUPERVISOR_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultyJournal",
    "FaultyExecutor",
    "apply_event",
    "drive",
    "drive_with_recovery",
    "merge_timeline",
]
