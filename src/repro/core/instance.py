"""The Cooperative Charging Scheduling (CCS) problem instance.

A :class:`CCSInstance` bundles everything a scheduler needs: the devices
asking for energy, the chargers selling it, the mobility model pricing the
trips, and precomputed device-to-charger moving costs.  All solvers
(:mod:`.ccsa`, :mod:`.ccsga`, :mod:`.optimal`, :mod:`.baselines`) consume
instances through this one type, so experiments can swap algorithms without
touching workload code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..geometry import Field
from ..numeric import is_exact_zero
from ..mobility import LinearMobility, MobilityModel
from ..wpt import Charger, ChargerPriceTable, is_concave_nondecreasing
from .device import Device

__all__ = ["CCSInstance"]


@dataclass
class CCSInstance:
    """One round of the cooperative charging scheduling problem.

    Construction validates identifier uniqueness and (in strict mode) that
    every tariff is concave — the property all submodularity-based
    guarantees rest on.  Instances are immutable in spirit: solvers never
    mutate them, and the precomputed matrices are private caches.

    Parameters
    ----------
    devices / chargers:
        The market participants.  Both lists must be nonempty with unique
        identifiers.
    mobility:
        Moving-cost and travel-time model; defaults to the paper's linear
        cost-per-meter model.
    field:
        Optional deployment field (used by the simulator and for
        reporting); scheduling itself only needs positions.
    strict:
        When true (default), verify each charger's tariff is concave and
        nondecreasing over the instance's total-demand range and that total
        slot capacity can hold all devices.
    """

    devices: Sequence[Device]
    chargers: Sequence[Charger]
    mobility: MobilityModel = field(default_factory=LinearMobility)
    field_area: Optional[Field] = None
    strict: bool = True

    def __post_init__(self) -> None:
        self.devices = tuple(self.devices)
        self.chargers = tuple(self.chargers)
        if not self.devices:
            raise ConfigurationError("an instance needs at least one device")
        if not self.chargers:
            raise ConfigurationError("an instance needs at least one charger")

        device_ids = [d.device_id for d in self.devices]
        if len(set(device_ids)) != len(device_ids):
            raise ConfigurationError("device identifiers must be unique")
        charger_ids = [c.charger_id for c in self.chargers]
        if len(set(charger_ids)) != len(charger_ids):
            raise ConfigurationError("charger identifiers must be unique")

        self._device_index: Dict[str, int] = {d: k for k, d in enumerate(device_ids)}
        self._charger_index: Dict[str, int] = {c: k for k, c in enumerate(charger_ids)}

        # One geometric source of truth: the device x charger Euclidean
        # distance matrix, built per-pair with math.hypot so each entry is
        # bitwise equal to ``Point.distance_to`` (the vectorized sqrt-of-
        # squares form rounds ~0.6% of entries differently).  Moving costs
        # are derived from it wherever the mobility model can price a whole
        # matrix (``moving_cost_matrix`` hook); models without the hook keep
        # the per-pair fallback.  Row = device, column = charger.
        charger_pos = [(c.position.x, c.position.y) for c in self.chargers]
        self._distance = np.array(
            [
                [math.hypot(d.position.x - cx, d.position.y - cy) for cx, cy in charger_pos]
                for d in self.devices
            ],
            dtype=float,
        )
        matrix_hook = getattr(self.mobility, "moving_cost_matrix", None)
        if matrix_hook is not None:
            rates = np.array([d.moving_rate for d in self.devices], dtype=float)
            self._moving_cost = np.asarray(
                matrix_hook(self._distance, rates), dtype=float
            )
        else:
            self._moving_cost = np.array(
                [
                    [
                        self.mobility.moving_cost(d.position, c.position, d.moving_rate)
                        for c in self.chargers
                    ]
                    for d in self.devices
                ],
                dtype=float,
            )

        # Per-device demand caches: the numpy vector feeds vectorized scans,
        # the plain list feeds Python-loop summation on the solver hot path
        # (kept separate so summation order matches the historical
        # ``sum(d.demand for ...)`` evaluation exactly).
        self._demand_list: List[float] = [float(d.demand) for d in self.devices]
        self._demands = np.array(self._demand_list, dtype=float)
        self._singleton_price: Optional[np.ndarray] = None
        self._singleton_cost: Optional[np.ndarray] = None
        self._price_table: Optional[ChargerPriceTable] = None

        if self.strict:
            self._validate_strict()

    # ------------------------------------------------------------------ #
    # validation

    def _validate_strict(self) -> None:
        total_demand = sum(d.demand for d in self.devices)
        for charger in self.chargers:
            e_max = max(total_demand / charger.efficiency, 1e-9)
            if not is_concave_nondecreasing(charger.tariff, e_max):
                raise ConfigurationError(
                    f"charger {charger.charger_id!r}: tariff is not concave "
                    "nondecreasing over the instance demand range; CCSA's "
                    "submodularity guarantee would not hold (pass strict=False "
                    "to accept heuristically)"
                )
        capacities = [c.capacity for c in self.chargers]
        if all(cap is not None for cap in capacities):
            # With finite capacities a charger can still host several
            # sessions, so feasibility only requires a positive capacity
            # somewhere — already enforced by Charger. Nothing more to check.
            pass

    # ------------------------------------------------------------------ #
    # sizes and lookups

    @property
    def n_devices(self) -> int:
        """Number of devices in the instance."""
        return len(self.devices)

    @property
    def n_chargers(self) -> int:
        """Number of chargers in the instance."""
        return len(self.chargers)

    def device_index(self, device_id: str) -> int:
        """Index of the device with identifier *device_id*."""
        try:
            return self._device_index[device_id]
        except KeyError:
            raise KeyError(f"unknown device {device_id!r}") from None

    def charger_index(self, charger_id: str) -> int:
        """Index of the charger with identifier *charger_id*."""
        try:
            return self._charger_index[charger_id]
        except KeyError:
            raise KeyError(f"unknown charger {charger_id!r}") from None

    # ------------------------------------------------------------------ #
    # cost primitives — everything downstream composes these three

    def moving_cost(self, device: int, charger: int) -> float:
        """Monetary moving cost of device index *device* to charger index *charger*."""
        return float(self._moving_cost[device, charger])

    def distance(self, device: int, charger: int) -> float:
        """Euclidean distance in meters between device and charger indices."""
        return float(self._distance[device, charger])

    @property
    def demands(self) -> np.ndarray:
        """Read-only per-device demand vector (index-aligned with :attr:`devices`)."""
        return self._demands

    def charging_price_for_demand(self, total_demand: float, charger: int) -> float:
        """Session price at *charger* for an already-summed stored demand.

        The incremental-evaluation fast path: one tariff call on a cached
        scalar instead of re-iterating a member list.  Agrees with
        :meth:`charging_price` up to floating-point summation order.
        """
        if is_exact_zero(total_demand):
            return 0.0
        return self.chargers[charger].price_for_stored(total_demand)

    def price_table(self) -> ChargerPriceTable:
        """Lazily built vectorized tariff table over this instance's chargers."""
        if self._price_table is None:
            self._price_table = ChargerPriceTable(self.chargers)
        return self._price_table

    def price_for_demand_vector(
        self, totals: np.ndarray, chargers_idx: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`charging_price_for_demand` (bitwise identical).

        ``out[k]`` is the session price of summed demand ``totals[k]`` at
        charger ``chargers_idx[k]`` — the array engine's one-call pricing
        of a whole candidate scan.
        """
        return self.price_table().prices(totals, chargers_idx)

    def singleton_price_matrix(self) -> np.ndarray:
        """``(n_devices, n_chargers)`` matrix of singleton session prices.

        Entry ``[i, j]`` is the price device *i* pays charging alone at
        charger *j*.  Built lazily on first use — one vectorized tariff
        evaluation per charger (bitwise equal to the per-cell scalar
        evaluation) — and cached; CCSGA's candidate scans read it every
        sweep.
        """
        if self._singleton_price is None:
            self._singleton_price = self.price_table().singleton_price_matrix(
                self._demands
            )
        return self._singleton_price

    def singleton_cost_matrix(self) -> np.ndarray:
        """``(n_devices, n_chargers)`` matrix of full singleton group costs.

        ``singleton_price_matrix() + moving costs`` — the cost of device
        *i* founding a fresh singleton session at charger *j*.
        """
        if self._singleton_cost is None:
            self._singleton_cost = self.singleton_price_matrix() + self._moving_cost
        return self._singleton_cost

    def charging_price(self, group: Iterable[int], charger: int) -> float:
        """Session price when device-index *group* shares one session at *charger*.

        Zero for an empty group (no session happens).
        """
        members = list(group)
        ch = self.chargers[charger]
        return ch.session_price(self.devices[i].demand for i in members)

    def group_cost(self, group: Iterable[int], charger: int) -> float:
        """Full cost of one session: session price plus members' moving costs.

        This is the submodular block cost ``f_j(S)`` at the heart of the CCS
        objective.
        """
        members = list(group)
        if not members:
            return 0.0
        price = self.charging_price(members, charger)
        move = float(self._moving_cost[members, charger].sum())
        return price + move

    def standalone_cost(self, device: int) -> float:
        """Best cost the device achieves alone — its noncooperative fallback."""
        return min(self.group_cost([device], j) for j in range(self.n_chargers))

    def total_demand(self, group: Iterable[int]) -> float:
        """Sum of stored-energy demands over device indices in *group*."""
        return sum(self.devices[i].demand for i in group)

    # ------------------------------------------------------------------ #
    # convenience

    def capacity_of(self, charger: int) -> Optional[int]:
        """Slot capacity of charger index *charger* (``None`` = unbounded)."""
        return self.chargers[charger].capacity

    def describe(self) -> str:
        """One-line human-readable summary for logs and reports."""
        caps = {c.capacity for c in self.chargers}
        if caps == {None}:
            cap_txt = "unbounded"
        else:
            finite = sorted(c for c in caps if c is not None)
            labels = [str(c) for c in finite] + (["unbounded"] if None in caps else [])
            cap_txt = f"capacities [{', '.join(labels)}]"
        return (
            f"CCSInstance({self.n_devices} devices, {self.n_chargers} chargers, "
            f"{cap_txt}, mobility={type(self.mobility).__name__})"
        )
