"""Rechargeable devices — the buyers in the charging-service market."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..geometry import Point

__all__ = ["Device"]


@dataclass(frozen=True)
class Device:
    """One mobile rechargeable sensor node requesting charging service.

    Parameters
    ----------
    device_id:
        Stable identifier, unique within an instance.
    position:
        Current location; the start of the trip to whichever charger the
        scheduler assigns.
    demand:
        Energy the device wants stored in its battery this round, in joules.
        Must be positive — zero-demand devices simply do not enter the
        instance.
    moving_rate:
        Monetary cost the device assigns to each meter of travel.  This is a
        *valuation*, not physics: it folds together locomotion energy price,
        wear, and mission downtime, and is how the paper trades charging
        cost against moving cost in one objective.
    speed:
        Travel speed in m/s; used by the testbed simulator for timing (the
        static CCS objective does not depend on it).
    """

    device_id: str
    position: Point
    demand: float
    moving_rate: float = 0.05
    speed: float = 1.0

    def __post_init__(self) -> None:
        if not self.device_id:
            raise ConfigurationError("device_id must be a nonempty string")
        if self.demand <= 0:
            raise ConfigurationError(
                f"device {self.device_id!r}: demand must be positive, got {self.demand}"
            )
        if self.moving_rate < 0:
            raise ConfigurationError(
                f"device {self.device_id!r}: moving_rate must be nonnegative, "
                f"got {self.moving_rate}"
            )
        if self.speed <= 0:
            raise ConfigurationError(
                f"device {self.device_id!r}: speed must be positive, got {self.speed}"
            )
