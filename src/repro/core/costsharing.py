"""Intragroup cost-sharing schemes.

Cooperation only survives if members agree on how to split the session
bill.  The paper proposes two intragroup schemes; we implement both plus a
Shapley-value extension:

- :class:`EgalitarianSharing` (ECS): every member pays an equal share of
  the session price;
- :class:`ProportionalSharing` (PCS): members pay in proportion to their
  energy demands;
- :class:`ShapleySharing`: each member pays its Shapley value of the
  session-price cooperative game (exact for small groups, Monte-Carlo
  beyond), the fairness gold standard used here as an ablation.

All schemes split only the *charging* price; moving costs are inherently
individual.  Every scheme is **budget-balanced** by construction (shares
sum to the session price), which tests verify property-style, and under
the concave tariffs of :mod:`repro.wpt.pricing` they are *cross-monotone*
for demand-homogeneous groups — joining a bigger coalition never hurts —
which is the cooperation-sustaining property the paper highlights.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..errors import ConfigurationError
from ..rng import ensure_rng
from .instance import CCSInstance
from .schedule import Schedule

__all__ = [
    "CostSharingScheme",
    "EgalitarianSharing",
    "ProportionalSharing",
    "ShapleySharing",
    "MarginalCostSharing",
    "member_costs",
    "individual_cost",
    "share_from_aggregates",
]


@runtime_checkable
class CostSharingScheme(Protocol):
    """Splits one session's charging price among its members."""

    name: str

    def shares(
        self, instance: CCSInstance, members: Sequence[int], charger: int
    ) -> Dict[int, float]:
        """Map each device index in *members* to its share of the session price."""
        ...


def _session_price(instance: CCSInstance, members: Sequence[int], charger: int) -> float:
    if not members:
        raise ValueError("cannot share the price of an empty session")
    if len(set(members)) != len(members):
        raise ValueError("session members must be distinct")
    return instance.charging_price(members, charger)


@dataclass(frozen=True)
class EgalitarianSharing:
    """Equal split: each member pays ``price / |G|``.

    The simplest scheme and the one that most strongly rewards forming
    large groups; its weakness — light users subsidizing heavy ones — is
    what :class:`ProportionalSharing` fixes.
    """

    name: str = "egalitarian"

    def shares(
        self, instance: CCSInstance, members: Sequence[int], charger: int
    ) -> Dict[int, float]:
        price = _session_price(instance, members, charger)
        per_head = price / len(members)
        return {i: per_head for i in members}

    def share_of(
        self,
        instance: CCSInstance,
        device: int,
        size: int,
        total_demand: float,
        price: float,
    ) -> float:
        """O(1) share from cached session aggregates (see module docs)."""
        return price / size

    def share_of_vector(
        self,
        instance: CCSInstance,
        device: int,
        sizes: "np.ndarray",
        total_demands: "np.ndarray",
        prices: "np.ndarray",
    ) -> "np.ndarray":
        """Vectorized :meth:`share_of` over candidate-session aggregates.

        Elementwise bitwise-identical to the scalar fast path — the array
        engine prices a whole candidate scan with one call.
        """
        return prices / sizes


@dataclass(frozen=True)
class ProportionalSharing:
    """Demand-proportional split: member *i* pays ``price * d_i / D(G)``.

    Demands are strictly positive (enforced by :class:`~repro.core.device.Device`),
    so the denominator never vanishes.
    """

    name: str = "proportional"

    def shares(
        self, instance: CCSInstance, members: Sequence[int], charger: int
    ) -> Dict[int, float]:
        price = _session_price(instance, members, charger)
        total = instance.total_demand(members)
        return {
            i: price * instance.devices[i].demand / total for i in members
        }

    def share_of(
        self,
        instance: CCSInstance,
        device: int,
        size: int,
        total_demand: float,
        price: float,
    ) -> float:
        """O(1) share from cached session aggregates (see module docs)."""
        return price * instance.devices[device].demand / total_demand

    def share_of_vector(
        self,
        instance: CCSInstance,
        device: int,
        sizes: "np.ndarray",
        total_demands: "np.ndarray",
        prices: "np.ndarray",
    ) -> "np.ndarray":
        """Vectorized :meth:`share_of` over candidate-session aggregates.

        Same multiply-then-divide order as the scalar fast path, so each
        element is bitwise identical to it.
        """
        return prices * instance.devices[device].demand / total_demands


@dataclass(frozen=True)
class ShapleySharing:
    """Shapley-value split of the session-price game ``v(S) = price_j(S)``.

    Exact (all permutations) for groups up to :attr:`exact_limit` members;
    Monte-Carlo over :attr:`samples` random permutations beyond, with a
    final renormalization so budget balance holds exactly even under
    sampling.  Deterministic for a fixed :attr:`seed`.
    """

    exact_limit: int = 8
    samples: int = 2000
    seed: int = 0
    name: str = "shapley"

    def __post_init__(self) -> None:
        if self.exact_limit < 1:
            raise ConfigurationError(f"exact_limit must be >= 1, got {self.exact_limit}")
        if self.samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {self.samples}")

    def shares(
        self, instance: CCSInstance, members: Sequence[int], charger: int
    ) -> Dict[int, float]:
        price = _session_price(instance, members, charger)
        ordered = sorted(members)
        if len(ordered) == 1:
            return {ordered[0]: price}
        if len(ordered) <= self.exact_limit:
            raw = self._exact(instance, ordered, charger)
        else:
            raw = self._sampled(instance, ordered, charger)
        # Renormalize so shares sum to the price exactly (budget balance).
        total = sum(raw.values())
        if total <= 0:
            # Degenerate (free session); fall back to equal split of zero.
            return {i: price / len(ordered) for i in ordered}
        return {i: price * v / total for i, v in raw.items()}

    def _exact(
        self, instance: CCSInstance, ordered: List[int], charger: int
    ) -> Dict[int, float]:
        totals = {i: 0.0 for i in ordered}
        count = 0
        for perm in itertools.permutations(ordered):
            prefix: List[int] = []
            prev = 0.0
            for i in perm:
                prefix.append(i)
                cur = instance.charging_price(prefix, charger)
                totals[i] += cur - prev
                prev = cur
            count += 1
        return {i: v / count for i, v in totals.items()}

    def _sampled(
        self, instance: CCSInstance, ordered: List[int], charger: int
    ) -> Dict[int, float]:
        rng = ensure_rng(self.seed)
        totals = {i: 0.0 for i in ordered}
        arr = np.array(ordered)
        for _ in range(self.samples):
            perm = rng.permutation(arr)
            prefix: List[int] = []
            prev = 0.0
            for i in perm:
                prefix.append(int(i))
                cur = instance.charging_price(prefix, charger)
                totals[int(i)] += cur - prev
                prev = cur
        return {i: v / self.samples for i, v in totals.items()}


@dataclass(frozen=True)
class MarginalCostSharing:
    """Marginal-cost pricing: member *i* pays ``v(G) − v(G \\ {i})``.

    A deliberately *imperfect* scheme included for the economics ablation:
    with a submodular session price the marginals sum to **less** than the
    price (``deficit(G) >= 0``), so the charger under-recovers — the
    classic budget-balance failure of marginal-cost pricing under
    economies of scale.  :meth:`deficit` quantifies the shortfall; when
    ``rebalance=True`` the shortfall is spread equally so the scheme
    satisfies the :class:`CostSharingScheme` budget-balance contract and
    can drive CCSGA.
    """

    rebalance: bool = True
    name: str = "marginal"

    def shares(
        self, instance: CCSInstance, members: Sequence[int], charger: int
    ) -> Dict[int, float]:
        price = _session_price(instance, members, charger)
        members = sorted(members)
        raw = {
            i: price
            - instance.charging_price([k for k in members if k != i], charger)
            for i in members
        }
        if not self.rebalance:
            return raw
        shortfall = price - sum(raw.values())
        per_head = shortfall / len(members)
        return {i: v + per_head for i, v in raw.items()}

    def deficit(
        self, instance: CCSInstance, members: Sequence[int], charger: int
    ) -> float:
        """How much pure marginal pricing under-recovers on this session.

        Nonnegative whenever the tariff is subadditive (always, given the
        base fee); zero only for singleton sessions.
        """
        members = sorted(set(members))
        price = _session_price(instance, members, charger)
        raw_total = sum(
            price - instance.charging_price([k for k in members if k != i], charger)
            for i in members
        )
        return price - raw_total


def share_from_aggregates(
    scheme: CostSharingScheme,
    instance: CCSInstance,
    device: int,
    size: int,
    total_demand: float,
    price: float,
) -> Optional[float]:
    """*device*'s price share via the scheme's O(1) fast path, if it has one.

    Schemes whose share depends only on session aggregates — the member
    count, total demand, and session price — expose ``share_of`` and get
    evaluated without materializing a member list or a share dict.  This
    is the inner loop of CCSGA's incremental candidate scans: a join or
    leave is priced with one tariff call on a cached scalar.  Returns
    ``None`` for schemes (Shapley, marginal-cost) whose shares depend on
    the full member composition; callers then fall back to
    :meth:`CostSharingScheme.shares`.
    """
    fast = getattr(scheme, "share_of", None)
    if fast is None:
        return None
    return fast(instance, device, size, total_demand, price)


def member_costs(
    schedule: Schedule, instance: CCSInstance, scheme: CostSharingScheme
) -> Dict[int, float]:
    """Per-device comprehensive cost under *scheme*: price share + own moving cost.

    The sum over devices equals :func:`~repro.core.schedule.comprehensive_cost`
    of the schedule (budget balance), which property tests assert.
    """
    costs: Dict[int, float] = {}
    for session in schedule.sessions:
        members = sorted(session.members)
        shares = scheme.shares(instance, members, session.charger)
        for i in members:
            costs[i] = shares[i] + instance.moving_cost(i, session.charger)
    return costs


def individual_cost(
    instance: CCSInstance,
    device: int,
    members: Iterable[int],
    charger: int,
    scheme: CostSharingScheme,
) -> float:
    """Cost *device* would bear in session ``(members, charger)`` under *scheme*.

    The quantity a CCSGA player evaluates when contemplating a switch.
    *device* must be in *members*.
    """
    members = sorted(set(members))
    if device not in members:
        raise ValueError(f"device {device} not in proposed session members")
    shares = scheme.shares(instance, members, charger)
    return shares[device] + instance.moving_cost(device, charger)
