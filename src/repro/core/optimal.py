"""Exact optimal CCS schedules for small instances.

Two independent exact solvers back the paper's "optimal" comparison line:

- :func:`optimal_schedule` — dynamic programming over device subsets.
  ``best(S)`` is the cheapest way to cover subset ``S``; it splits off the
  session containing the lowest-indexed device of ``S``, giving the
  recurrence ``best(S) = min over T ∋ lowbit(S), T ⊆ S of
  session_cost(T) + best(S \\ T)`` evaluated over all ``3^n`` submask pairs.
  Practical to ``n ≈ 16``.
- :func:`optimal_bell` — literal enumeration of all set partitions
  (Bell-number many); hopeless beyond ``n ≈ 9`` but an independent
  implementation, so the test suite cross-checks the two.

Both respect slot capacities and price each block at its cheapest
admitting charger.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import InfeasibleError
from .instance import CCSInstance
from .schedule import Schedule, Session, validate_schedule

__all__ = ["optimal_schedule", "optimal_bell", "MAX_DP_DEVICES"]

#: Hard ceiling for the subset DP; 3^n submask iterations beyond this are
#: impractical in pure Python.
MAX_DP_DEVICES = 18

_INF = float("inf")


def _block_costs(instance: CCSInstance) -> Tuple[List[float], List[int]]:
    """For every nonempty device bitmask: cheapest admitting session cost and charger.

    Demand and per-charger moving-cost sums are built incrementally from
    each mask's lowest set bit, so the whole table costs ``O(2^n * m)``.
    """
    n = instance.n_devices
    m = instance.n_chargers
    size = 1 << n
    demands = [instance.devices[i].demand for i in range(n)]

    demand_sum = [0.0] * size
    move_sum = [[0.0] * size for _ in range(m)]
    popcount = [0] * size
    best_cost = [_INF] * size
    best_charger = [-1] * size

    for mask in range(1, size):
        low = (mask & -mask).bit_length() - 1
        rest = mask & (mask - 1)
        demand_sum[mask] = demand_sum[rest] + demands[low]
        popcount[mask] = popcount[rest] + 1
        for j in range(m):
            move_sum[j][mask] = move_sum[j][rest] + instance.moving_cost(low, j)
        t = popcount[mask]
        for j in range(m):
            charger = instance.chargers[j]
            if not charger.admits(t):
                continue
            price = charger.tariff.session_price(demand_sum[mask] / charger.efficiency)
            cost = price + move_sum[j][mask]
            if cost < best_cost[mask]:
                best_cost[mask] = cost
                best_charger[mask] = j
    return best_cost, best_charger


def optimal_schedule(instance: CCSInstance, max_devices: int = MAX_DP_DEVICES) -> Schedule:
    """Exact minimum-comprehensive-cost schedule via subset DP.

    Raises ``ValueError`` when the instance exceeds *max_devices* (the DP
    is exponential by nature) and :class:`~repro.errors.InfeasibleError`
    when capacities make full coverage impossible.
    """
    n = instance.n_devices
    if n > max_devices:
        raise ValueError(
            f"optimal_schedule is exponential; {n} devices exceed the "
            f"max_devices={max_devices} guard"
        )
    block_cost, block_charger = _block_costs(instance)

    size = 1 << n
    best = [_INF] * size
    choice = [0] * size
    best[0] = 0.0
    for mask in range(1, size):
        low_bit = mask & -mask
        # Enumerate submasks of mask that contain the lowest set bit.
        sub = mask
        while sub:
            if sub & low_bit:
                c = block_cost[sub]
                if c < _INF:
                    total = c + best[mask ^ sub]
                    if total < best[mask]:
                        best[mask] = total
                        choice[mask] = sub
            sub = (sub - 1) & mask

    full = size - 1
    if best[full] == _INF:
        raise InfeasibleError(
            "no capacity-feasible partition covers all devices"
        )

    sessions = []
    mask = full
    while mask:
        sub = choice[mask]
        members = frozenset(i for i in range(n) if sub >> i & 1)
        sessions.append(Session(charger=block_charger[sub], members=members))
        mask ^= sub

    schedule = Schedule(
        sessions, solver="optimal", metadata={"dp_states": float(size)}
    )
    validate_schedule(schedule, instance)
    return schedule


def _partitions(items: List[int]):
    """Yield all set partitions of *items* (each a list of lists)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        # first joins an existing block...
        for k in range(len(partition)):
            yield partition[:k] + [[first] + partition[k]] + partition[k + 1 :]
        # ...or starts its own.
        yield [[first]] + partition


def optimal_bell(instance: CCSInstance, max_devices: int = 9) -> Schedule:
    """Exact solver by brute-force partition enumeration (cross-check only)."""
    n = instance.n_devices
    if n > max_devices:
        raise ValueError(
            f"optimal_bell enumerates Bell({n}) partitions; limit is {max_devices}"
        )
    best_cost = _INF
    best_sessions: Optional[List[Session]] = None
    for partition in _partitions(list(range(n))):
        cost = 0.0
        sessions = []
        feasible = True
        for block in partition:
            admitting = [
                j for j in range(instance.n_chargers)
                if instance.chargers[j].admits(len(block))
            ]
            if not admitting:
                feasible = False
                break
            j = min(admitting, key=lambda c, block=block: (instance.group_cost(block, c), c))
            cost += instance.group_cost(block, j)
            sessions.append(Session(charger=j, members=frozenset(block)))
        if feasible and cost < best_cost:
            best_cost = cost
            best_sessions = sessions
    if best_sessions is None:
        raise InfeasibleError("no capacity-feasible partition covers all devices")
    schedule = Schedule(best_sessions, solver="optimal-bell")
    validate_schedule(schedule, instance)
    return schedule
