"""The paper's core contribution: the CCS problem and its solvers.

Public surface:

- :class:`Device`, :class:`CCSInstance` — the problem;
- :class:`Session`, :class:`Schedule` plus cost/validation helpers — the
  solution format;
- cost-sharing schemes (:class:`EgalitarianSharing`,
  :class:`ProportionalSharing`, :class:`ShapleySharing`);
- solvers: :func:`ccsa`, :func:`ccsga`, :func:`optimal_schedule`,
  :func:`noncooperation` and friends.
"""

from .bounds import LowerBound, lower_bound
from .baselines import demand_greedy, nearest_charger, noncooperation, random_grouping
from .ccsa import ccsa
from .ccsga import CCSGAResult, ccsga
from .costsharing import (
    CostSharingScheme,
    EgalitarianSharing,
    ProportionalSharing,
    ShapleySharing,
    MarginalCostSharing,
    individual_cost,
    member_costs,
)
from .density import GroupProposal, densest_group, group_cost_function
from .device import Device
from .instance import CCSInstance
from .localsearch import improve_schedule
from .optimal import optimal_bell, optimal_schedule
from .schedule import (
    Schedule,
    Session,
    comprehensive_cost,
    singleton_schedule,
    validate_schedule,
)

__all__ = [
    "Device",
    "CCSInstance",
    "Session",
    "Schedule",
    "comprehensive_cost",
    "validate_schedule",
    "singleton_schedule",
    "CostSharingScheme",
    "EgalitarianSharing",
    "ProportionalSharing",
    "ShapleySharing",
    "MarginalCostSharing",
    "member_costs",
    "individual_cost",
    "GroupProposal",
    "densest_group",
    "group_cost_function",
    "ccsa",
    "ccsga",
    "CCSGAResult",
    "optimal_schedule",
    "optimal_bell",
    "improve_schedule",
    "LowerBound",
    "lower_bound",
    "noncooperation",
    "nearest_charger",
    "random_grouping",
    "demand_greedy",
]
