"""Baseline schedulers the paper compares against.

- :func:`noncooperation` — the paper's main baseline (NCA): every device
  ignores the others and buys a private session at its cheapest charger.
- :func:`nearest_charger` — geography-only: private session at the closest
  charger regardless of price.
- :func:`random_grouping` — sanity baseline: a random capacity-respecting
  partition, each group sent to its cheapest charger.  Shows how much of
  CCSA's win comes from *which* groups form rather than grouping per se.
- :func:`demand_greedy` — naive cooperation: devices sorted by demand are
  packed onto their nearest charger up to capacity.
"""

from __future__ import annotations

from typing import List


from ..rng import RandomState, ensure_rng
from .instance import CCSInstance
from .schedule import Schedule, Session, singleton_schedule, validate_schedule

__all__ = ["noncooperation", "nearest_charger", "random_grouping", "demand_greedy"]


def noncooperation(instance: CCSInstance) -> Schedule:
    """Each device charges alone at the charger minimizing its private cost."""
    assignment = []
    for i in range(instance.n_devices):
        best_j = min(
            range(instance.n_chargers),
            key=lambda j, i=i: (instance.group_cost([i], j), j),
        )
        assignment.append(best_j)
    schedule = singleton_schedule(instance, assignment, solver="noncooperation")
    validate_schedule(schedule, instance)
    return schedule


def nearest_charger(instance: CCSInstance) -> Schedule:
    """Each device charges alone at its geographically nearest charger."""
    assignment = []
    for i in range(instance.n_devices):
        best_j = min(
            range(instance.n_chargers),
            key=lambda j, i=i: (instance.distance(i, j), j),
        )
        assignment.append(best_j)
    schedule = singleton_schedule(instance, assignment, solver="nearest")
    validate_schedule(schedule, instance)
    return schedule


def _best_charger_for(instance: CCSInstance, group: List[int]) -> int:
    """Cheapest charger that admits *group*, falling back to argmin if none does."""
    admitting = [
        j for j in range(instance.n_chargers)
        if instance.chargers[j].admits(len(group))
    ]
    pool = admitting or list(range(instance.n_chargers))
    return min(pool, key=lambda j: (instance.group_cost(group, j), j))


def random_grouping(instance: CCSInstance, rng: RandomState = None) -> Schedule:
    """Randomly partition devices into feasible groups, each at its best charger.

    Group sizes are drawn uniformly from ``[1, max_feasible]`` where
    ``max_feasible`` is the largest slot capacity (or the device count when
    capacities are unbounded).
    """
    gen = ensure_rng(rng)
    caps = [c.capacity for c in instance.chargers]
    max_size = instance.n_devices
    if all(c is not None for c in caps):
        max_size = max(c for c in caps)

    order = list(gen.permutation(instance.n_devices))
    sessions = []
    k = 0
    while k < len(order):
        size = int(gen.integers(1, max_size + 1))
        group = [int(i) for i in order[k : k + size]]
        k += len(group)
        charger = _best_charger_for(instance, group)
        sessions.append(Session(charger=charger, members=frozenset(group)))
    schedule = Schedule(sessions, solver="random")
    validate_schedule(schedule, instance)
    return schedule


def demand_greedy(instance: CCSInstance) -> Schedule:
    """Pack devices (heaviest demand first) onto their nearest charger's sessions.

    Each charger accumulates one open session; when the session hits the
    slot capacity a new one opens.  A deliberately naive cooperative
    heuristic: it groups, but without any cost reasoning.
    """
    order = sorted(
        range(instance.n_devices),
        key=lambda i: (-instance.devices[i].demand, i),
    )
    open_sessions: dict = {}
    sessions = []
    for i in order:
        j = min(
            range(instance.n_chargers),
            key=lambda c, i=i: (instance.distance(i, c), c),
        )
        bucket = open_sessions.setdefault(j, [])
        bucket.append(i)
        cap = instance.capacity_of(j)
        if cap is not None and len(bucket) >= cap:
            sessions.append(Session(charger=j, members=frozenset(bucket)))
            open_sessions[j] = []
    for j, bucket in open_sessions.items():
        if bucket:
            sessions.append(Session(charger=j, members=frozenset(bucket)))
    schedule = Schedule(sessions, solver="demand-greedy")
    validate_schedule(schedule, instance)
    return schedule
