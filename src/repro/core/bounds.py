"""Certified lower bounds on the CCS optimum (extension beyond the paper).

The exact solvers in :mod:`.optimal` stop near 16 devices.  For larger
instances this module computes a *provable* lower bound on the optimal
comprehensive cost, so experiments can report "CCSA is within x% of
optimal" at scales where the optimum itself is unreachable.

The bound has three additive parts, each individually valid for every
feasible schedule:

1. **Moving**: device ``i`` travels to *some* charger, paying at least
   ``min_j m_i · dist(i, j)``.
2. **Volume**: with concave ``g_j``, the marginal price of device ``i``'s
   energy within any session at ``j`` is at least the marginal of ``g_j``
   at the largest conceivable session volume (all demand at once):
   ``c_j · [g_j(E_tot) − g_j(E_tot − e_i)]`` where ``e_i = d_i / η_j``.
   Concavity makes this the cheapest possible marginal, so charging
   device ``i`` anywhere costs at least ``min_j`` of that quantity.
   (Subadditivity of concave ``g`` with ``g(0)=0`` guarantees a session's
   volume charge is at least the sum of its members' such marginals.)
3. **Base fees**: a schedule needs at least ``ceil(n / k_max)`` sessions
   (slot capacities), each paying at least ``min_j b_j``.

The parts interact only additively, so their sum lower-bounds the optimum;
tests verify ``lower_bound(I) <= OPT(I)`` exhaustively on small instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .instance import CCSInstance

__all__ = ["LowerBound", "lower_bound"]


@dataclass(frozen=True)
class LowerBound:
    """A decomposed lower bound on the optimal comprehensive cost."""

    moving: float
    volume: float
    base_fees: float

    @property
    def total(self) -> float:
        """The certified bound: no feasible schedule costs less."""
        return self.moving + self.volume + self.base_fees


def lower_bound(instance: CCSInstance) -> LowerBound:
    """Compute the certified lower bound for *instance*.

    Runs in ``O(n·m)`` — usable at any scale the solvers handle.
    """
    n, m = instance.n_devices, instance.n_chargers

    moving = sum(
        min(instance.moving_cost(i, j) for j in range(m)) for i in range(n)
    )

    total_demand = sum(d.demand for d in instance.devices)
    volume = 0.0
    for i in range(n):
        device = instance.devices[i]
        cheapest = math.inf
        for j in range(m):
            charger = instance.chargers[j]
            e_tot = total_demand / charger.efficiency
            e_i = device.demand / charger.efficiency
            marginal = charger.tariff.volume_charge(e_tot) - charger.tariff.volume_charge(
                e_tot - e_i
            )
            cheapest = min(cheapest, marginal)
        volume += cheapest

    capacities = [c.capacity for c in instance.chargers]
    if any(cap is None for cap in capacities):
        min_sessions = 1
    else:
        min_sessions = math.ceil(n / max(capacities))
    base_fees = min_sessions * min(c.tariff.base for c in instance.chargers)

    return LowerBound(moving=moving, volume=volume, base_fees=base_fees)
