"""Densest-group oracles: the inner step of CCSA.

Given a charger ``j`` and a candidate set ``U`` of still-uncovered devices,
find a nonempty group ``S ⊆ U`` (respecting the charger's slot capacity)
minimizing the average cost ``f_j(S) / |S|`` where ``f_j`` is the session
cost (price + members' moving costs).

Three interchangeable strategies, chosen automatically by instance shape:

``prefix``
    Exact when all demands are equal: the session price then depends only
    on ``|S|``, so for each size ``t`` the optimal group is the ``t``
    candidates with the smallest moving costs — a sort and a prefix scan.
    Also serves as a cheap heuristic for heterogeneous demands.

``exhaustive``
    Enumerate all subsets up to the capacity cap.  Exact for any demand
    profile; used when the candidate set is small (the common case late in
    the greedy cover, and for paper-scale instances throughout).

``sfm``
    Dinkelbach density search over the submodular ``f_j`` using the
    Fujishige–Wolfe engine (:mod:`repro.submodular`).  Exact without a
    capacity cap; capacity is repaired by greedy peeling.  This is the
    strategy the paper's CCSA description names, and the one that scales.

``auto`` combines them: exact strategies when applicable, otherwise the
better of ``sfm`` and ``prefix``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence

from ..errors import ConfigurationError
from ..submodular import SetFunction, densest_subset
from .instance import CCSInstance

__all__ = ["GroupProposal", "densest_group", "group_cost_function"]

#: Candidate-set size at or below which exhaustive enumeration is used.
EXHAUSTIVE_LIMIT = 12

_METHODS = ("auto", "prefix", "exhaustive", "sfm")


@dataclass(frozen=True)
class GroupProposal:
    """A candidate session: charger, members, total cost, and cost density."""

    charger: int
    members: FrozenSet[int]
    cost: float
    density: float
    method: str


def group_cost_function(
    instance: CCSInstance, charger: int, candidates: Sequence[int]
) -> SetFunction:
    """The submodular session cost ``f_j`` restricted to *candidates*.

    Ground element ``k`` of the returned function corresponds to device
    index ``candidates[k]``.
    """
    members = list(candidates)

    def fn(subset):
        return instance.group_cost([members[k] for k in subset], charger)

    cid = instance.chargers[charger].charger_id
    return SetFunction(len(members), fn, name=f"f[{cid}]")


def _demands_uniform(instance: CCSInstance, candidates: Sequence[int], rel_tol: float = 1e-9) -> bool:
    demands = [instance.devices[i].demand for i in candidates]
    lo, hi = min(demands), max(demands)
    return hi - lo <= rel_tol * max(1.0, hi)


def _prefix_scan(
    instance: CCSInstance, charger: int, candidates: Sequence[int], cap: Optional[int]
) -> GroupProposal:
    """Best prefix of candidates sorted by moving cost, over all sizes."""
    order = sorted(candidates, key=lambda i: (instance.moving_cost(i, charger), i))
    max_t = len(order) if cap is None else min(cap, len(order))
    best: Optional[GroupProposal] = None
    for t in range(1, max_t + 1):
        group = frozenset(order[:t])
        cost = instance.group_cost(group, charger)
        density = cost / t
        if best is None or density < best.density:
            best = GroupProposal(charger, group, cost, density, "prefix")
    assert best is not None  # candidates is nonempty by caller contract
    return best


def _exhaustive(
    instance: CCSInstance, charger: int, candidates: Sequence[int], cap: Optional[int]
) -> GroupProposal:
    """Enumerate every subset up to the capacity cap; exact but exponential."""
    pool = sorted(candidates)
    max_t = len(pool) if cap is None else min(cap, len(pool))
    best: Optional[GroupProposal] = None
    for t in range(1, max_t + 1):
        for combo in itertools.combinations(pool, t):
            group = frozenset(combo)
            cost = instance.group_cost(group, charger)
            density = cost / t
            if best is None or density < best.density - 1e-15:
                best = GroupProposal(charger, group, cost, density, "exhaustive")
    assert best is not None
    return best


def _sfm(
    instance: CCSInstance, charger: int, candidates: Sequence[int], cap: Optional[int]
) -> GroupProposal:
    """Dinkelbach + Fujishige–Wolfe density minimization."""
    pool = sorted(candidates)
    f = group_cost_function(instance, charger, pool)
    result = densest_subset(f, max_size=cap)
    group = frozenset(pool[k] for k in result.subset)
    cost = instance.group_cost(group, charger)
    return GroupProposal(charger, group, cost, cost / len(group), "sfm")


def densest_group(
    instance: CCSInstance,
    charger: int,
    candidates: Sequence[int],
    method: str = "auto",
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
) -> GroupProposal:
    """Minimum-density group among *candidates* at *charger*.

    *candidates* must be a nonempty collection of distinct device indices.
    See the module docstring for the strategy semantics.
    """
    if method not in _METHODS:
        raise ConfigurationError(f"unknown density method {method!r}; choose from {_METHODS}")
    pool = sorted(set(candidates))
    if not pool:
        raise ValueError("densest_group requires at least one candidate device")
    if len(pool) != len(list(candidates)):
        raise ValueError("candidate device indices must be distinct")
    cap = instance.capacity_of(charger)

    if method == "prefix":
        return _prefix_scan(instance, charger, pool, cap)
    if method == "exhaustive":
        return _exhaustive(instance, charger, pool, cap)
    if method == "sfm":
        return _sfm(instance, charger, pool, cap)

    # auto
    if _demands_uniform(instance, pool):
        return _prefix_scan(instance, charger, pool, cap)
    if len(pool) <= exhaustive_limit:
        return _exhaustive(instance, charger, pool, cap)
    sfm_prop = _sfm(instance, charger, pool, cap)
    prefix_prop = _prefix_scan(instance, charger, pool, cap)
    return sfm_prop if sfm_prop.density <= prefix_prop.density else prefix_prop
