"""CCSA — the paper's approximation algorithm for cooperative charging scheduling.

CCSA is a greedy cover driven by submodular minimization [abstract:
"based on greedy approach and submodular function minimization"]:

1. While some devices are still unscheduled, ask every charger for its
   **minimum-density group** among the uncovered devices — the subset whose
   session cost per member is smallest (:mod:`.density`; the SFM path uses
   Dinkelbach + Fujishige–Wolfe).
2. Commit the globally densest ``(charger, group)`` as one charging
   session and mark its members covered.
3. Repeat.  Termination is guaranteed because every proposal is nonempty.

Because the session costs are nonnegative submodular block costs and step 1
is (for the exact oracle paths) a true density oracle, this is the
classical greedy for minimum-cost submodular set cover with its ``H_n``
approximation guarantee; empirically the paper reports ~7.3% above optimal,
which the Table 2 benchmark reproduces.
"""

from __future__ import annotations

from typing import Optional

from .density import EXHAUSTIVE_LIMIT, GroupProposal, densest_group
from .instance import CCSInstance
from .schedule import Schedule, Session, validate_schedule

__all__ = ["ccsa"]


def ccsa(
    instance: CCSInstance,
    method: str = "auto",
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    validate: bool = True,
    max_candidates: Optional[int] = None,
) -> Schedule:
    """Run CCSA on *instance* and return a feasible schedule.

    Parameters
    ----------
    method:
        Density-oracle strategy (``"auto"``, ``"prefix"``, ``"exhaustive"``
        or ``"sfm"``); see :mod:`repro.core.density`.
    exhaustive_limit:
        Candidate-set size below which the auto oracle switches to exact
        enumeration.
    validate:
        Check the result against the instance before returning (cheap; only
        disable inside tight benchmark loops).
    max_candidates:
        Optional scaling knob: each charger's oracle only considers its
        *max_candidates* cheapest-to-reach uncovered devices.  Groups are
        overwhelmingly local (a distant device would pay its moving cost
        for nothing), so small values (~2× slot capacity) recover nearly
        identical schedules at a fraction of the oracle cost — the
        "CCSA-fast" ablation quantifies the trade-off.  ``None`` (default)
        keeps the full candidate set and the unpruned algorithm.

    The returned schedule's ``metadata`` records the number of greedy
    rounds and how often each oracle strategy fired.
    """
    if max_candidates is not None and max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    uncovered = set(range(instance.n_devices))
    sessions = []
    rounds = 0
    method_counts = {"prefix": 0, "exhaustive": 0, "sfm": 0}

    while uncovered:
        rounds += 1
        pool = sorted(uncovered)
        best: Optional[GroupProposal] = None
        for j in range(instance.n_chargers):
            if max_candidates is not None and len(pool) > max_candidates:
                candidates = sorted(
                    pool, key=lambda i, j=j: (instance.moving_cost(i, j), i)
                )[:max_candidates]
            else:
                candidates = pool
            proposal = densest_group(
                instance, j, candidates, method=method,
                exhaustive_limit=exhaustive_limit,
            )
            if best is None or proposal.density < best.density - 1e-15:
                best = proposal
        assert best is not None  # n_chargers >= 1 by instance contract
        sessions.append(Session(charger=best.charger, members=best.members))
        method_counts[best.method] += 1
        uncovered -= best.members

    schedule = Schedule(
        sessions,
        solver="ccsa",
        metadata={
            "rounds": float(rounds),
            **{f"oracle_{k}": float(v) for k, v in method_counts.items()},
        },
    )
    if validate:
        validate_schedule(schedule, instance)
    return schedule
