"""Schedules: the output format shared by every CCS solver.

A :class:`Schedule` is a set of charging :class:`Session`\\ s — each a group
of devices assigned to one charger — that together partition the device
set.  A charger may host any number of sessions (each pays its own base
fee); a single session is bounded by the charger's slot capacity.

The module also centralizes cost accounting (:func:`comprehensive_cost`)
and feasibility checking (:func:`validate_schedule`) so solvers cannot
drift apart on what "cost" and "feasible" mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import ScheduleValidationError
from .instance import CCSInstance

__all__ = [
    "Session",
    "Schedule",
    "validate_schedule",
    "comprehensive_cost",
    "singleton_schedule",
]


@dataclass(frozen=True)
class Session:
    """One charging session: a device group served together at one charger.

    Device and charger references are *indices into the instance*, which
    keeps sessions cheap to hash and compare inside solvers; rendering to
    identifiers happens at the reporting layer.
    """

    charger: int
    members: FrozenSet[int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", frozenset(self.members))
        if not self.members:
            raise ScheduleValidationError("a session must have at least one member")
        if self.charger < 0:
            raise ScheduleValidationError(f"invalid charger index {self.charger}")

    @property
    def size(self) -> int:
        """Number of devices sharing the session."""
        return len(self.members)


@dataclass(frozen=True)
class Schedule:
    """An assignment of every device to exactly one session.

    Immutable; solvers build lists of sessions and freeze them here.
    ``metadata`` carries solver diagnostics (iterations, switches, SFM
    calls) for the experiment harness.
    """

    sessions: Tuple[Session, ...]
    solver: str = "unknown"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __init__(
        self,
        sessions: Iterable[Session],
        solver: str = "unknown",
        metadata: Optional[Dict[str, float]] = None,
    ):
        object.__setattr__(self, "sessions", tuple(sessions))
        object.__setattr__(self, "solver", solver)
        object.__setattr__(self, "metadata", dict(metadata or {}))

    def session_of(self, device: int) -> Session:
        """The session containing device index *device*."""
        for s in self.sessions:
            if device in s.members:
                return s
        raise KeyError(f"device index {device} not scheduled")

    def covered_devices(self) -> FrozenSet[int]:
        """All device indices appearing in some session."""
        out: set = set()
        for s in self.sessions:
            out |= s.members
        return frozenset(out)

    @property
    def n_sessions(self) -> int:
        """Number of charging sessions."""
        return len(self.sessions)

    def group_sizes(self) -> List[int]:
        """Sorted session sizes — the coalition-structure fingerprint."""
        return sorted(s.size for s in self.sessions)

    def canonical(self) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
        """Order-independent canonical form, for equality checks in tests."""
        return tuple(
            sorted((s.charger, tuple(sorted(s.members))) for s in self.sessions)
        )


def validate_schedule(schedule: Schedule, instance: CCSInstance) -> None:
    """Raise :class:`ScheduleValidationError` unless *schedule* is feasible.

    Feasible means: sessions reference valid charger indices, every device
    index is valid and appears in exactly one session, every device is
    covered, and no session exceeds its charger's slot capacity.
    """
    seen: Dict[int, int] = {}
    for k, session in enumerate(schedule.sessions):
        if not 0 <= session.charger < instance.n_chargers:
            raise ScheduleValidationError(
                f"session {k}: charger index {session.charger} out of range"
            )
        cap = instance.capacity_of(session.charger)
        if cap is not None and session.size > cap:
            raise ScheduleValidationError(
                f"session {k}: {session.size} devices exceed capacity {cap} of "
                f"charger {instance.chargers[session.charger].charger_id!r}"
            )
        for dev in session.members:
            if not 0 <= dev < instance.n_devices:
                raise ScheduleValidationError(
                    f"session {k}: device index {dev} out of range"
                )
            if dev in seen:
                raise ScheduleValidationError(
                    f"device index {dev} appears in sessions {seen[dev]} and {k}"
                )
            seen[dev] = k
    missing = set(range(instance.n_devices)) - set(seen)
    if missing:
        raise ScheduleValidationError(
            f"devices {sorted(missing)} are not covered by any session"
        )


def comprehensive_cost(schedule: Schedule, instance: CCSInstance) -> float:
    """Total comprehensive cost of *schedule*: all session prices + all moving costs.

    The quantity every algorithm in the paper minimizes and every
    experiment reports.
    """
    return sum(
        instance.group_cost(s.members, s.charger) for s in schedule.sessions
    )


def singleton_schedule(instance: CCSInstance, assignment: Sequence[int], solver: str) -> Schedule:
    """Build the schedule where device ``i`` charges alone at ``assignment[i]``."""
    if len(assignment) != instance.n_devices:
        raise ScheduleValidationError(
            f"assignment length {len(assignment)} != {instance.n_devices} devices"
        )
    sessions = [
        Session(charger=int(j), members=frozenset({i})) for i, j in enumerate(assignment)
    ]
    return Schedule(sessions, solver=solver)
