"""Local-search schedule improvement (extension beyond the paper).

The paper stops at CCSA and CCSGA; a natural engineering extension is a
polishing pass over any feasible schedule.  :func:`improve_schedule`
repeatedly applies the cheapest-first of three neighbourhood moves until
none improves the comprehensive cost:

- **relocate**: move one device to another session (or to a fresh
  singleton at any charger);
- **merge**: fuse two sessions into one (at the better of their chargers)
  when capacity allows;
- **retarget**: move an entire session to a different charger.

Every accepted move strictly lowers total cost, so the search terminates;
the result is locally optimal w.r.t. these moves.  Used by the ablation
benchmarks to quantify how much headroom the main algorithms leave.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .instance import CCSInstance
from .schedule import Schedule, Session, validate_schedule

__all__ = ["improve_schedule"]


def _cost(instance: CCSInstance, groups: List[Tuple[int, Set[int]]]) -> float:
    return sum(instance.group_cost(members, charger) for charger, members in groups)


def _best_relocate(instance, groups):
    """Best single-device relocation, as (delta, mutation) or None."""
    best = None
    for src_idx, (src_charger, src_members) in enumerate(groups):
        for device in sorted(src_members):
            old_src = instance.group_cost(src_members, src_charger)
            new_src = instance.group_cost(src_members - {device}, src_charger)
            release = new_src - old_src
            # join another session
            for dst_idx, (dst_charger, dst_members) in enumerate(groups):
                if dst_idx == src_idx:
                    continue
                if not instance.chargers[dst_charger].admits(len(dst_members) + 1):
                    continue
                delta = release + (
                    instance.group_cost(dst_members | {device}, dst_charger)
                    - instance.group_cost(dst_members, dst_charger)
                )
                if best is None or delta < best[0]:
                    best = (delta, ("relocate", src_idx, device, dst_idx, None))
            # found a singleton
            if len(src_members) > 1:
                for j in range(instance.n_chargers):
                    delta = release + instance.group_cost([device], j)
                    if best is None or delta < best[0]:
                        best = (delta, ("relocate", src_idx, device, None, j))
    return best


def _best_merge(instance, groups):
    best = None
    for a in range(len(groups)):
        for b in range(a + 1, len(groups)):
            ca, ma = groups[a]
            cb, mb = groups[b]
            union = ma | mb
            for j in {ca, cb}:
                if not instance.chargers[j].admits(len(union)):
                    continue
                delta = (
                    instance.group_cost(union, j)
                    - instance.group_cost(ma, ca)
                    - instance.group_cost(mb, cb)
                )
                if best is None or delta < best[0]:
                    best = (delta, ("merge", a, b, j))
    return best


def _best_retarget(instance, groups):
    best = None
    for idx, (charger, members) in enumerate(groups):
        current = instance.group_cost(members, charger)
        for j in range(instance.n_chargers):
            if j == charger or not instance.chargers[j].admits(len(members)):
                continue
            delta = instance.group_cost(members, j) - current
            if best is None or delta < best[0]:
                best = (delta, ("retarget", idx, j))
    return best


def improve_schedule(
    schedule: Schedule,
    instance: CCSInstance,
    max_moves: int = 10_000,
    tol: float = 1e-9,
) -> Schedule:
    """Polish *schedule* by strict-improvement local search.

    Returns a schedule whose cost is never higher than the input's; the
    ``metadata`` records how many moves were applied.  The input schedule
    is not modified.
    """
    validate_schedule(schedule, instance)
    groups: List[Tuple[int, Set[int]]] = [
        (s.charger, set(s.members)) for s in schedule.sessions
    ]
    moves = 0
    while moves < max_moves:
        candidates = [
            c
            for c in (
                _best_relocate(instance, groups),
                _best_merge(instance, groups),
                _best_retarget(instance, groups),
            )
            if c is not None
        ]
        if not candidates:
            break
        delta, action = min(candidates, key=lambda c: c[0])
        if delta >= -tol:
            break
        moves += 1
        kind = action[0]
        if kind == "relocate":
            _, src_idx, device, dst_idx, new_charger = action
            groups[src_idx][1].discard(device)
            if dst_idx is not None:
                groups[dst_idx][1].add(device)
            else:
                groups.append((new_charger, {device}))
            groups = [(c, m) for c, m in groups if m]
        elif kind == "merge":
            _, a, b, j = action
            merged = (j, groups[a][1] | groups[b][1])
            groups = [g for k, g in enumerate(groups) if k not in (a, b)]
            groups.append(merged)
        else:  # retarget
            _, idx, j = action
            groups[idx] = (j, groups[idx][1])

    result = Schedule(
        [Session(charger=c, members=frozenset(m)) for c, m in groups],
        solver=f"{schedule.solver}+ls",
        metadata={**schedule.metadata, "local_search_moves": float(moves)},
    )
    validate_schedule(result, instance)
    return result
