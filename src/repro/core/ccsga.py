"""CCSGA — the coalition-formation-game algorithm for large-scale CCS.

CCSGA treats every device as a selfish player whose strategy is the
charging session it joins and whose cost is its intragroup share plus its
own moving cost (the cost-sharing scheme is a parameter — the paper's two
schemes live in :mod:`.costsharing`).  The dynamics:

1. Start from the noncooperative structure (every device a singleton at
   its cheapest charger) — or from any warm-start schedule.
2. Sweep the devices round-robin; each device plays its best *permitted*
   switch (join another session, or found a new singleton at some
   charger).  The default :class:`~repro.game.switching.SociallyAwareSwitch`
   rule permits a switch only when it lowers both the device's own cost
   and the total comprehensive cost, which makes total cost an exact
   potential: every switch strictly decreases it, no structure repeats,
   and the finite structure space forces convergence to a state with no
   permitted deviation — a **pure Nash equilibrium** of the induced game
   (the abstract's convergence theorem).
3. Stop after the first full sweep with no switch.

Under the :class:`~repro.game.switching.SelfishSwitch` ablation the
potential argument does not apply; the driver then watches for structure
revisits and raises :class:`~repro.errors.ConvergenceError` on a cycle
instead of looping forever.

Per-sweep work is ``O(n * (sessions + chargers))`` share evaluations —
no submodular minimization — which is why CCSGA is the fast, large-scale
algorithm in the paper's comparison (reproduced by the Fig 9 benchmark).

**Engines.**  The dynamics above can run on two interchangeable state
representations selected by the ``engine`` parameter (or the
``CCS_ENGINE`` environment variable):

- ``"object"`` — :class:`~repro.game.coalition.CoalitionStructure`, one
  Python object per coalition; the reference implementation.
- ``"array"`` — :class:`~repro.game.arraycore.ArrayState`, struct-of-
  arrays state whose candidate scans are vectorized numpy ops; ~10-40x
  more share evaluations per second at n >= 5,000.
- ``"auto"`` (default) — array when the scheme/rule/instance support it
  (the two paper schemes with the two built-in rules), object otherwise.

The engines are **bit-identical**: same switch sequence, same trace, same
schedule, same total cost to the last bit (``tests/test_game_array.py``
enforces this on every golden fixture and under hypothesis fuzz).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import ConfigurationError, ConvergenceError
from ..rng import RandomState, ensure_rng
from ..game import (
    ArrayState,
    CoalitionStructure,
    PotentialTrace,
    SociallyAwareSwitch,
    SwitchRule,
    engine_supported,
    is_nash_equilibrium,
)
from .costsharing import CostSharingScheme, EgalitarianSharing
from .instance import CCSInstance
from .schedule import Schedule, validate_schedule

__all__ = ["CCSGAResult", "ccsga", "resolve_engine"]

_ENGINES = ("object", "array", "auto")


def resolve_engine(
    engine: Optional[str],
    instance: object,
    scheme: CostSharingScheme,
    rule: SwitchRule,
) -> str:
    """Resolve an ``engine`` request to a concrete ``"object"``/``"array"``.

    ``None`` defers to the ``CCS_ENGINE`` environment variable (default
    ``"auto"``).  ``"auto"`` picks the array engine whenever
    :func:`~repro.game.arraycore.engine_supported` holds and silently
    falls back to the object engine otherwise.  Asking for ``"array"``
    via the *argument* is strict — it raises
    :class:`~repro.errors.ConfigurationError` when the combination
    cannot be vectorized (e.g. Shapley sharing) — while via the
    *environment* it is advisory and falls back like ``"auto"``, so
    ``CCS_ENGINE=array`` can blanket a whole test run (the CI
    engine-parity step) without breaking non-vectorizable cases.
    """
    strict = engine is not None
    requested = engine if engine is not None else os.environ.get("CCS_ENGINE", "auto")
    if requested not in _ENGINES:
        raise ConfigurationError(
            f"unknown engine {requested!r}; expected one of {_ENGINES}"
        )
    if requested == "object":
        return "object"
    supported = engine_supported(instance, scheme, rule)
    if requested == "array":
        if not supported:
            if not strict:
                return "object"
            raise ConfigurationError(
                "engine='array' requires a cost-sharing scheme with "
                "share_of/share_of_vector fast paths (egalitarian or "
                "proportional), a built-in switch rule, and an instance "
                "with vectorized pricing; use engine='auto' to fall back"
            )
        return "array"
    return "array" if supported else "object"


@dataclass(frozen=True)
class CCSGAResult:
    """A CCSGA run: the schedule plus game-dynamics diagnostics."""

    schedule: Schedule
    switches: int
    sweeps: int
    trace: PotentialTrace
    nash_certified: bool
    engine: str = "object"


def ccsga(
    instance: CCSInstance,
    scheme: Optional[CostSharingScheme] = None,
    rule: Optional[SwitchRule] = None,
    warm_start: Optional[Schedule] = None,
    max_sweeps: int = 10_000,
    certify: bool = True,
    rng: RandomState = None,
    engine: Optional[str] = None,
) -> CCSGAResult:
    """Run CCSGA on *instance* and return the converged coalition structure.

    Parameters
    ----------
    scheme:
        Intragroup cost-sharing scheme; default egalitarian (the paper's
        first scheme).
    rule:
        Switch permission rule; default socially-aware (guaranteed
        convergence).  With the selfish rule a detected cycle raises
        :class:`~repro.errors.ConvergenceError`.
    warm_start:
        Optional schedule to start the dynamics from instead of the
        noncooperative singletons.
    max_sweeps:
        Safety bound on full device sweeps; exceeded only on a bug or an
        adversarial tolerance, and raises ``ConvergenceError``.
    certify:
        Re-verify the terminal structure is a pure Nash equilibrium by
        exhaustive deviation enumeration (cheap; disable in tight loops).
    rng:
        Optional randomness: when given, each sweep visits devices in a
        fresh random order.  Different orders can land on different Nash
        equilibria, which the price-of-anarchy analysis exploits; the
        default (``None``) keeps the deterministic ``0..n-1`` order.
    engine:
        State-representation engine: ``"object"``, ``"array"``, or
        ``"auto"`` (see module docs).  ``None`` reads ``CCS_ENGINE``
        from the environment, defaulting to ``"auto"``.  Both engines
        produce bit-identical results whenever both apply.
    """
    scheme = scheme if scheme is not None else EgalitarianSharing()
    rule = rule if rule is not None else SociallyAwareSwitch()
    resolved = resolve_engine(engine, instance, scheme, rule)

    structure: Union[CoalitionStructure, ArrayState]
    if resolved == "array":
        if warm_start is not None:
            structure = ArrayState.from_schedule(instance, scheme, warm_start)
        else:
            structure = ArrayState.singletons(instance, scheme)
    elif warm_start is not None:
        structure = CoalitionStructure.from_schedule(instance, scheme, warm_start)
    else:
        structure = CoalitionStructure.singletons(instance, scheme)

    trace = PotentialTrace()
    trace.record(structure.total_cost)
    # Cycle detection is only needed when the rule lacks a potential
    # function (the selfish ablation): a potential-guaranteed rule can
    # never revisit a structure, so tracking seen states would only burn
    # O(switches) memory.  When tracking, the incrementally maintained
    # 64-bit Zobrist hash replaces the old O(n) state_key() rehash.
    track_states = not rule.has_potential
    seen_states = {structure.zobrist_hash()} if track_states else None
    switches = 0
    sweeps = 0

    generator = ensure_rng(rng) if rng is not None else None

    while sweeps < max_sweeps:
        sweeps += 1
        switched_this_sweep = False
        if generator is not None:
            order = [int(i) for i in generator.permutation(instance.n_devices)]
        else:
            order = list(range(instance.n_devices))
        for device in order:
            if isinstance(structure, ArrayState):
                move = structure.best_move(device, rule)
            else:
                move = rule.best_move(structure, device)
            if move is None:
                continue
            structure.move(device, move.target, move.charger)
            switches += 1
            switched_this_sweep = True
            trace.record(structure.total_cost)
            if track_states:
                assert seen_states is not None
                key = structure.zobrist_hash()
                if key in seen_states:
                    raise ConvergenceError(
                        f"switch dynamics revisited a coalition structure after "
                        f"{switches} switches (rule={rule.name!r}); the game has "
                        "no potential under this rule",
                        iterations=switches,
                    )
                seen_states.add(key)
        if not switched_this_sweep:
            break
    else:
        raise ConvergenceError(
            f"CCSGA exceeded {max_sweeps} sweeps without converging",
            iterations=switches,
        )

    if not certify:
        certified = False
    elif isinstance(structure, ArrayState):
        # Same predicate as is_nash_equilibrium: no device has a
        # permitted deviation — evaluated with the vectorized scan.
        certified = structure.is_nash(rule)
    else:
        certified = is_nash_equilibrium(structure, rule)
    schedule = structure.to_schedule(
        solver="ccsga",
        metadata={
            "switches": float(switches),
            "sweeps": float(sweeps),
            "nash_certified": 1.0 if certified else 0.0,
        },
    )
    validate_schedule(schedule, instance)
    return CCSGAResult(
        schedule=schedule,
        switches=switches,
        sweeps=sweeps,
        trace=trace,
        nash_certified=certified,
        engine=resolved,
    )
