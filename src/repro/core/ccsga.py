"""CCSGA — the coalition-formation-game algorithm for large-scale CCS.

CCSGA treats every device as a selfish player whose strategy is the
charging session it joins and whose cost is its intragroup share plus its
own moving cost (the cost-sharing scheme is a parameter — the paper's two
schemes live in :mod:`.costsharing`).  The dynamics:

1. Start from the noncooperative structure (every device a singleton at
   its cheapest charger) — or from any warm-start schedule.
2. Sweep the devices round-robin; each device plays its best *permitted*
   switch (join another session, or found a new singleton at some
   charger).  The default :class:`~repro.game.switching.SociallyAwareSwitch`
   rule permits a switch only when it lowers both the device's own cost
   and the total comprehensive cost, which makes total cost an exact
   potential: every switch strictly decreases it, no structure repeats,
   and the finite structure space forces convergence to a state with no
   permitted deviation — a **pure Nash equilibrium** of the induced game
   (the abstract's convergence theorem).
3. Stop after the first full sweep with no switch.

Under the :class:`~repro.game.switching.SelfishSwitch` ablation the
potential argument does not apply; the driver then watches for structure
revisits and raises :class:`~repro.errors.ConvergenceError` on a cycle
instead of looping forever.

Per-sweep work is ``O(n * (sessions + chargers))`` share evaluations —
no submodular minimization — which is why CCSGA is the fast, large-scale
algorithm in the paper's comparison (reproduced by the Fig 9 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConvergenceError
from ..rng import RandomState, ensure_rng
from ..game import (
    CoalitionStructure,
    PotentialTrace,
    SociallyAwareSwitch,
    SwitchRule,
    is_nash_equilibrium,
)
from .costsharing import CostSharingScheme, EgalitarianSharing
from .instance import CCSInstance
from .schedule import Schedule, validate_schedule

__all__ = ["CCSGAResult", "ccsga"]


@dataclass(frozen=True)
class CCSGAResult:
    """A CCSGA run: the schedule plus game-dynamics diagnostics."""

    schedule: Schedule
    switches: int
    sweeps: int
    trace: PotentialTrace
    nash_certified: bool


def ccsga(
    instance: CCSInstance,
    scheme: Optional[CostSharingScheme] = None,
    rule: Optional[SwitchRule] = None,
    warm_start: Optional[Schedule] = None,
    max_sweeps: int = 10_000,
    certify: bool = True,
    rng: RandomState = None,
) -> CCSGAResult:
    """Run CCSGA on *instance* and return the converged coalition structure.

    Parameters
    ----------
    scheme:
        Intragroup cost-sharing scheme; default egalitarian (the paper's
        first scheme).
    rule:
        Switch permission rule; default socially-aware (guaranteed
        convergence).  With the selfish rule a detected cycle raises
        :class:`~repro.errors.ConvergenceError`.
    warm_start:
        Optional schedule to start the dynamics from instead of the
        noncooperative singletons.
    max_sweeps:
        Safety bound on full device sweeps; exceeded only on a bug or an
        adversarial tolerance, and raises ``ConvergenceError``.
    certify:
        Re-verify the terminal structure is a pure Nash equilibrium by
        exhaustive deviation enumeration (cheap; disable in tight loops).
    rng:
        Optional randomness: when given, each sweep visits devices in a
        fresh random order.  Different orders can land on different Nash
        equilibria, which the price-of-anarchy analysis exploits; the
        default (``None``) keeps the deterministic ``0..n-1`` order.
    """
    scheme = scheme if scheme is not None else EgalitarianSharing()
    rule = rule if rule is not None else SociallyAwareSwitch()

    if warm_start is not None:
        structure = CoalitionStructure.from_schedule(instance, scheme, warm_start)
    else:
        structure = CoalitionStructure.singletons(instance, scheme)

    trace = PotentialTrace()
    trace.record(structure.total_cost)
    # Cycle detection is only needed when the rule lacks a potential
    # function (the selfish ablation): a potential-guaranteed rule can
    # never revisit a structure, so tracking seen states would only burn
    # O(switches) memory.  When tracking, the incrementally maintained
    # 64-bit Zobrist hash replaces the old O(n) state_key() rehash.
    track_states = not rule.has_potential
    seen_states = {structure.zobrist_hash()} if track_states else None
    switches = 0
    sweeps = 0

    generator = ensure_rng(rng) if rng is not None else None

    while sweeps < max_sweeps:
        sweeps += 1
        switched_this_sweep = False
        if generator is not None:
            order = [int(i) for i in generator.permutation(instance.n_devices)]
        else:
            order = list(range(instance.n_devices))
        for device in order:
            move = rule.best_move(structure, device)
            if move is None:
                continue
            structure.move(device, move.target, move.charger)
            switches += 1
            switched_this_sweep = True
            trace.record(structure.total_cost)
            if track_states:
                key = structure.zobrist_hash()
                if key in seen_states:
                    raise ConvergenceError(
                        f"switch dynamics revisited a coalition structure after "
                        f"{switches} switches (rule={rule.name!r}); the game has "
                        "no potential under this rule",
                        iterations=switches,
                    )
                seen_states.add(key)
        if not switched_this_sweep:
            break
    else:
        raise ConvergenceError(
            f"CCSGA exceeded {max_sweeps} sweeps without converging",
            iterations=switches,
        )

    certified = is_nash_equilibrium(structure, rule) if certify else False
    schedule = structure.to_schedule(
        solver="ccsga",
        metadata={
            "switches": float(switches),
            "sweeps": float(sweeps),
            "nash_certified": 1.0 if certified else 0.0,
        },
    )
    validate_schedule(schedule, instance)
    return CCSGAResult(
        schedule=schedule,
        switches=switches,
        sweeps=sweeps,
        trace=trace,
        nash_certified=certified,
    )
