"""Centralized numeric sentinels, tolerances, and comparison idioms.

Float comparisons in this repo come in exactly two flavors, and this
module gives each one a name so intent is visible at the call site (and
machine-checkable — ccs-lint rule CCS003 flags any bare float-literal
``==``/``!=``):

- **Exact sentinel guards** — a value that was *constructed* equal to a
  sentinel, not accumulated toward it: the session price of an empty
  member list, an offline cost of a trivially-empty trace, a noise sigma
  the caller set to exactly zero.  Spell these ``is_exact_zero(x)`` or
  ``x == EXACT_ZERO``.  IEEE-754 guarantees the comparison (including
  ``-0.0 == 0.0``), and the named form tells reviewers no tolerance was
  forgotten.

- **Approximate comparisons** — anything downstream of floating-point
  accumulation.  Use :func:`isclose` (``math.isclose`` with this repo's
  default relative tolerance) or one of the named audit tolerances
  below; never a scattered magic literal.

The audit tolerances are the single source of truth for the coalition
engine's cache-coherence checks (see
:meth:`repro.game.coalition.CoalitionStructure.check_invariants`):
cached per-coalition aggregates are refreshed with the same summation
order as a from-scratch recomputation and so may drift only by rounding
(``CACHE_REL_TOL``); the structure's running total cost is updated by
±delta on every move and accumulates more generously
(``TOTAL_COST_REL_TOL``).
"""

from __future__ import annotations

import math

__all__ = [
    "CACHE_REL_TOL",
    "DEFAULT_REL_TOL",
    "EXACT_ONE",
    "EXACT_ZERO",
    "TOTAL_COST_REL_TOL",
    "is_exact",
    "is_exact_zero",
    "isclose",
]

#: Sentinel for "constructed exactly zero" guards (empty sums, unset rates).
EXACT_ZERO: float = 0.0

#: Sentinel for "constructed exactly one" guards (neutral multipliers).
EXACT_ONE: float = 1.0

#: Default relative tolerance for improvement/indifference tests
#: (e.g. the switch rules' and the incremental planner's ``tol``).
DEFAULT_REL_TOL: float = 1e-9

#: Allowed relative drift of a cached per-coalition aggregate
#: (total_demand / price / move_sum) from its from-scratch recomputation.
CACHE_REL_TOL: float = 1e-9

#: Allowed relative drift of the incrementally-maintained total
#: comprehensive cost from a full recomputation (one ±delta pair per
#: move accumulates rounding faster than a single cached sum).
TOTAL_COST_REL_TOL: float = 1e-6


def is_exact(value: float, sentinel: float) -> bool:
    """Exact comparison against a *named* sentinel value.

    The one approved spelling of float ``==`` in this repo: the call site
    names the sentinel, making it explicit that *value* is expected to
    have been constructed — not accumulated — equal to it.
    """
    return value == sentinel


def is_exact_zero(value: float) -> bool:
    """True when *value* was constructed exactly zero (``-0.0`` included)."""
    return value == EXACT_ZERO


def isclose(
    a: float,
    b: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = 0.0,
) -> bool:
    """:func:`math.isclose` with this repo's default relative tolerance."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
