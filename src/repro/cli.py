"""Command-line entry points: ``ccs-bench`` and ``ccs-serve``.

``ccs-bench`` regenerates the paper's evaluation::

    ccs-bench --list
    ccs-bench table2
    ccs-bench fig5 fig9 --trials 5 --jobs 4
    ccs-bench --all --trials 2

Runs are resumable: task results land in ``--cache-dir`` (default
``.ccs-bench-cache/``, or ``$CCS_BENCH_CACHE_DIR``) keyed by content
fingerprint, so re-running a killed ``ccs-bench --all`` only computes
what is missing.  ``--no-cache`` forces a from-scratch run; ``--jobs N``
fans tasks out over N worker processes with results identical to a
serial run (see docs/EXECUTION.md).

``ccs-serve`` runs the charging-as-a-service daemon over a generated or
recorded request stream (see docs/SERVICE.md)::

    ccs-serve --loadgen poisson --n 200 --rate 0.5 --seed 7 \\
        --journal service.jsonl --metrics-json metrics.json
    ccs-serve --trace requests.jsonl --journal service.jsonl --check-recovery
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .experiments import EXPERIMENTS, FIGURE_BUILDERS, ascii_plot, run_experiment
from .experiments.exec import ParallelExecutor, ResultCache, SerialExecutor

__all__ = ["main", "serve_main"]

#: Environment override for the default cache directory.
CACHE_DIR_ENV = "CCS_BENCH_CACHE_DIR"

_DEFAULT_CACHE_DIR = ".ccs-bench-cache"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ccs-bench",
        description=(
            "Regenerate the evaluation tables and figures of 'Cooperative "
            "Charging as Service' (ICDCS 2021)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (available: {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--trials", type=int, default=3, help="instances per sweep point (default 3)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for experiment tasks (default 1 = serial; "
        "results are identical at any level)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=os.environ.get(CACHE_DIR_ENV, _DEFAULT_CACHE_DIR),
        help="task-result cache directory; finished tasks are reused on "
        f"re-runs (default {_DEFAULT_CACHE_DIR!r} or ${CACHE_DIR_ENV})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the task-result cache",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--plot",
        action="store_true",
        help="additionally render figure experiments as ASCII charts",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        help="also write the results to PATH as a Markdown report",
    )
    parser.add_argument(
        "--engine",
        choices=("object", "array", "auto"),
        default=None,
        help="CCSGA state engine for this run (exported as CCS_ENGINE so "
        "worker processes inherit it; default: $CCS_ENGINE or 'auto'). "
        "Both engines are bit-identical wherever both apply.",
    )
    return parser


def _make_executor(args: argparse.Namespace):
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.jobs > 1:
        return ParallelExecutor(args.jobs, cache=cache)
    return SerialExecutor(cache=cache)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.engine is not None:
        os.environ["CCS_ENGINE"] = args.engine
    if args.list:
        for eid in sorted(EXPERIMENTS):
            print(eid)
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print("nothing to run: pass experiment ids, --all, or --list", file=sys.stderr)
        return 2
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    executor = _make_executor(args)
    collected = {}
    for eid in ids:
        if args.plot and eid in FIGURE_BUILDERS:
            from .experiments import render_series
            from .experiments.exec import use_executor

            with use_executor(executor):
                result = FIGURE_BUILDERS[eid](args.trials)
            text = render_series(result) + "\n\n" + ascii_plot(result)
        else:
            text = run_experiment(eid, trials=args.trials, executor=executor)
        collected[eid] = text
        print(text)
        print()
    print(
        f"tasks: {executor.computed} computed, {executor.cache_hits} from cache "
        f"(jobs={executor.jobs})",
        file=sys.stderr,
    )
    if args.export:
        from .experiments import results_markdown

        with open(args.export, "w") as fh:
            fh.write(results_markdown(collected, trials=args.trials))
            fh.write("\n")
        print(f"wrote {args.export}", file=sys.stderr)
    return 0


def _build_serve_parser() -> argparse.ArgumentParser:
    from .service.loadgen import PROFILES

    parser = argparse.ArgumentParser(
        prog="ccs-serve",
        description=(
            "Run the cooperative charging-as-a-service daemon over a "
            "request stream (see docs/SERVICE.md)."
        ),
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--trace",
        metavar="PATH",
        help="replay a recorded JSONL request trace instead of generating",
    )
    source.add_argument(
        "--loadgen",
        choices=PROFILES,
        default="poisson",
        help="arrival profile for the generated stream (default poisson)",
    )
    parser.add_argument("--n", type=int, default=100, help="requests to generate (default 100)")
    parser.add_argument(
        "--rate", type=float, default=0.5, help="mean arrival rate in req/s (default 0.5)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="advance the logical clock to this time after the last "
        "submission (default: drain immediately)",
    )
    parser.add_argument("--seed", type=int, default=0, help="loadgen seed (default 0)")
    parser.add_argument(
        "--journal", metavar="PATH", help="write the durable journal to PATH"
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the final metrics snapshot to PATH as JSON",
    )
    parser.add_argument(
        "--epoch", type=float, default=60.0, help="replanning period in s (default 60)"
    )
    parser.add_argument(
        "--window", type=float, default=120.0, help="commitment window in s (default 120)"
    )
    parser.add_argument(
        "--queue-limit", type=int, default=256, help="admission queue bound (default 256)"
    )
    parser.add_argument(
        "--max-active", type=int, default=None, help="active-device cap (default none)"
    )
    parser.add_argument(
        "--chargers", type=int, default=4, help="chargers on the field grid (default 4)"
    )
    parser.add_argument(
        "--field", type=float, default=100.0, help="square field side in m (default 100)"
    )
    parser.add_argument(
        "--deadline-slack",
        type=float,
        default=None,
        help="give generated requests deadlines this many seconds out",
    )
    parser.add_argument(
        "--max-price-factor",
        type=float,
        default=None,
        help="give generated requests price caps of factor * demand^0.8",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run N independent service kernels behind a spatial router "
        "(see docs/SHARDING.md); 1 = the single unsharded daemon "
        "(default).  With N > 1, --journal names a directory holding one "
        "journal per shard plus a partition manifest",
    )
    parser.add_argument(
        "--halo",
        type=float,
        default=0.0,
        metavar="METERS",
        help="overlap halo of the shard grid: border devices within this "
        "distance of a neighboring cell are quoted against it too "
        "(default 0)",
    )
    parser.add_argument(
        "--check-recovery",
        action="store_true",
        help="after the run, recover a fresh daemon from the journal and "
        "verify the schedule and metrics match byte-for-byte "
        "(requires --journal)",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PATH|seed:N",
        help="inject faults (charger outages, cancellations, no-shows, "
        "journal write failures) from a JSON plan file, or generate one "
        "deterministically from seed N (see docs/FAULTS.md); journal "
        "faults crash and recover the daemon mid-run and require --journal. "
        "With --shards > 1, seed:N generates shard kill/recover events "
        "instead of journal faults",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="write a checksummed state snapshot roughly every N journal "
        "records and compact the covered journal prefix, bounding recovery "
        "to the suffix replay (see docs/RECOVERY.md; default off)",
    )
    parser.add_argument(
        "--snapshot-keep",
        type=int,
        default=2,
        metavar="K",
        help="snapshot files retained per journal (default 2; compaction "
        "needs at least 2 so one corrupt snapshot never strands recovery)",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="with --shards > 1: run the fault plan through the shard "
        "supervisor (automatic failover with seed-derived backoff, "
        "degraded-mode routing on escalation, supervision journal) "
        "instead of the kill-and-recover chaos driver",
    )
    parser.add_argument(
        "--recover-only",
        action="store_true",
        help="skip the run: recover a daemon from --journal, report its "
        "state, and exit — nonzero with a one-line structured error when "
        "the journal directory is corrupt beyond repair",
    )
    return parser


def _grid_chargers(k: int, side: float):
    """*k* chargers on a deterministic sqrt-grid over a square field."""
    import math

    from .geometry import Point
    from .wpt import Charger

    cols = max(1, math.ceil(math.sqrt(k)))
    rows = max(1, math.ceil(k / cols))
    chargers = []
    for i in range(k):
        r, c = divmod(i, cols)
        chargers.append(
            Charger(
                charger_id=f"c{i}",
                position=Point(
                    side * (c + 1) / (cols + 1), side * (r + 1) / (rows + 1)
                ),
            )
        )
    return chargers


def _load_fault_plan(
    spec: str, requests, chargers, n_shards: int = 1, supervised: bool = False
):
    """Resolve ``--fault-plan``: a JSON file path or ``seed:N``.

    With ``n_shards > 1`` a generated plan swaps journal faults (which
    assume a single kernel) for ``shard_kill`` events drawn per shard via
    ``derive_seed(seed, "shard", sid)``; ``supervised`` widens the mix to
    the full self-healing chaos set (snapshot corruption, crashes
    mid-snapshot, crash-looping recoveries).
    """
    from .faults import FaultPlan

    if spec.startswith("seed:"):
        seed = int(spec[len("seed:"):])
        if n_shards > 1:
            horizon = max(
                (float(r.submitted_at) for r in requests), default=0.0
            ) + 600.0
            plan = FaultPlan.generate(
                seed,
                charger_ids=[c.charger_id for c in chargers],
                requests=requests,
                journal_faults=0,
            )
            if supervised:
                chaos = FaultPlan.generate_supervised(seed, n_shards, horizon)
            else:
                chaos = FaultPlan.generate_shard_kills(seed, n_shards, horizon)
            return FaultPlan(list(plan.events) + list(chaos.events))
        return FaultPlan.generate(
            seed,
            charger_ids=[c.charger_id for c in chargers],
            requests=requests,
        )
    return FaultPlan.load(spec)


def _structured_error(exc: BaseException) -> None:
    """One machine-parsable line on stderr for unrecoverable failures."""
    print(
        json.dumps(
            {"error": type(exc).__name__, "message": str(exc)},
            sort_keys=True,
        ),
        file=sys.stderr,
    )


def _recover_only(args, chargers, config) -> int:
    """The ``--recover-only`` path: rebuild from the journal and report.

    Exit 0 with a state summary on success; exit 3 with a one-line
    structured error (JSON on stderr) when recovery is impossible —
    corruption beyond repair, a manifest schema mismatch, or a config
    that does not match the journal's ``open`` header.
    """
    from .errors import ServiceError
    from .service import ChargingService

    try:
        if args.shards > 1:
            from .shard import ShardedService

            service = ShardedService.recover(
                args.journal, chargers, config=config, journal_sync=False,
                snapshot_every=args.snapshot_every,
                snapshot_keep=args.snapshot_keep,
            )
        else:
            service = ChargingService.recover(
                args.journal, chargers, config=config, journal_sync=False,
                snapshot_every=args.snapshot_every,
                snapshot_keep=args.snapshot_keep,
            )
    except ServiceError as exc:
        _structured_error(exc)
        return 3
    counts = service.counts()
    sessions = service.final_schedule()
    print(f"recovered: {len(sessions)} sessions")
    print("  " + "  ".join(f"{state}={n}" for state, n in sorted(counts.items())))
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(service.metrics_snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_json}", file=sys.stderr)
    if args.shards > 1:
        service.close()
    elif service.journal is not None:
        service.journal.close()
    return 0


def _serve_sharded(args, requests, chargers, config) -> int:
    """The ``--shards N > 1`` path: a sharded service, one journal per shard."""
    from .geometry import Field
    from .shard import ShardedService, drive_sharded, drive_supervised

    fault_plan = None
    if args.fault_plan:
        fault_plan = _load_fault_plan(
            args.fault_plan, requests, chargers, n_shards=args.shards,
            supervised=args.supervise,
        )
        if fault_plan.journal_faults():
            print(
                "journal faults are per-kernel; with --shards > 1 use "
                "shard_kill events instead (seed:N generates them)",
                file=sys.stderr,
            )
            return 2
        if fault_plan.supervisor_events() and not args.journal:
            print("shard chaos events require --journal", file=sys.stderr)
            return 2
        if not args.supervise:
            beyond_kills = [
                e for e in fault_plan.supervisor_events()
                if e.kind != "shard_kill"
            ]
            if beyond_kills or fault_plan.recovery_crashes():
                print(
                    "snapshot/recovery chaos events require --supervise",
                    file=sys.stderr,
                )
                return 2

    field = Field(args.field, args.field)
    service = ShardedService(
        chargers,
        n_shards=args.shards,
        field=field,
        halo=args.halo,
        config=config,
        journal_dir=args.journal,
        snapshot_every=args.snapshot_every,
        snapshot_keep=args.snapshot_keep,
    )
    if args.supervise:
        service, supervisor, stats = drive_supervised(
            service, requests, fault_plan, seed=args.seed,
            advance_to=args.duration,
        )
        supervisor.close()
        print(
            f"supervisor: {supervisor.stats['failures']} failures, "
            f"{supervisor.stats['restarts']} restarts, "
            f"{supervisor.stats['recoveries']} recoveries, "
            f"{supervisor.stats['escalations']} escalations "
            f"(logical backoff {supervisor.stats['total_backoff']:.1f} s)"
        )
    else:
        service, stats = drive_sharded(
            service, requests, fault_plan, advance_to=args.duration
        )
    if fault_plan is not None:
        print(
            f"faults: {len(fault_plan)} scheduled, {stats['kills']} shard "
            f"kills ({stats['torn_kills']} torn), "
            f"{stats['skipped_kills']} skipped"
        )

    counts = service.counts()
    sessions = service.final_schedule()
    grid = service.partition
    print(
        f"shards: {len(service.kernels)} kernels over a "
        f"{grid.rows}x{grid.cols} grid (halo {grid.halo:g} m)"
    )
    print(f"requests: {len(requests)}  sessions: {len(sessions)}")
    print("  " + "  ".join(f"{state}={n}" for state, n in sorted(counts.items())))
    moves = sum(k.planner.ops["moves"] for k in service.kernels.values())
    repairs = sum(k.planner.ops["repair_moves"] for k in service.kernels.values())
    solves = sum(k.planner.ops["full_solves"] for k in service.kernels.values())
    print(f"replanner: {moves} moves, {repairs} repairs, {solves} full solves")

    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(service.metrics_snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_json}", file=sys.stderr)

    if args.check_recovery:
        from .errors import ServiceError

        service.close()
        try:
            recovered = ShardedService.recover(
                args.journal, chargers, config=config,
                snapshot_every=args.snapshot_every,
                snapshot_keep=args.snapshot_keep,
            )
        except ServiceError as exc:
            _structured_error(exc)
            return 3
        ok = (
            recovered.final_schedule() == sessions
            and recovered.metrics_snapshot() == service.metrics_snapshot()
        )
        recovered.close()
        if not ok:
            print("recovery check FAILED: recovered state diverged", file=sys.stderr)
            return 1
        print("recovery check OK", file=sys.stderr)
    service.close()
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``ccs-serve`` entry point; returns a process exit code."""
    from .geometry import Field
    from .service import ChargingService, ServiceConfig
    from .service.loadgen import generate_requests, read_trace

    args = _build_serve_parser().parse_args(argv)
    if args.check_recovery and not args.journal:
        print("--check-recovery requires --journal", file=sys.stderr)
        return 2
    if args.chargers < 1:
        print(f"--chargers must be >= 1, got {args.chargers}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.snapshot_every is not None and args.snapshot_every < 1:
        print(
            f"--snapshot-every must be >= 1, got {args.snapshot_every}",
            file=sys.stderr,
        )
        return 2
    if args.snapshot_keep < 1:
        print(f"--snapshot-keep must be >= 1, got {args.snapshot_keep}", file=sys.stderr)
        return 2
    if args.supervise and args.shards < 2:
        print("--supervise requires --shards > 1", file=sys.stderr)
        return 2
    if args.recover_only and not args.journal:
        print("--recover-only requires --journal", file=sys.stderr)
        return 2

    if args.recover_only:
        chargers = _grid_chargers(args.chargers, args.field)
        config = ServiceConfig(
            epoch=args.epoch,
            window=args.window,
            queue_limit=args.queue_limit,
            max_active=args.max_active,
        )
        return _recover_only(args, chargers, config)

    if args.trace:
        requests = read_trace(args.trace)
    else:
        requests = generate_requests(
            args.n,
            rate=args.rate,
            field=Field(args.field, args.field),
            profile=args.loadgen,
            deadline_slack=args.deadline_slack,
            max_price_factor=args.max_price_factor,
            rng=args.seed,
        )

    chargers = _grid_chargers(args.chargers, args.field)
    config = ServiceConfig(
        epoch=args.epoch,
        window=args.window,
        queue_limit=args.queue_limit,
        max_active=args.max_active,
    )
    if args.shards > 1:
        return _serve_sharded(args, requests, chargers, config)
    fault_plan = None
    if args.fault_plan:
        fault_plan = _load_fault_plan(args.fault_plan, requests, chargers)
        if fault_plan.shard_kills():
            print(
                "shard_kill events require --shards > 1", file=sys.stderr
            )
            return 2
        if fault_plan.journal_faults() and not args.journal:
            print(
                "--fault-plan with journal faults requires --journal",
                file=sys.stderr,
            )
            return 2

    if fault_plan is not None and fault_plan.journal_faults():
        from .faults import drive_with_recovery

        service, fault_stats = drive_with_recovery(
            args.journal, chargers, requests, fault_plan,
            config=config, advance_to=args.duration,
        )
        print(
            f"faults: {len(fault_plan)} scheduled, "
            f"{fault_stats['crashes']} crashes, "
            f"{fault_stats['recoveries']} recoveries"
        )
    elif fault_plan is not None:
        from .faults import drive

        service = ChargingService(
            chargers, config=config, journal_path=args.journal,
            snapshot_every=args.snapshot_every, snapshot_keep=args.snapshot_keep,
        )
        drive(service, requests, fault_plan, advance_to=args.duration)
        print(f"faults: {len(fault_plan)} scheduled")
    else:
        service = ChargingService(
            chargers, config=config, journal_path=args.journal,
            snapshot_every=args.snapshot_every, snapshot_keep=args.snapshot_keep,
        )
        for request in requests:
            service.submit(request)
        if args.duration is not None:
            service.advance(args.duration)
        service.drain()

    counts = service.counts()
    sessions = service.final_schedule()
    print(f"requests: {len(requests)}  sessions: {len(sessions)}")
    print("  " + "  ".join(f"{state}={n}" for state, n in sorted(counts.items())))
    ops = service.planner.ops
    print(
        f"replanner: {ops['moves']} moves, {ops['repair_moves']} repairs, "
        f"{ops['full_solves']} full solves"
    )

    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(service.metrics_snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_json}", file=sys.stderr)

    if args.check_recovery:
        from .errors import ServiceError

        service.journal.close()
        try:
            recovered = ChargingService.recover(
                args.journal, chargers, config=config,
                snapshot_every=args.snapshot_every,
                snapshot_keep=args.snapshot_keep,
            )
        except ServiceError as exc:
            _structured_error(exc)
            return 3
        ok = (
            recovered.final_schedule() == sessions
            and recovered.metrics_snapshot() == service.metrics_snapshot()
        )
        recovered.journal.close()
        if not ok:
            print("recovery check FAILED: recovered state diverged", file=sys.stderr)
            return 1
        print("recovery check OK", file=sys.stderr)
    if service.journal is not None:
        service.journal.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
