"""``ccs-bench`` — command-line entry point for the reconstructed evaluation.

Examples::

    ccs-bench --list
    ccs-bench table2
    ccs-bench fig5 fig9 --trials 5 --jobs 4
    ccs-bench --all --trials 2

Runs are resumable: task results land in ``--cache-dir`` (default
``.ccs-bench-cache/``, or ``$CCS_BENCH_CACHE_DIR``) keyed by content
fingerprint, so re-running a killed ``ccs-bench --all`` only computes
what is missing.  ``--no-cache`` forces a from-scratch run; ``--jobs N``
fans tasks out over N worker processes with results identical to a
serial run (see docs/EXECUTION.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .experiments import EXPERIMENTS, FIGURE_BUILDERS, ascii_plot, run_experiment
from .experiments.exec import ParallelExecutor, ResultCache, SerialExecutor

__all__ = ["main"]

#: Environment override for the default cache directory.
CACHE_DIR_ENV = "CCS_BENCH_CACHE_DIR"

_DEFAULT_CACHE_DIR = ".ccs-bench-cache"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ccs-bench",
        description=(
            "Regenerate the evaluation tables and figures of 'Cooperative "
            "Charging as Service' (ICDCS 2021)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (available: {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--trials", type=int, default=3, help="instances per sweep point (default 3)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for experiment tasks (default 1 = serial; "
        "results are identical at any level)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=os.environ.get(CACHE_DIR_ENV, _DEFAULT_CACHE_DIR),
        help="task-result cache directory; finished tasks are reused on "
        f"re-runs (default {_DEFAULT_CACHE_DIR!r} or ${CACHE_DIR_ENV})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the task-result cache",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--plot",
        action="store_true",
        help="additionally render figure experiments as ASCII charts",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        help="also write the results to PATH as a Markdown report",
    )
    return parser


def _make_executor(args: argparse.Namespace):
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.jobs > 1:
        return ParallelExecutor(args.jobs, cache=cache)
    return SerialExecutor(cache=cache)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list:
        for eid in sorted(EXPERIMENTS):
            print(eid)
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print("nothing to run: pass experiment ids, --all, or --list", file=sys.stderr)
        return 2
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    executor = _make_executor(args)
    collected = {}
    for eid in ids:
        if args.plot and eid in FIGURE_BUILDERS:
            from .experiments import render_series
            from .experiments.exec import use_executor

            with use_executor(executor):
                result = FIGURE_BUILDERS[eid](args.trials)
            text = render_series(result) + "\n\n" + ascii_plot(result)
        else:
            text = run_experiment(eid, trials=args.trials, executor=executor)
        collected[eid] = text
        print(text)
        print()
    print(
        f"tasks: {executor.computed} computed, {executor.cache_hits} from cache "
        f"(jobs={executor.jobs})",
        file=sys.stderr,
    )
    if args.export:
        from .experiments import results_markdown

        with open(args.export, "w") as fh:
            fh.write(results_markdown(collected, trials=args.trials))
            fh.write("\n")
        print(f"wrote {args.export}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
