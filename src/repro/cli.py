"""``ccs-bench`` — command-line entry point for the reconstructed evaluation.

Examples::

    ccs-bench --list
    ccs-bench table2
    ccs-bench fig5 fig9 --trials 5
    ccs-bench --all --trials 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import EXPERIMENTS, FIGURE_BUILDERS, ascii_plot, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ccs-bench",
        description=(
            "Regenerate the evaluation tables and figures of 'Cooperative "
            "Charging as Service' (ICDCS 2021)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (available: {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--trials", type=int, default=3, help="instances per sweep point (default 3)"
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--plot",
        action="store_true",
        help="additionally render figure experiments as ASCII charts",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        help="also write the results to PATH as a Markdown report",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list:
        for eid in sorted(EXPERIMENTS):
            print(eid)
        return 0
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print("nothing to run: pass experiment ids, --all, or --list", file=sys.stderr)
        return 2
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    collected = {}
    for eid in ids:
        if args.plot and eid in FIGURE_BUILDERS:
            result = FIGURE_BUILDERS[eid](args.trials)
            from .experiments import render_series

            text = render_series(result) + "\n\n" + ascii_plot(result)
        else:
            text = run_experiment(eid, trials=args.trials)
        collected[eid] = text
        print(text)
        print()
    if args.export:
        from .experiments import results_markdown

        with open(args.export, "w") as fh:
            fh.write(results_markdown(collected, trials=args.trials))
            fh.write("\n")
        print(f"wrote {args.export}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
