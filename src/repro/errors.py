"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from bad
call sites, ``KeyError`` from internal bugs) propagate unchanged.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Sequence, Union

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InfeasibleError",
    "ScheduleValidationError",
    "ConvergenceError",
    "SimulationError",
    "UnknownExperimentError",
    "ServiceError",
    "JournalError",
    "JournalWriteError",
    "SnapshotError",
    "RecoveryError",
    "LiveJournalError",
    "ShardFailedError",
    "ShardUnavailableError",
    "ClockError",
    "TaskFailedError",
    "InjectedFaultError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """A model object was constructed with invalid parameters.

    Raised eagerly at construction time (e.g. a negative energy demand, a
    charger with zero efficiency) so that bad configurations fail close to
    their source rather than deep inside a solver.
    """


class InfeasibleError(ReproError):
    """The problem instance admits no feasible schedule.

    For example: total charger slot capacity is smaller than the number of
    devices that must be charged in one round.
    """


class ScheduleValidationError(ReproError):
    """A schedule violates the CCS feasibility rules.

    Raised by :func:`repro.core.schedule.validate_schedule` when a schedule
    does not partition the device set, exceeds a charger's slot capacity,
    or references unknown devices/chargers.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget.

    Carries the iteration count reached so callers can report how far the
    algorithm got before giving up.
    """

    def __init__(self, message: str, iterations: int = 0) -> None:
        super().__init__(message)
        self.iterations = iterations


class SimulationError(ReproError):
    """The discrete-event testbed simulator reached an inconsistent state."""


class ServiceError(ReproError):
    """The charging-service daemon was driven into an invalid operation.

    For example: recovering a journal against a service constructed with a
    different configuration, or submitting a request whose device
    identifier is already being served.
    """


class JournalError(ServiceError):
    """The durable service journal cannot be written or adopted.

    Note that *reading* a damaged journal is not an error: recovery
    silently keeps the longest valid record prefix (see
    :meth:`repro.service.journal.Journal.read_records`).
    """


class JournalWriteError(JournalError):
    """An append to the durable journal failed at the OS level.

    Raised instead of letting a half-written record sit behind the
    checksum: the append path captures the file offset before writing and
    truncates back to it on ``OSError`` (ENOSPC, EIO, …), so the on-disk
    journal stays a valid record prefix.  The daemon that catches this is
    expected to stop and be recovered from the journal.
    """


class SnapshotError(JournalError):
    """A kernel state snapshot is unreadable, corrupt, or version-skewed.

    Raised by :func:`repro.service.snapshot.load_snapshot` when a snapshot
    file fails its checksum, carries an unsupported schema version, or is
    structurally damaged (e.g. a half-written file left by a crash during
    the snapshot write).  Recovery treats this as "snapshot does not
    exist" and falls back to the next older snapshot, then to full
    journal replay — a bad snapshot must never poison recovery.
    """


class RecoveryError(JournalError):
    """Recovery cannot proceed at all — corruption beyond repair.

    Raised when no recovery path exists: the journal's retained prefix
    starts past seq 0 (it was compacted) and no valid snapshot covers the
    gap, or a shard manifest carries an unsupported schema version.
    Unlike a torn tail (silently dropped) this is not survivable by
    replay; the operator must restore files from elsewhere.  ``ccs-serve``
    turns this into a one-line structured error and a nonzero exit.
    """


class LiveJournalError(JournalError):
    """Recovery was attempted on a journal that is still being written.

    A :class:`~repro.shard.service.ShardedService` registers its journal
    directory while open and deregisters it on :meth:`close`; recovering
    a directory another live service object in this process still owns
    would interleave two writers on the same files.  A daemon killed by a
    crash never deregisters cleanly — but its process is gone, so a fresh
    process recovering the same directory proceeds normally.
    """


class ShardFailedError(ServiceError):
    """A shard kernel died mid-call (its journal append failed or a crash
    was injected).  Carries the shard id, the shard's logical clock at
    failure, and the underlying cause so a supervisor can recover exactly
    that kernel and retry the interrupted input.
    """

    def __init__(self, shard: int, at: float, cause: BaseException) -> None:
        self.shard = int(shard)
        self.at = float(at)
        self.cause = cause
        super().__init__(
            f"shard {self.shard} failed at t={self.at!r}: "
            f"{type(cause).__name__}: {cause}"
        )


class ShardUnavailableError(ServiceError):
    """No live shard can serve a request (degraded-mode routing).

    Raised by the router when every candidate shard of a request is down,
    or when its sticky shard is down (stickiness is preserved across the
    outage, so the request is *not* silently reassigned).  The facade
    turns this into a typed ``rejected.shard_unavailable`` outcome.
    """

    def __init__(self, request_id: str, shards: Sequence[int]) -> None:
        self.request_id = str(request_id)
        self.shards = list(shards)
        super().__init__(
            f"request {self.request_id!r}: no live shard among candidates "
            f"{self.shards}"
        )


class ClockError(ServiceError):
    """The logical service clock was asked to move backwards.

    Carries both timestamps so the offending call site is identifiable
    from the error alone.
    """

    def __init__(self, target: float, current: float) -> None:
        self.target = float(target)
        self.current = float(current)
        super().__init__(
            f"cannot advance the logical clock backwards: target "
            f"{self.target!r} < current {self.current!r}"
        )


class TaskFailedError(ReproError):
    """One or more executor tasks failed terminally (after retries).

    Raised by the executors *after* every other task has finished (and
    been cached), so a partial run is never stranded.  ``failures`` maps
    the task's index in the submitted sequence to the terminal exception;
    ``results`` is the full result list with ``None`` at failed slots.
    """

    def __init__(
        self,
        failures: Mapping[int, BaseException],
        results: Sequence[Any],
    ) -> None:
        self.failures = dict(failures)
        self.results = list(results)
        parts = [
            f"task {k}: {type(exc).__name__}: {exc}"
            for k, exc in sorted(self.failures.items())
        ]
        shown = "; ".join(parts[:5])
        if len(parts) > 5:
            shown += f"; … and {len(parts) - 5} more"
        super().__init__(f"{len(parts)} task(s) failed terminally: {shown}")


class InjectedFaultError(ReproError):
    """A deliberately injected fault fired (see :mod:`repro.faults`).

    Simulates a failure no ``except OSError`` cleanup would see — e.g. a
    ``kill -9`` tearing a journal record mid-write.  Production code never
    raises this; test harnesses catch it where they would observe a dead
    process.
    """


class UnknownExperimentError(ReproError, KeyError):
    """An experiment id was requested that the runner does not know.

    Also a :class:`KeyError` because the runner registry is mapping-like;
    callers that caught ``KeyError`` from :func:`repro.experiments.run_experiment`
    keep working.
    """

    def __init__(self, unknown: Union[str, Iterable[str]], available: Iterable[str]) -> None:
        self.unknown: List[object] = (
            sorted(unknown) if isinstance(unknown, (list, tuple, set)) else [unknown]
        )
        self.available = sorted(available)
        super().__init__(
            f"unknown experiment ids {self.unknown}; available: {self.available}"
        )
