"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from bad
call sites, ``KeyError`` from internal bugs) propagate unchanged.
"""

from __future__ import annotations

from typing import Iterable, List, Union

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InfeasibleError",
    "ScheduleValidationError",
    "ConvergenceError",
    "SimulationError",
    "UnknownExperimentError",
    "ServiceError",
    "JournalError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """A model object was constructed with invalid parameters.

    Raised eagerly at construction time (e.g. a negative energy demand, a
    charger with zero efficiency) so that bad configurations fail close to
    their source rather than deep inside a solver.
    """


class InfeasibleError(ReproError):
    """The problem instance admits no feasible schedule.

    For example: total charger slot capacity is smaller than the number of
    devices that must be charged in one round.
    """


class ScheduleValidationError(ReproError):
    """A schedule violates the CCS feasibility rules.

    Raised by :func:`repro.core.schedule.validate_schedule` when a schedule
    does not partition the device set, exceeds a charger's slot capacity,
    or references unknown devices/chargers.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget.

    Carries the iteration count reached so callers can report how far the
    algorithm got before giving up.
    """

    def __init__(self, message: str, iterations: int = 0) -> None:
        super().__init__(message)
        self.iterations = iterations


class SimulationError(ReproError):
    """The discrete-event testbed simulator reached an inconsistent state."""


class ServiceError(ReproError):
    """The charging-service daemon was driven into an invalid operation.

    For example: recovering a journal against a service constructed with a
    different configuration, or submitting a request whose device
    identifier is already being served.
    """


class JournalError(ServiceError):
    """The durable service journal cannot be written or adopted.

    Note that *reading* a damaged journal is not an error: recovery
    silently keeps the longest valid record prefix (see
    :meth:`repro.service.journal.Journal.read_records`).
    """


class UnknownExperimentError(ReproError, KeyError):
    """An experiment id was requested that the runner does not know.

    Also a :class:`KeyError` because the runner registry is mapping-like;
    callers that caught ``KeyError`` from :func:`repro.experiments.run_experiment`
    keep working.
    """

    def __init__(self, unknown: Union[str, Iterable[str]], available: Iterable[str]) -> None:
        self.unknown: List[object] = (
            sorted(unknown) if isinstance(unknown, (list, tuple, set)) else [unknown]
        )
        self.available = sorted(available)
        super().__init__(
            f"unknown experiment ids {self.unknown}; available: {self.available}"
        )
