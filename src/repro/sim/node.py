"""Simulated rechargeable sensor nodes.

A :class:`SimNode` wraps a scheduling-layer :class:`~repro.core.device.Device`
with the physical state the discrete-event testbed tracks: a battery, a
locomotion energy model, a live position, and a running cost/energy ledger
from which the field-trial metrics are read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core import Device
from ..energy import Battery, LocomotionModel
from ..errors import SimulationError
from ..geometry import Point

__all__ = ["SimNode"]


@dataclass
class SimNode:
    """Physical state and ledger of one node during a field trial."""

    device: Device
    battery: Battery
    locomotion: LocomotionModel = field(default_factory=lambda: LocomotionModel(1.0))
    position: Optional[Point] = None

    # ledger — accumulated over a trial
    distance_walked: float = 0.0
    moving_cost_paid: float = 0.0
    charging_cost_paid: float = 0.0
    energy_received: float = 0.0
    sessions_attended: int = 0
    died: bool = False

    def __post_init__(self) -> None:
        if self.position is None:
            self.position = self.device.position

    @property
    def node_id(self) -> str:
        """Identifier shared with the scheduling-layer device."""
        return self.device.device_id

    @property
    def comprehensive_cost(self) -> float:
        """Total measured cost so far: charging shares + moving costs."""
        return self.charging_cost_paid + self.moving_cost_paid

    def walk(self, destination: Point, realized_length: float) -> None:
        """Complete a walk to *destination* whose realized path was *realized_length*.

        Charges the monetary moving cost at the device's rate, drains the
        locomotion energy, and flags death if the battery empties en route.
        """
        if realized_length < 0:
            raise SimulationError(f"negative path length {realized_length}")
        self.distance_walked += realized_length
        self.moving_cost_paid += self.device.moving_rate * realized_length
        needed = self.locomotion.energy_for(realized_length)
        drawn = self.battery.discharge(needed)
        if drawn < needed:
            self.died = True
        self.position = destination

    def receive_charge(self, energy: float, billed_share: float) -> None:
        """Account one session's outcome: stored energy and this node's bill."""
        if energy < 0 or billed_share < 0:
            raise SimulationError("charge energy and bill must be nonnegative")
        self.energy_received += self.battery.charge(energy)
        self.charging_cost_paid += billed_share
        self.sessions_attended += 1
