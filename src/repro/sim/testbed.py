"""The field-experiment harness: execute schedules on the simulated testbed.

This is the reproduction's substitute for the paper's physical runs on
5 chargers and 8 sensor nodes (see DESIGN.md, substitutions).  A *trial*
is a sequence of scheduling rounds; in each round

1. the world is realized (node positions/demands jittered from the nominal
   testbed topology, deterministically per ``(seed, round)``);
2. the scheduler under test produces a schedule from the *nominal*
   instance — exactly the information a real scheduler would have;
3. the discrete-event engine executes it: nodes walk realized (noisy)
   paths, pads serve sessions FIFO with realized efficiency, meters misread
   slightly, and bills are split by the active cost-sharing scheme;
4. measured per-node comprehensive costs are collected.

Noise draws are keyed by ``(round, entity)`` — never by the schedule — so
two schedulers compared under the same config face the *identical*
realized world: a paired experiment, like running both algorithms on the
same physical afternoon.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from ..core import (
    CCSInstance,
    CostSharingScheme,
    EgalitarianSharing,
    Schedule,
    validate_schedule,
)
from ..energy import Battery, LocomotionModel
from ..errors import SimulationError
from ..numeric import is_exact_zero
from ..rng import ensure_rng
from ..workloads.fieldtrial import testbed_instance
from .chargersim import ChargerStation
from .engine import Engine
from .node import SimNode
from .noise import NoiseModel
from .trace import RoundOutcome, SessionRecord

__all__ = [
    "Scheduler",
    "FieldTrialConfig",
    "TrialResult",
    "execute_round",
    "run_field_trial",
    "compare_field_trial",
]

#: A scheduling algorithm under test: instance in, schedule out.
Scheduler = Callable[[CCSInstance], Schedule]


@dataclass(frozen=True)
class FieldTrialConfig:
    """Knobs of one field trial (shared verbatim across compared schedulers)."""

    rounds: int = 10
    seed: int = 42
    scheme: CostSharingScheme = field(default_factory=EgalitarianSharing)
    noise: Optional[NoiseModel] = None
    locomotion_energy_per_meter: float = 0.5
    battery_reserve_factor: float = 1.5
    #: Per-round probability that a charger is offline (failure injection).
    #: Outages are keyed by (seed, round, charger) — identical across
    #: compared schedulers — and at least one charger always stays up.
    outage_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.outage_prob < 1.0:
            raise ValueError(
                f"outage_prob must be in [0, 1), got {self.outage_prob}"
            )

    def noise_model(self) -> NoiseModel:
        """The configured noise model, defaulting to calibrated field noise."""
        if self.noise is not None:
            return self.noise
        return NoiseModel(seed=self.seed)


@dataclass
class TrialResult:
    """All rounds of one scheduler's field trial."""

    scheduler_name: str
    rounds: List[RoundOutcome] = field(default_factory=list)

    @property
    def round_costs(self) -> List[float]:
        """Measured comprehensive cost of each round."""
        return [r.total_cost for r in self.rounds]

    @property
    def mean_cost(self) -> float:
        """Average per-round comprehensive cost over the trial."""
        costs = self.round_costs
        if not costs:
            raise ValueError("trial has no rounds")
        return sum(costs) / len(costs)

    @property
    def total_deaths(self) -> int:
        """Nodes that ran out of battery at any point during the trial."""
        return sum(len(r.deaths) for r in self.rounds)


def _build_nodes(instance: CCSInstance, config: FieldTrialConfig) -> Dict[str, SimNode]:
    loco = LocomotionModel(config.locomotion_energy_per_meter)
    nodes = {}
    for device in instance.devices:
        capacity = device.demand * (1.0 + config.battery_reserve_factor)
        level = capacity - device.demand  # headroom equals this round's demand
        nodes[device.device_id] = SimNode(
            device=device,
            battery=Battery(capacity=capacity, level=level),
            locomotion=loco,
        )
    return nodes


def execute_round(
    instance: CCSInstance,
    schedule: Schedule,
    config: FieldTrialConfig,
    round_index: int,
    nodes: Optional[Dict[str, SimNode]] = None,
) -> RoundOutcome:
    """Run one scheduled round on the discrete-event testbed.

    Returns the measured :class:`~repro.sim.trace.RoundOutcome`; raises
    :class:`~repro.errors.SimulationError` if the event system wedges (a
    session that never starts, time running backwards, ...).

    *nodes* lets a multi-round caller (the lifecycle simulation) thread
    persistent node state through successive rounds; by default each round
    gets fresh nodes whose battery headroom equals the round's demand.
    """
    validate_schedule(schedule, instance)
    engine = Engine()
    noise = config.noise_model()
    if nodes is None:
        nodes = _build_nodes(instance, config)
    else:
        missing = {d.device_id for d in instance.devices} - set(nodes)
        if missing:
            raise SimulationError(f"persistent nodes missing for devices {sorted(missing)}")
    stations = {
        c.charger_id: ChargerStation(charger=c, engine=engine) for c in instance.chargers
    }
    outcome = RoundOutcome(round_index=round_index)
    # Ledger snapshot so persistent nodes report per-round deltas.
    cost_before = {n.node_id: n.comprehensive_cost for n in nodes.values()}
    energy_before = {n.node_id: n.energy_received for n in nodes.values()}
    dead_before = {n.node_id for n in nodes.values() if n.died}

    for session in schedule.sessions:
        charger = instance.chargers[session.charger]
        station = stations[charger.charger_id]
        members = sorted(session.members)
        member_nodes = [nodes[instance.devices[i].device_id] for i in members]
        demands = {n.node_id: instance.devices[i].demand for n, i in zip(member_nodes, members)}

        # Nominal-price shares fix each member's *proportion* of the bill;
        # the realized bill is split in those proportions (budget balance
        # on measured money).
        nominal_shares = config.scheme.shares(instance, members, session.charger)
        nominal_price = sum(nominal_shares.values())
        proportions = {
            instance.devices[i].device_id: (
                nominal_shares[i] / nominal_price if nominal_price > 0 else 1.0 / len(members)
            )
            for i in members
        }

        pending = {n.node_id for n in member_nodes}

        def make_arrival(node: SimNode, dev_index: int, pending=pending,
                         station=station, charger=charger, member_nodes=member_nodes,
                         demands=demands, proportions=proportions):
            straight = instance.distance(dev_index, instance.charger_index(charger.charger_id))
            realized = noise.keyed("travel", round_index, node.node_id).realized_path(straight)

            def arrive() -> None:
                node.walk(charger.position, realized)
                if node.died:
                    outcome.deaths.append(node.node_id)
                pending.discard(node.node_id)
                if pending:
                    return
                # Last member arrived: queue the session on the pad.
                station.submit(
                    lambda: _start_session(
                        engine, station, charger, member_nodes, demands,
                        proportions, noise, round_index, outcome,
                    )
                )

            travel_time = realized / node.device.speed
            engine.schedule(travel_time, arrive)

        for node, dev_index in zip(member_nodes, members):
            make_arrival(node, dev_index)

    engine.run()

    expected_sessions = schedule.n_sessions
    if len(outcome.sessions) != expected_sessions:
        raise SimulationError(
            f"round {round_index}: {len(outcome.sessions)} of "
            f"{expected_sessions} sessions completed"
        )

    for device in instance.devices:
        node = nodes[device.device_id]
        outcome.node_costs[node.node_id] = (
            node.comprehensive_cost - cost_before[node.node_id]
        )
        outcome.node_energy[node.node_id] = (
            node.energy_received - energy_before[node.node_id]
        )
    # Deaths recorded on arrival events can double-count persistent nodes;
    # keep only newly-dead node ids, once each.
    outcome.deaths = sorted(
        {n for n in outcome.deaths if n not in dead_before}
    )
    outcome.makespan = engine.now
    return outcome


def _start_session(
    engine: Engine,
    station: ChargerStation,
    charger,
    member_nodes: List[SimNode],
    demands: Dict[str, float],
    proportions: Dict[str, float],
    noise: NoiseModel,
    round_index: int,
    outcome: RoundOutcome,
):
    """Session-start physics; returns ``(duration, on_complete)`` for the pad."""
    start_time = engine.now
    eff = noise.keyed("eff", round_index, station.station_id).realized_efficiency(
        charger.efficiency
    )
    total_demand = sum(demands.values())
    emitted = total_demand / eff
    if charger.service_discipline == "concurrent":
        duration = (max(demands.values()) / eff) / charger.transmit_power
    else:
        duration = emitted / charger.transmit_power
    metered = noise.keyed("meter", round_index, station.station_id).metered_energy(emitted)
    billed = charger.tariff.session_price(metered)

    def on_complete() -> None:
        for node in member_nodes:
            node.receive_charge(demands[node.node_id], billed * proportions[node.node_id])
        station.record_session(emitted, billed)
        outcome.sessions.append(
            SessionRecord(
                charger_id=station.station_id,
                member_ids=tuple(n.node_id for n in member_nodes),
                start=start_time,
                end=engine.now,
                emitted_energy=emitted,
                billed_price=billed,
                realized_efficiency=eff,
            )
        )

    return duration, on_complete


def _online_chargers(instance: CCSInstance, config: FieldTrialConfig, round_index: int):
    """Chargers surviving this round's outage draw (never empty).

    Outage draws are keyed per (seed, round, charger) so every scheduler
    compared under one config loses the same pads in the same rounds.
    """
    if is_exact_zero(config.outage_prob):
        return list(instance.chargers)
    survivors = []
    for charger in instance.chargers:
        digest = zlib.crc32(charger.charger_id.encode())
        rng = ensure_rng(
            (config.seed * 101_111 + round_index * 7919 + digest) % (2**31)
        )
        if rng.uniform() >= config.outage_prob:
            survivors.append(charger)
    if not survivors:  # total blackout would deadlock the round; keep one pad
        survivors = [instance.chargers[0]]
    return survivors


def run_field_trial(
    scheduler: Scheduler,
    config: FieldTrialConfig = FieldTrialConfig(),
    name: str = "scheduler",
) -> TrialResult:
    """Run *scheduler* over all configured rounds of the testbed trial."""
    result = TrialResult(scheduler_name=name)
    for r in range(config.rounds):
        world_rng = ensure_rng(config.seed * 100_003 + r)
        instance = testbed_instance(world_rng)
        chargers = _online_chargers(instance, config, r)
        if len(chargers) < instance.n_chargers:
            instance = CCSInstance(
                devices=list(instance.devices),
                chargers=chargers,
                mobility=instance.mobility,
                field_area=instance.field_area,
            )
        schedule = scheduler(instance)
        result.rounds.append(execute_round(instance, schedule, config, r))
    return result


def compare_field_trial(
    schedulers: Mapping[str, Scheduler],
    config: FieldTrialConfig = FieldTrialConfig(),
) -> Dict[str, TrialResult]:
    """Run several schedulers through the *same* realized worlds (paired design)."""
    return {
        name: run_field_trial(fn, config, name=name) for name, fn in schedulers.items()
    }
