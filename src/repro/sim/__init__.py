"""Discrete-event testbed simulator — the field-experiment substitute."""

from .chargersim import ChargerStation
from .lifecycle import LifecycleConfig, LifecycleResult, run_lifecycle
from .engine import Engine, EventHandle
from .metrics import improvement_pct, paired_improvements, utilization_summary
from .node import SimNode
from .noise import NoiseModel
from .testbed import (
    FieldTrialConfig,
    Scheduler,
    TrialResult,
    compare_field_trial,
    execute_round,
    run_field_trial,
)
from .trace import RoundOutcome, SessionRecord

__all__ = [
    "Engine",
    "LifecycleConfig",
    "LifecycleResult",
    "run_lifecycle",
    "EventHandle",
    "ChargerStation",
    "SimNode",
    "NoiseModel",
    "SessionRecord",
    "RoundOutcome",
    "Scheduler",
    "FieldTrialConfig",
    "TrialResult",
    "execute_round",
    "run_field_trial",
    "compare_field_trial",
    "improvement_pct",
    "paired_improvements",
    "utilization_summary",
]
