"""Measurement and process noise for the field-trial simulator.

The paper's field experiment differs from its simulations exactly where
the physical world intrudes: WPT efficiency wobbles with pad alignment,
energy meters misread, travel paths are not perfectly straight.  The noise
model injects those effects so that scheduling decisions made on *nominal*
parameters are billed and timed on *realized* ones — the gap the field
experiment (Table 3) measures.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..numeric import is_exact_zero
from ..rng import RandomState, ensure_rng

__all__ = ["NoiseModel"]


@dataclass
class NoiseModel:
    """Multiplicative lognormal-ish perturbations around nominal values.

    Each factor is ``max(floor, 1 + N(0, sigma))`` — mean-one Gaussian
    relative noise, floored away from zero so a realized efficiency or
    distance can never go nonpositive.

    Parameters
    ----------
    efficiency_sigma:
        Relative spread of realized WPT efficiency per session
        (pad alignment, coil temperature).
    metering_sigma:
        Relative spread of the billed emitted energy vs. true emitted
        energy (meter accuracy).
    travel_sigma:
        Relative spread of realized path length vs. straight-line distance
        (obstacle avoidance); applied one-sidedly — paths only get longer.
    """

    efficiency_sigma: float = 0.05
    metering_sigma: float = 0.02
    travel_sigma: float = 0.08
    seed: RandomState = None

    _FLOOR = 0.05

    def __post_init__(self) -> None:
        for name in ("efficiency_sigma", "metering_sigma", "travel_sigma"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be nonnegative")
        self._rng = ensure_rng(self.seed)

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """A model that perturbs nothing — simulations degenerate to the ideal."""
        return cls(efficiency_sigma=0.0, metering_sigma=0.0, travel_sigma=0.0, seed=0)

    def keyed(self, *key) -> "NoiseModel":
        """A copy whose draws are a deterministic function of *key*.

        The field-trial harness uses this for **paired comparisons**: the
        travel stretch of ``node3`` in round 7 is keyed by
        ``("travel", 7, "node3")``, so every scheduler faces the identical
        realized world and cost differences are attributable to scheduling
        alone.  Requires this model to have an integer base seed.
        """
        if not isinstance(self.seed, (int, np.integer)):
            raise ConfigurationError(
                "keyed() needs an integer base seed on the noise model"
            )
        digest = zlib.crc32(repr(key).encode()) & 0x7FFFFFFF
        return NoiseModel(
            efficiency_sigma=self.efficiency_sigma,
            metering_sigma=self.metering_sigma,
            travel_sigma=self.travel_sigma,
            seed=int(self.seed) * 0x9E3779B1 % (2**31) ^ digest,
        )

    def _factor(self, sigma: float) -> float:
        if is_exact_zero(sigma):
            return 1.0
        return max(self._FLOOR, 1.0 + float(self._rng.normal(0.0, sigma)))

    def realized_efficiency(self, nominal: float) -> float:
        """Session efficiency actually achieved (clipped to (0, 1])."""
        return min(1.0, nominal * self._factor(self.efficiency_sigma))

    def metered_energy(self, true_energy: float) -> float:
        """Energy the charger's meter reports (and bills) for *true_energy*."""
        return true_energy * self._factor(self.metering_sigma)

    def realized_path(self, straight_line: float) -> float:
        """Path length actually walked for a straight-line *distance*."""
        if is_exact_zero(self.travel_sigma):
            return straight_line
        stretch = abs(float(self._rng.normal(0.0, self.travel_sigma)))
        return straight_line * (1.0 + stretch)
