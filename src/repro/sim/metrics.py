"""Summary statistics over field-trial results."""

from __future__ import annotations

from typing import Dict, List

from .testbed import TrialResult

__all__ = ["improvement_pct", "paired_improvements", "utilization_summary"]


def improvement_pct(baseline: float, candidate: float) -> float:
    """Percentage by which *candidate* improves on (is below) *baseline*.

    Positive when the candidate is cheaper; the statistic behind the
    paper's "outperforms the noncooperation algorithm by 42.9%".
    """
    if baseline <= 0:
        raise ValueError(f"baseline cost must be positive, got {baseline}")
    return 100.0 * (baseline - candidate) / baseline


def paired_improvements(
    baseline: TrialResult, candidate: TrialResult
) -> List[float]:
    """Per-round improvement percentages between two paired trials.

    Both trials must have run the same number of rounds (the harness
    guarantees they faced identical worlds when sharing a config).
    """
    if len(baseline.rounds) != len(candidate.rounds):
        raise ValueError(
            f"trials have different lengths: {len(baseline.rounds)} vs "
            f"{len(candidate.rounds)}"
        )
    return [
        improvement_pct(b, c)
        for b, c in zip(baseline.round_costs, candidate.round_costs)
    ]


def utilization_summary(result: TrialResult) -> Dict[str, float]:
    """Aggregate session statistics of one trial, for reporting."""
    n_sessions = sum(r.n_sessions for r in result.rounds)
    makespans = [r.makespan for r in result.rounds]
    sizes = [len(s.member_ids) for r in result.rounds for s in r.sessions]
    return {
        "rounds": float(len(result.rounds)),
        "sessions": float(n_sessions),
        "mean_makespan_s": sum(makespans) / len(makespans) if makespans else 0.0,
        "mean_group_size": sum(sizes) / len(sizes) if sizes else 0.0,
        "deaths": float(result.total_deaths),
    }
