"""Continuous WRSN operation: the lifecycle simulation (extension).

The paper's field experiment measures isolated scheduling rounds.  A real
deployment runs continuously: nodes drain while sensing, request charging
when their battery falls below a threshold, and the scheduler serves each
wave of requests.  This module simulates that loop on top of the testbed
machinery, with **persistent node state across rounds** — the battery a
node burns walking to a pad this round is energy it will miss next round.

Metrics of interest beyond cost: *survival* (did any node die before
reaching a pad?) and *service latency* (how long requests wait), both of
which reward schedulers that keep nodes near their chargers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import CCSInstance, Device, Schedule
from ..energy import Battery, ConstantPowerConsumption, ConsumptionModel, LocomotionModel
from ..errors import ConfigurationError
from ..rng import ensure_rng
from ..workloads.fieldtrial import testbed_chargers, testbed_devices
from .node import SimNode
from .testbed import FieldTrialConfig, Scheduler, execute_round
from .trace import RoundOutcome

__all__ = ["LifecycleConfig", "LifecycleResult", "run_lifecycle"]


@dataclass(frozen=True)
class LifecycleConfig:
    """Parameters of a continuous-operation simulation."""

    epochs: int = 20
    epoch_seconds: float = 1800.0
    soc_request_threshold: float = 0.5
    target_soc: float = 0.95
    sensing_power: float = 0.4
    battery_capacity: float = 8000.0
    initial_soc: float = 0.9
    seed: int = 0
    trial: FieldTrialConfig = field(default_factory=lambda: FieldTrialConfig(rounds=1))

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.epoch_seconds <= 0:
            raise ConfigurationError("epoch_seconds must be positive")
        if not 0.0 < self.soc_request_threshold < self.target_soc <= 1.0:
            raise ConfigurationError(
                "need 0 < soc_request_threshold < target_soc <= 1"
            )
        if not 0.0 < self.initial_soc <= 1.0:
            raise ConfigurationError("initial_soc must be in (0, 1]")


@dataclass
class LifecycleResult:
    """Everything measured over one lifecycle run."""

    rounds: List[RoundOutcome] = field(default_factory=list)
    requests_per_epoch: List[int] = field(default_factory=list)
    deaths: List[str] = field(default_factory=list)
    total_cost: float = 0.0
    total_energy_delivered: float = 0.0

    @property
    def survival_rate(self) -> float:
        """Fraction of nodes alive at the end (dead nodes counted once)."""
        return 1.0 - len(set(self.deaths)) / self._n_nodes if self._n_nodes else 1.0

    _n_nodes: int = 0

    @property
    def charging_rounds(self) -> int:
        """Epochs in which at least one node requested charging."""
        return len(self.rounds)


def run_lifecycle(
    scheduler: Scheduler,
    config: LifecycleConfig = LifecycleConfig(),
    consumption: Optional[ConsumptionModel] = None,
) -> LifecycleResult:
    """Simulate continuous operation of the 5-charger / 8-node testbed.

    Each epoch: nodes drain ``consumption`` for ``epoch_seconds``; nodes
    below the state-of-charge threshold request charging; *scheduler*
    serves the requesting set on the DES testbed with persistent batteries.
    Nodes that die (battery empty mid-walk or mid-epoch) stay dead.
    """
    drain = consumption or ConstantPowerConsumption(config.sensing_power)
    world_rng = ensure_rng(config.seed)
    chargers = testbed_chargers()
    loco = LocomotionModel(config.trial.locomotion_energy_per_meter)

    nodes: Dict[str, SimNode] = {}
    for proto in testbed_devices(rng=world_rng, demand_jitter=0.0, position_jitter=0.0):
        nodes[proto.device_id] = SimNode(
            device=proto,
            battery=Battery(
                capacity=config.battery_capacity,
                level=config.battery_capacity * config.initial_soc,
            ),
            locomotion=loco,
        )

    result = LifecycleResult()
    result._n_nodes = len(nodes)

    for epoch in range(config.epochs):
        # 1. Sensing drain; nodes that empty out die.
        for node in nodes.values():
            if node.died:
                continue
            needed = drain.energy_over(config.epoch_seconds)
            drawn = node.battery.discharge(needed)
            if drawn < needed:
                node.died = True
                result.deaths.append(node.node_id)

        # 2. Collect charging requests from live nodes below threshold.
        requesting = [
            node
            for node in nodes.values()
            if not node.died
            and node.battery.state_of_charge < config.soc_request_threshold
        ]
        result.requests_per_epoch.append(len(requesting))
        if not requesting:
            continue

        # 3. Build the round's instance from *current* node state.
        devices = [
            Device(
                device_id=node.node_id,
                position=node.position,
                demand=max(
                    1.0,
                    config.target_soc * node.battery.capacity - node.battery.level,
                ),
                moving_rate=node.device.moving_rate,
                speed=node.device.speed,
            )
            for node in sorted(requesting, key=lambda n: n.node_id)
        ]
        instance = CCSInstance(devices=devices, chargers=chargers)

        # Rebind round devices onto the persistent nodes (demands changed).
        round_nodes = {}
        for device in devices:
            persistent = nodes[device.device_id]
            persistent.device = device
            round_nodes[device.device_id] = persistent

        # 4. Schedule and execute with persistent state.
        schedule: Schedule = scheduler(instance)
        outcome = execute_round(
            instance,
            schedule,
            config.trial,
            round_index=epoch,
            nodes=round_nodes,
        )
        result.rounds.append(outcome)
        result.total_cost += outcome.total_cost
        result.total_energy_delivered += sum(outcome.node_energy.values())
        result.deaths.extend(outcome.deaths)

    return result
