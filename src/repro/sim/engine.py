"""A minimal discrete-event simulation engine.

The field-experiment substitute (see DESIGN.md) needs ordered, timestamped
execution of travel, queueing, and charging-session events.  This engine is
deliberately small: a priority queue of ``(time, sequence, callback)``
entries with deterministic FIFO tie-breaking, plus the invariant checks
that keep simulated time honest.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SimulationError

__all__ = ["EventHandle", "Engine"]


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`, usable to cancel."""

    _entry: _QueueEntry

    @property
    def time(self) -> float:
        """Scheduled firing time of the event."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before firing."""
        return self._entry.cancelled


class Engine:
    """Event loop with monotonically advancing simulated time.

    Events scheduled for the same instant fire in scheduling order (FIFO),
    which makes simulations reproducible regardless of dict/hash ordering.
    """

    def __init__(self) -> None:
        self._queue: List[_QueueEntry] = []
        self._seq = 0
        self._now = 0.0
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* to fire ``delay`` seconds from now.

        Negative delays are rejected — time travel in a DES is always a
        bug at the call site.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        entry = _QueueEntry(self._now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* at absolute simulated *time* (must be >= now)."""
        return self.schedule(time - self._now, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event; firing a cancelled event is a no-op."""
        handle._entry.cancelled = True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Execute events until the queue drains or simulated time passes *until*.

        ``max_events`` guards against non-terminating event chains; hitting
        it raises :class:`~repro.errors.SimulationError` rather than hanging
        the experiment.
        """
        executed = 0
        while self._queue:
            if executed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — runaway event chain?"
                )
            entry = self._queue[0]
            if until is not None and entry.time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            if entry.time < self._now:
                raise SimulationError(
                    f"event queue corrupted: event at t={entry.time} < now={self._now}"
                )
            self._now = entry.time
            self._fired += 1
            executed += 1
            entry.callback()
        if until is not None:
            self._now = max(self._now, until)
