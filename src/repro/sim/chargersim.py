"""Simulated charging stations with FIFO session queues.

A physical pad serves one session at a time; when a schedule assigns a
charger several sessions, later groups wait.  :class:`ChargerStation`
owns that queueing discipline and the per-station utilization ledger.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Tuple

from ..errors import SimulationError
from ..wpt import Charger
from .engine import Engine

__all__ = ["ChargerStation", "SessionStart"]

#: Callback fired when the pad frees up for a waiting session.  It performs
#: the session-start physics (realized efficiency, billing computation) and
#: returns ``(duration_seconds, on_complete)``; the station holds the pad
#: for that duration, then fires ``on_complete`` before serving the next
#: session in line.
SessionStart = Callable[[], Tuple[float, Callable[[], None]]]


@dataclass
class ChargerStation:
    """One pad's runtime state: busy flag, waiting sessions, usage ledger."""

    charger: Charger
    engine: Engine

    busy: bool = False
    _waiting: Deque[SessionStart] = field(default_factory=deque)
    sessions_served: int = 0
    busy_seconds: float = 0.0
    energy_emitted: float = 0.0
    revenue: float = 0.0

    @property
    def station_id(self) -> str:
        """Identifier shared with the scheduling-layer charger."""
        return self.charger.charger_id

    @property
    def queue_length(self) -> int:
        """Sessions currently waiting for the pad."""
        return len(self._waiting)

    def submit(self, on_start: SessionStart) -> None:
        """Enqueue a session; it starts as soon as the pad is free (FIFO)."""
        self._waiting.append(on_start)
        self._try_start()

    def record_session(self, emitted: float, revenue: float) -> None:
        """Add one completed session to the usage ledger."""
        self.sessions_served += 1
        self.energy_emitted += emitted
        self.revenue += revenue

    def _try_start(self) -> None:
        if self.busy or not self._waiting:
            return
        on_start = self._waiting.popleft()
        self.busy = True
        duration, on_complete = on_start()
        if duration < 0:
            raise SimulationError(f"session reported negative duration {duration}")
        self.busy_seconds += duration

        def finish() -> None:
            if not self.busy:
                raise SimulationError(
                    f"station {self.station_id}: finish event with no running session"
                )
            on_complete()
            self.busy = False
            self._try_start()

        self.engine.schedule(duration, finish)
