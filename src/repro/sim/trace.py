"""Timestamped records produced by the field-trial simulator.

The experiment layer consumes these instead of poking at simulator
internals, so the simulator can evolve without breaking reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["SessionRecord", "RoundOutcome"]


@dataclass(frozen=True)
class SessionRecord:
    """One executed charging session, with realized (not nominal) physics."""

    charger_id: str
    member_ids: Tuple[str, ...]
    start: float
    end: float
    emitted_energy: float
    billed_price: float
    realized_efficiency: float

    @property
    def duration(self) -> float:
        """Seconds the session occupied the pad."""
        return self.end - self.start


@dataclass
class RoundOutcome:
    """Everything measured in one scheduling round of a field trial."""

    round_index: int
    node_costs: Dict[str, float] = field(default_factory=dict)
    node_energy: Dict[str, float] = field(default_factory=dict)
    sessions: List[SessionRecord] = field(default_factory=list)
    makespan: float = 0.0
    deaths: List[str] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        """Measured comprehensive cost of the round, summed over nodes."""
        return sum(self.node_costs.values())

    @property
    def n_sessions(self) -> int:
        """Number of charging sessions executed."""
        return len(self.sessions)
