"""Named simulation scenarios — the reproduction's "Table 1".

The paper body (and thus its exact parameter table) is unavailable, so
this module *is* the authoritative parameter record for the reproduction:
every experiment imports its scenario from here, and the Table 1 benchmark
prints this table.  See DESIGN.md for the reconstruction rationale.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .generators import WorkloadSpec

__all__ = [
    "DEFAULT_SPEC",
    "SMALL_SCALE_SPEC",
    "LARGE_SCALE_SPEC",
    "scenario",
    "SCENARIOS",
    "parameter_table",
]

#: Simulation defaults: mid-size field, moderate cooperation incentive.
DEFAULT_SPEC = WorkloadSpec()

#: Small-scale setting where the exact optimum is computable (Table 2).
#: base_price / moving_rate / tariff_exponent were calibrated so that the
#: reconstruction reproduces the abstract's Table-2 statistics (CCSA ~7%
#: above optimal, ~27% below noncooperation); see EXPERIMENTS.md.
SMALL_SCALE_SPEC = WorkloadSpec(
    n_devices=10,
    n_chargers=3,
    side=200.0,
    capacity=5,
    base_price=25.0,
    moving_rate=0.1,
    tariff_exponent=0.95,
)

#: Large-scale setting exercising CCSGA (Figs 5 and 9).
LARGE_SCALE_SPEC = WorkloadSpec(
    n_devices=100,
    n_chargers=10,
    side=500.0,
    capacity=8,
)

SCENARIOS: Dict[str, WorkloadSpec] = {
    "default": DEFAULT_SPEC,
    "small": SMALL_SCALE_SPEC,
    "large": LARGE_SCALE_SPEC,
}


def scenario(name: str) -> WorkloadSpec:
    """Look up a named scenario; raises ``KeyError`` with the valid names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def parameter_table() -> List[Tuple[str, str, str, str]]:
    """Rows of (parameter, default, small, large) for the Table 1 report."""
    fields = [
        ("Devices n", "n_devices", ""),
        ("Chargers m", "n_chargers", ""),
        ("Field side", "side", "m"),
        ("Device layout", "device_layout", ""),
        ("Charger layout", "charger_layout", ""),
        ("Demand model", "demand_model", ""),
        ("Demand range", None, "kJ"),
        ("Moving rate", "moving_rate", "$/m"),
        ("Speed", "speed", "m/s"),
        ("Session base price", "base_price", "$"),
        ("Unit energy price", "unit_price", "$/J"),
        ("Tariff exponent", "tariff_exponent", ""),
        ("WPT efficiency", "efficiency", ""),
        ("Transmit power", "transmit_power", "W"),
        ("Slot capacity", "capacity", "devices"),
    ]
    rows = []
    for label, attr, unit in fields:
        cells = []
        for spec in (DEFAULT_SPEC, SMALL_SCALE_SPEC, LARGE_SCALE_SPEC):
            if attr is None:  # demand range pseudo-field
                cells.append(f"[{spec.demand_low / 1e3:g}, {spec.demand_high / 1e3:g}]")
            else:
                value = getattr(spec, attr)
                cells.append("unbounded" if value is None else f"{value}")
        name = f"{label} [{unit}]" if unit else label
        rows.append((name, cells[0], cells[1], cells[2]))
    return rows
