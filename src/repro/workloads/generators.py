"""Synthetic CCS instance generators.

The paper's simulations sweep instance parameters (device count, charger
count, field size, prices).  This module is the single factory those
sweeps draw from, so that every experiment shares one definition of "a
random instance with these parameters" and differs only in its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..energy import lognormal_demands, uniform_demands
from ..errors import ConfigurationError
from ..geometry import Field, cluster_deployment, grid_deployment, uniform_deployment
from ..mobility import LinearMobility, MobilityModel
from ..rng import RandomState, ensure_rng
from ..wpt import Charger, PowerLawTariff
from ..core import CCSInstance, Device

__all__ = ["WorkloadSpec", "generate_instance", "quick_instance"]

_DEVICE_LAYOUTS = ("uniform", "cluster")
_CHARGER_LAYOUTS = ("grid", "uniform")
_DEMAND_MODELS = ("uniform", "lognormal")


@dataclass(frozen=True)
class WorkloadSpec:
    """Every knob of a synthetic CCS instance, with paper-style defaults.

    Defaults follow the convention of the WRSN cooperative-charging
    literature (the paper body being unavailable, exact values are our
    reconstruction — see DESIGN.md): a few dozen devices on a few-hundred-
    meter square field, demands of tens of kilojoules, a session base fee
    sized so grouping 2–5 devices is clearly worthwhile.
    """

    n_devices: int = 30
    n_chargers: int = 5
    side: float = 300.0
    device_layout: str = "uniform"
    charger_layout: str = "grid"
    demand_model: str = "uniform"
    demand_low: float = 10e3
    demand_high: float = 40e3
    demand_mean: float = 25e3  # lognormal model only
    moving_rate: float = 0.05
    speed: float = 1.5
    base_price: float = 30.0
    unit_price: float = 2e-3
    tariff_exponent: float = 0.9
    efficiency: float = 0.8
    transmit_power: float = 5.0
    capacity: Optional[int] = 6
    heterogeneous_prices: bool = True

    def __post_init__(self) -> None:
        if self.n_devices < 1 or self.n_chargers < 1:
            raise ConfigurationError("need at least one device and one charger")
        if self.device_layout not in _DEVICE_LAYOUTS:
            raise ConfigurationError(
                f"device_layout must be one of {_DEVICE_LAYOUTS}, got {self.device_layout!r}"
            )
        if self.charger_layout not in _CHARGER_LAYOUTS:
            raise ConfigurationError(
                f"charger_layout must be one of {_CHARGER_LAYOUTS}, got {self.charger_layout!r}"
            )
        if self.demand_model not in _DEMAND_MODELS:
            raise ConfigurationError(
                f"demand_model must be one of {_DEMAND_MODELS}, got {self.demand_model!r}"
            )

    def with_(self, **changes) -> "WorkloadSpec":
        """A copy with the given fields replaced — sweep-friendly."""
        return replace(self, **changes)


def generate_instance(
    spec: WorkloadSpec,
    seed: RandomState = None,
    mobility: Optional[MobilityModel] = None,
) -> CCSInstance:
    """Materialize one random instance from *spec*.

    A fixed integer *seed* makes the instance fully deterministic; separate
    RNG streams feed positions, demands, and prices so changing one
    dimension of the spec does not scramble the others.
    """
    gen = ensure_rng(seed)
    pos_rng, demand_rng, price_rng = (
        ensure_rng(int(s)) for s in gen.integers(0, 2**31 - 1, size=3)
    )
    area = Field.square(spec.side)

    if spec.device_layout == "uniform":
        device_points = uniform_deployment(area, spec.n_devices, pos_rng)
    else:
        device_points = cluster_deployment(area, spec.n_devices, rng=pos_rng)

    if spec.charger_layout == "grid":
        charger_points = grid_deployment(area, spec.n_chargers)
    else:
        charger_points = uniform_deployment(area, spec.n_chargers, pos_rng)

    if spec.demand_model == "uniform":
        demands = uniform_demands(spec.n_devices, spec.demand_low, spec.demand_high, demand_rng)
    else:
        demands = lognormal_demands(spec.n_devices, spec.demand_mean, rng=demand_rng)

    devices = [
        Device(
            device_id=f"d{i:03d}",
            position=p,
            demand=d,
            moving_rate=spec.moving_rate,
            speed=spec.speed,
        )
        for i, (p, d) in enumerate(zip(device_points, demands))
    ]

    chargers: List[Charger] = []
    for j, q in enumerate(charger_points):
        if spec.heterogeneous_prices:
            base = spec.base_price * float(price_rng.uniform(0.8, 1.2))
            unit = spec.unit_price * float(price_rng.uniform(0.8, 1.2))
        else:
            base, unit = spec.base_price, spec.unit_price
        chargers.append(
            Charger(
                charger_id=f"c{j:02d}",
                position=q,
                tariff=PowerLawTariff(base=base, unit=unit, exponent=spec.tariff_exponent),
                efficiency=spec.efficiency,
                transmit_power=spec.transmit_power,
                capacity=spec.capacity,
            )
        )

    return CCSInstance(
        devices=devices,
        chargers=chargers,
        mobility=mobility if mobility is not None else LinearMobility(),
        field_area=area,
    )


def quick_instance(
    n_devices: int = 20,
    n_chargers: int = 4,
    seed: RandomState = None,
    **spec_overrides,
) -> CCSInstance:
    """One-call instance factory for examples and interactive use.

    Any :class:`WorkloadSpec` field can be overridden by keyword, e.g.
    ``quick_instance(50, 8, seed=1, side=500.0, capacity=None)``.
    """
    spec = WorkloadSpec(n_devices=n_devices, n_chargers=n_chargers, **spec_overrides)
    return generate_instance(spec, seed=seed)
