"""The field-experiment topology: 5 chargers, 8 rechargeable sensor nodes.

The paper evaluates on a physical testbed of this size [abstract].  We do
not have the authors' lab floor plan, so this module fixes a concrete
30 m × 20 m indoor layout in that spirit (see DESIGN.md, substitutions):
chargers along the room, nodes scattered among them, heterogeneous demands
at the scale a sensor-node battery holds.  The discrete-event simulator
(:mod:`repro.sim`) then runs scheduling rounds over this topology with
measurement noise, standing in for the physical runs.

Everything here is deterministic; per-trial randomness (battery states,
noise) is injected by the field-trial harness.
"""

from __future__ import annotations

from typing import List

from ..core import CCSInstance, Device
from ..geometry import Field, Point
from ..mobility import LinearMobility
from ..rng import RandomState, ensure_rng
from ..wpt import Charger, PowerLawTariff

__all__ = [
    "TESTBED_FIELD",
    "N_TESTBED_CHARGERS",
    "N_TESTBED_NODES",
    "testbed_chargers",
    "testbed_devices",
    "testbed_instance",
]

#: Indoor deployment area of the reproduction testbed.
TESTBED_FIELD = Field(30.0, 20.0)

N_TESTBED_CHARGERS = 5
N_TESTBED_NODES = 8

#: Charger pads: four near the corners, one in the middle of the room.
_CHARGER_POSITIONS = [
    Point(4.0, 4.0),
    Point(26.0, 4.0),
    Point(4.0, 16.0),
    Point(26.0, 16.0),
    Point(15.0, 10.0),
]

#: Nominal node positions: scattered work sites between the pads.
_NODE_POSITIONS = [
    Point(2.0, 10.0),
    Point(8.0, 7.0),
    Point(12.0, 14.0),
    Point(14.0, 4.0),
    Point(18.0, 12.0),
    Point(21.0, 6.0),
    Point(24.0, 11.0),
    Point(28.0, 18.0),
]

#: Nominal per-round demands in joules (heterogeneous small-node batteries).
_NODE_DEMANDS = [900.0, 1400.0, 1100.0, 2000.0, 800.0, 1600.0, 1200.0, 1800.0]


def testbed_chargers() -> List[Charger]:
    """The five service points, with mildly heterogeneous tariffs.

    The central charger is cheaper per joule but has a higher base fee —
    the configuration where grouping decisions are most interesting.
    """
    tariffs = [
        PowerLawTariff(base=8.0, unit=6e-3, exponent=0.9),
        PowerLawTariff(base=9.0, unit=5.5e-3, exponent=0.9),
        PowerLawTariff(base=8.5, unit=6.5e-3, exponent=0.9),
        PowerLawTariff(base=9.5, unit=5e-3, exponent=0.9),
        PowerLawTariff(base=12.0, unit=4e-3, exponent=0.9),
    ]
    return [
        Charger(
            charger_id=f"pad{j}",
            position=pos,
            tariff=tariff,
            efficiency=0.75,
            transmit_power=5.0,
            capacity=4,
        )
        for j, (pos, tariff) in enumerate(zip(_CHARGER_POSITIONS, tariffs))
    ]


def testbed_devices(
    rng: RandomState = None,
    demand_jitter: float = 0.15,
    position_jitter: float = 1.0,
) -> List[Device]:
    """The eight nodes, optionally perturbed around their nominal state.

    Each field trial jitters demands (battery state differs per round) and
    positions (nodes wander between rounds); ``rng=None`` with zero jitter
    reproduces the nominal topology exactly.
    """
    gen = ensure_rng(rng)
    devices = []
    for k, (pos, demand) in enumerate(zip(_NODE_POSITIONS, _NODE_DEMANDS)):
        d = demand
        p = pos
        if demand_jitter > 0:
            d = float(demand * gen.uniform(1.0 - demand_jitter, 1.0 + demand_jitter))
        if position_jitter > 0:
            p = TESTBED_FIELD.clamp(
                Point(
                    pos.x + float(gen.normal(0.0, position_jitter)),
                    pos.y + float(gen.normal(0.0, position_jitter)),
                )
            )
        devices.append(
            Device(
                device_id=f"node{k}",
                position=p,
                demand=d,
                # Calibrated so the simulated field trial reproduces the
                # abstract's ~42.9% CCSA-over-NCA improvement (EXPERIMENTS.md).
                moving_rate=0.33,
                speed=0.5,
            )
        )
    return devices


def testbed_instance(rng: RandomState = None, **device_kwargs) -> CCSInstance:
    """A ready-to-schedule instance of the 5-charger / 8-node testbed."""
    return CCSInstance(
        devices=testbed_devices(rng, **device_kwargs),
        chargers=testbed_chargers(),
        mobility=LinearMobility(),
        field_area=TESTBED_FIELD,
    )
