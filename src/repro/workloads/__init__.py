"""Workload generation: synthetic instances, named scenarios, the field testbed."""

from .fieldtrial import (
    N_TESTBED_CHARGERS,
    N_TESTBED_NODES,
    TESTBED_FIELD,
    testbed_chargers,
    testbed_devices,
    testbed_instance,
)
from .generators import WorkloadSpec, generate_instance, quick_instance
from .scenarios import (
    DEFAULT_SPEC,
    LARGE_SCALE_SPEC,
    SCENARIOS,
    SMALL_SCALE_SPEC,
    parameter_table,
    scenario,
)

__all__ = [
    "WorkloadSpec",
    "generate_instance",
    "quick_instance",
    "DEFAULT_SPEC",
    "SMALL_SCALE_SPEC",
    "LARGE_SCALE_SPEC",
    "SCENARIOS",
    "scenario",
    "parameter_table",
    "TESTBED_FIELD",
    "N_TESTBED_CHARGERS",
    "N_TESTBED_NODES",
    "testbed_chargers",
    "testbed_devices",
    "testbed_instance",
]
