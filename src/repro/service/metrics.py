"""Built-in service observability: counters, gauges, fixed-bucket histograms.

Deliberately dependency-free and *deterministic*: every observed value is
a function of the input event stream (logical times, costs, sizes), never
of wall time, so a metrics snapshot is byte-reproducible across runs and
across crash recovery — which the recovery tests assert literally.

:meth:`Metrics.snapshot` returns plain nested dicts (sorted keys when
JSON-dumped) — the one format shared by tests, the CLI report, and the
``--metrics-json`` export.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Sequence, Set, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "Metrics", "merge_snapshots"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (must be nonnegative) to the counter."""
        if n < 0:
            raise ValueError(f"counters only go up, got increment {n}")
        self.value += n


class Gauge:
    """A point-in-time measurement (queue depth, live coalitions, clock)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with cumulative-style snapshot output.

    ``bounds`` are the finite upper bucket edges; an implicit ``+inf``
    bucket catches the rest.  Buckets are fixed at construction so two
    runs (or a run and its recovery) always bin identically.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float]):
        edges: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"bucket bounds must be strictly increasing, got {edges}")
        self.bounds = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Bin one observation (``value <= bound`` lands in that bucket)."""
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.total += 1
        self.sum += v

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the smallest bound covering *q* mass.

        Returns ``inf`` when the quantile falls in the overflow bucket and
        ``0.0`` on an empty histogram.  Coarse by design — for reporting,
        not statistics.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        need = q * self.total
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= need:
                return bound
        return float("inf")

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form: per-bucket counts keyed by upper bound."""
        buckets = {f"le_{bound:g}": count for bound, count in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {"buckets": buckets, "count": self.total, "sum": self.sum}

    def state(self) -> Dict[str, Any]:
        """Exact internal state, losslessly restorable (unlike ``snapshot``,
        whose ``le_%g`` bucket keys drop bound precision)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Overwrite this histogram's contents from a :meth:`state` dict.

        The stored bounds must match this histogram's — buckets are fixed
        at construction, so skew means the snapshot belongs to different
        code and must not be silently rebinned.
        """
        bounds = tuple(float(b) for b in state["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"histogram state bounds {list(bounds)} != registered "
                f"bounds {list(self.bounds)}"
            )
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram state has {len(counts)} buckets, expected "
                f"{len(self.counts)}"
            )
        self.counts = counts
        self.total = int(state["total"])
        self.sum = float(state["sum"])


class Metrics:
    """A registry of named counters, gauges, and histograms.

    Instruments registered with ``operational=True`` are *observability*
    metrics — counts of crash recoveries, dropped journal bytes, snapshot
    writes — whose values depend on fault history rather than on the
    input event stream alone.  They are excluded from :meth:`snapshot`
    (the byte-reproducibility contract) and from :meth:`state` (the crash
    snapshot payload), and show up only in ``snapshot(operational=True)``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._operational: Set[str] = set()

    def counter(self, name: str, operational: bool = False) -> Counter:
        """Get (or lazily create) the counter *name*."""
        if operational:
            self._operational.add(name)
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str, operational: bool = False) -> Gauge:
        """Get (or lazily create) the gauge *name*."""
        if operational:
            self._operational.add(name)
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge()
            return g

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = (),
        operational: bool = False,
    ) -> Histogram:
        """Get the histogram *name*, creating it with *bounds* on first use."""
        if operational:
            self._operational.add(name)
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(bounds)
            return h

    def _keep(self, name: str, operational: bool) -> bool:
        return operational or name not in self._operational

    def snapshot(self, operational: bool = False) -> Dict[str, Any]:
        """Everything deterministic, as plain nested dicts.

        Pass ``operational=True`` to include the observability instruments
        too (for human-facing reports, never for byte-identity checks).
        """
        return {
            "counters": {
                k: c.value
                for k, c in sorted(self._counters.items())
                if self._keep(k, operational)
            },
            "gauges": {
                k: g.value
                for k, g in sorted(self._gauges.items())
                if self._keep(k, operational)
            },
            "histograms": {
                k: h.snapshot()
                for k, h in sorted(self._histograms.items())
                if self._keep(k, operational)
            },
        }

    def state(self) -> Dict[str, Any]:
        """Exact deterministic contents for a crash snapshot.

        Operational instruments are omitted: their values describe the
        *previous process's* fault history, which a restored kernel does
        not inherit (and must not, or snapshot-restored and fully-replayed
        kernels would diverge).
        """
        return {
            "counters": {
                k: c.value
                for k, c in sorted(self._counters.items())
                if k not in self._operational
            },
            "gauges": {
                k: g.value
                for k, g in sorted(self._gauges.items())
                if k not in self._operational
            },
            "histograms": {
                k: h.state()
                for k, h in sorted(self._histograms.items())
                if k not in self._operational
            },
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Overwrite instrument values from a :meth:`state` dict.

        Instruments are created on demand with the stored histogram
        bounds; pre-registered instruments keep their registration (and
        their bounds are checked against the stored ones).
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).value = int(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).value = float(value)
        for name, hstate in state.get("histograms", {}).items():
            self.histogram(name, hstate["bounds"]).restore(hstate)

    @staticmethod
    def merge(labeled: Mapping[str, "Metrics"]) -> Dict[str, Any]:
        """Merge several registries into one aggregate snapshot.

        ``labeled`` maps a source label (e.g. ``"shard-0000"``) to its
        registry; see :func:`merge_snapshots` for the merge rules.
        """
        return merge_snapshots({label: m.snapshot() for label, m in labeled.items()})


def merge_snapshots(labeled: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-source :meth:`Metrics.snapshot` dicts into one aggregate.

    The merge rules (the sharded-service aggregation contract):

    - **counters** sum across sources — event totals add;
    - **gauges** stay per-source, re-keyed as ``{name: {label: value}}`` —
      a point-in-time level (queue depth, logical clock) has no meaningful
      sum across independent kernels;
    - **histograms** add bucket-wise — sources must bin identically, so
      mismatched bucket bounds raise :class:`ValueError` instead of
      silently mis-merging.

    Sources are combined in ``labeled``'s iteration order (pass shard
    order), so float accumulation (histogram ``sum``) is deterministic.
    Merging a single source returns its counters and histograms unchanged,
    with only the gauges re-keyed by label.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for label, snap in labeled.items():
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges.setdefault(name, {})[label] = value
        for name, hist in snap.get("histograms", {}).items():
            if name not in histograms:
                histograms[name] = {
                    "buckets": dict(hist["buckets"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                }
                continue
            merged = histograms[name]
            if list(merged["buckets"]) != list(hist["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: source {label!r} bins "
                    f"{list(hist['buckets'])} != {list(merged['buckets'])}; "
                    "fixed-bucket histograms only merge bucket-wise"
                )
            for bucket, count in hist["buckets"].items():
                merged["buckets"][bucket] += count
            merged["count"] += hist["count"]
            merged["sum"] += hist["sum"]
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: dict(gauges[k]) for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
    }
