"""The service's logical clock.

The daemon is *deterministic*: every decision depends only on the input
event stream, never on wall time.  :class:`ServiceClock` is the single
source of "now" inside the kernel — it only moves forward, and it moves
exactly when an input event (a submission, an explicit drain) says so.
Wall-clock latency is measured outside the kernel, by the benchmark
harness, precisely so that metrics snapshots stay byte-reproducible.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = ["ServiceClock"]


class ServiceClock:
    """A monotone logical clock, advanced explicitly by the event loop."""

    def __init__(self, start: float = 0.0) -> None:
        if not (math.isfinite(start) and start >= 0.0):
            raise ConfigurationError(
                f"clock must start at a finite nonnegative time, got {start}"
            )
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current logical time in seconds."""
        return self._now

    def advance(self, to: float) -> float:
        """Move time forward to *to*; earlier targets are ignored.

        Lenience (rather than an error) on non-advancing targets is what
        makes re-feeding an already-journaled event stream after crash
        recovery a sequence of no-ops.
        """
        t = float(to)
        if not math.isfinite(t):
            raise ConfigurationError(f"cannot advance the clock to {to}")
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceClock(now={self._now!r})"
