"""The service's logical clock.

The daemon is *deterministic*: every decision depends only on the input
event stream, never on wall time.  :class:`ServiceClock` is the single
source of "now" inside the kernel — it only moves forward, and it moves
exactly when an input event (a submission, an explicit drain) says so.
Wall-clock latency is measured outside the kernel, by the benchmark
harness, precisely so that metrics snapshots stay byte-reproducible.
"""

from __future__ import annotations

import math

from ..errors import ClockError, ConfigurationError

__all__ = ["ServiceClock"]

#: Slack for "the same instant" comparisons — matches the kernel's
#: ``_TIME_EPS`` so a re-advance to the current boundary is not an error.
_BACKWARD_EPS = 1e-9


class ServiceClock:
    """A monotone logical clock, advanced explicitly by the event loop."""

    def __init__(self, start: float = 0.0) -> None:
        if not (math.isfinite(start) and start >= 0.0):
            raise ConfigurationError(
                f"clock must start at a finite nonnegative time, got {start}"
            )
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current logical time in seconds."""
        return self._now

    def advance(self, to: float) -> float:
        """Move time forward to *to*; moving backwards is an error.

        A target within ``1e-9`` of the current time is a no-op (replaying
        the event that set "now" must stay idempotent), but an earlier
        target raises :class:`~repro.errors.ClockError` carrying both
        timestamps — silently ignoring it would mask an event-ordering bug
        in the caller, and silently going backwards would corrupt every
        downstream invariant.  The *kernel* stays lenient at its input
        boundary (re-fed streams are no-ops by design); it clamps before
        calling here, so any backward call that reaches the clock is a
        genuine internal ordering violation.
        """
        t = float(to)
        if not math.isfinite(t):
            raise ConfigurationError(f"cannot advance the clock to {to}")
        if t < self._now - _BACKWARD_EPS:
            raise ClockError(t, self._now)
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceClock(now={self._now!r})"
