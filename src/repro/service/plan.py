"""Incremental replanning on top of the PR-1 coalition engine.

The batch solvers work on a frozen :class:`~repro.core.instance.CCSInstance`;
a service cannot — devices arrive, charge, and leave while the plan is
live.  This module supplies the three pieces that bridge the gap without
ever re-solving from scratch:

- :class:`PlanInstance` — a *growable* instance facade exposing exactly
  the surface the incremental engine reads (cached demand list, the
  moving-cost matrix, lazy singleton price/cost matrices, tariff fast
  paths).  Adding a device costs ``O(m)`` (one matrix row); nothing else
  is recomputed.
- :class:`GrowableCoalitionStructure` — the PR-1
  :class:`~repro.game.coalition.CoalitionStructure` extended with
  ``place`` / ``remove`` / ``retire``, so devices can enter a live
  partition, drop out (expiry), or leave wholesale when a session departs.
  All cached aggregates, the running total cost, and the Zobrist hash stay
  incrementally maintained; ``check_invariants`` still audits everything.
- :class:`IncrementalPlanner` — the epoch replanner: fold a batch of
  admitted devices into the current structure (one ``O(sessions + m)``
  candidate scan each), run a bounded socially-aware improvement pass over
  the touched neighborhood, then *repair* individual rationality so no
  member's comprehensive cost ever exceeds its admission quote.  The
  repair always terminates: a device's best singleton cost equals its
  quote and is independent of everyone else, so forcing a persistent
  violator into a singleton pins it at the quote forever.  With charger
  *outages* (see :mod:`repro.faults`) that singleton may be gone; repair
  then **evicts** the unrepairable device instead of overcharging it,
  and the kernel re-quotes it against its original ceiling at the next
  epoch.

Every candidate evaluation is tallied in :attr:`IncrementalPlanner.ops`;
tests assert per-request work stays bounded by the *live* plan size, not
by the total number of requests ever served.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core import Device
from ..core.ccsga import resolve_engine
from ..core.costsharing import CostSharingScheme, EgalitarianSharing
from ..errors import ConfigurationError, ServiceError
from ..game.arraycore import StructureArrayView
from ..game.coalition import CoalitionStructure, _device_token
from ..game.switching import SelfishSwitch, SociallyAwareSwitch, SwitchMove, SwitchRule
from ..mobility import LinearMobility, MobilityModel
from ..numeric import DEFAULT_REL_TOL, is_exact_zero
from ..wpt import Charger, ChargerPriceTable

__all__ = ["PlanInstance", "GrowableCoalitionStructure", "IncrementalPlanner"]


class PlanInstance:
    """A growable CCS instance: fixed chargers, devices added over time.

    Presents the same read surface as :class:`~repro.core.instance.CCSInstance`
    (demand list, moving-cost matrix, singleton matrices, price fast
    paths) so the coalition engine and every cost-sharing scheme work
    unchanged, while :meth:`add_device` appends one device in ``O(m)``.
    Device indices are append-only and never reused — a retired device's
    row simply stops being referenced.
    """

    def __init__(
        self,
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
    ):
        if not chargers:
            raise ConfigurationError("a plan needs at least one charger")
        self.chargers: Tuple[Charger, ...] = tuple(chargers)
        charger_ids = [c.charger_id for c in self.chargers]
        if len(set(charger_ids)) != len(charger_ids):
            raise ConfigurationError("charger identifiers must be unique")
        self.mobility: MobilityModel = (
            mobility if mobility is not None else LinearMobility()
        )
        self.devices: List[Device] = []
        self._demand_list: List[float] = []
        self._device_ids: Dict[str, int] = {}
        m = len(self.chargers)
        #: Per-charger availability (fault semantics): a down charger is
        #: excluded from quoting, insertion, improvement, and repair, but
        #: its matrix columns stay — recovery is a single flag flip.
        self._up: List[bool] = [True] * m
        cap = 16
        self._mc_buf = np.empty((cap, m), dtype=float)
        self._sp_buf = np.empty((cap, m), dtype=float)
        self._sc_buf = np.empty((cap, m), dtype=float)
        self._n = 0
        self._price_table: Optional[ChargerPriceTable] = None
        self._sync_views()

    def _sync_views(self) -> None:
        n = self._n
        self._moving_cost = self._mc_buf[:n]
        self._singleton_price = self._sp_buf[:n]
        self._singleton_cost = self._sc_buf[:n]

    # ------------------------------------------------------------------ #
    # growth

    def quote_rows(self, device: Device) -> Tuple[np.ndarray, np.ndarray]:
        """``(moving-cost row, singleton-price row)`` for a device.

        ``O(m)``: one mobility evaluation and one tariff evaluation per
        charger.  Used both for pre-admission quoting (the device may
        never enter the plan) and by :meth:`add_device`.
        """
        move = np.array(
            [
                self.mobility.moving_cost(device.position, c.position, device.moving_rate)
                for c in self.chargers
            ],
            dtype=float,
        )
        price = np.array(
            [c.price_for_stored(device.demand) for c in self.chargers], dtype=float
        )
        return move, price

    def best_singleton(self, device: Device) -> Tuple[float, int]:
        """Cheapest standalone option: ``(cost, charger index)``.

        The admission *quote*: what the device would pay charging alone at
        its best *available* charger.  Ties break toward the lower charger
        index.  Raises :class:`~repro.errors.ServiceError` when no
        available charger admits a device (e.g. every charger is down).
        """
        move, price = self.quote_rows(device)
        costs = move + price
        admitting = [
            j
            for j, c in enumerate(self.chargers)
            if self._up[j] and c.admits(1)
        ]
        if not admitting:
            raise ServiceError("no available charger admits even a single device")
        j = min(admitting, key=lambda j: (float(costs[j]), j))
        return float(costs[j]), j

    # ------------------------------------------------------------------ #
    # charger availability (fault semantics)

    def charger_available(self, charger: int) -> bool:
        """True while charger index *charger* is up.

        Also the availability hook the switch-rule candidate scan probes
        via ``getattr`` — a frozen ``CCSInstance`` has no such method, so
        the batch solvers keep their all-chargers-up fast path.
        """
        return self._up[charger]

    def set_available(self, charger: int, up: bool) -> None:
        """Flip charger index *charger*'s availability flag."""
        self._up[charger] = bool(up)

    def available_chargers(self) -> List[int]:
        """Sorted indices of the currently available chargers."""
        return [j for j in range(len(self.chargers)) if self._up[j]]

    def add_device(self, device: Device) -> int:
        """Append *device*; returns its (permanent) index.  ``O(m)``.

        A device identifier may recur (a device coming back for another
        charge after finishing an earlier session); ``device_index`` then
        resolves to the latest index.  Guarding against *concurrently*
        served duplicates is the kernel's admission job.
        """
        move, price = self.quote_rows(device)
        if self._n == self._mc_buf.shape[0]:
            grown = self._mc_buf.shape[0] * 2
            for name in ("_mc_buf", "_sp_buf", "_sc_buf"):
                buf = getattr(self, name)
                new = np.empty((grown, buf.shape[1]), dtype=float)
                new[: self._n] = buf[: self._n]
                setattr(self, name, new)
        i = self._n
        self._mc_buf[i] = move
        self._sp_buf[i] = price
        self._sc_buf[i] = move + price
        self._n += 1
        self._sync_views()
        self.devices.append(device)
        self._demand_list.append(float(device.demand))
        self._device_ids[device.device_id] = i
        return i

    # ------------------------------------------------------------------ #
    # the CCSInstance read surface

    @property
    def n_devices(self) -> int:
        """Devices ever added (indices run ``0..n_devices-1``)."""
        return self._n

    @property
    def n_chargers(self) -> int:
        """Number of chargers (fixed for the plan's lifetime)."""
        return len(self.chargers)

    def device_index(self, device_id: str) -> int:
        """Index of the device with identifier *device_id*."""
        try:
            return self._device_ids[device_id]
        except KeyError:
            raise KeyError(f"unknown device {device_id!r}") from None

    def moving_cost(self, device: int, charger: int) -> float:
        """Moving cost of device index *device* to charger index *charger*."""
        return float(self._moving_cost[device, charger])

    def charging_price_for_demand(self, total_demand: float, charger: int) -> float:
        """Session price for an already-summed stored demand (O(1) fast path)."""
        if is_exact_zero(total_demand):
            return 0.0
        return self.chargers[charger].price_for_stored(total_demand)

    def price_table(self) -> ChargerPriceTable:
        """Lazily built vectorized tariff table (chargers are fixed)."""
        if self._price_table is None:
            self._price_table = ChargerPriceTable(self.chargers)
        return self._price_table

    def price_for_demand_vector(
        self, totals: np.ndarray, chargers_idx: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`charging_price_for_demand` (bitwise identical)."""
        return self.price_table().prices(totals, chargers_idx)

    def singleton_price_matrix(self) -> np.ndarray:
        """``(n, m)`` singleton session prices (maintained incrementally)."""
        return self._singleton_price

    def singleton_cost_matrix(self) -> np.ndarray:
        """``(n, m)`` singleton group costs (price + moving cost)."""
        return self._singleton_cost

    def charging_price(self, group, charger: int) -> float:
        """Session price when *group* shares one session at *charger*."""
        members = list(group)
        return self.chargers[charger].session_price(
            self.devices[i].demand for i in members
        )

    def group_cost(self, group, charger: int) -> float:
        """Full session cost: price plus the members' moving costs."""
        members = list(group)
        if not members:
            return 0.0
        price = self.charging_price(members, charger)
        return price + float(self._moving_cost[members, charger].sum())

    def total_demand(self, group) -> float:
        """Sum of stored-energy demands over device indices in *group*."""
        return sum(self.devices[i].demand for i in group)

    def capacity_of(self, charger: int) -> Optional[int]:
        """Slot capacity of charger index *charger* (``None`` = unbounded)."""
        return self.chargers[charger].capacity


class GrowableCoalitionStructure(CoalitionStructure):
    """The PR-1 coalition structure, opened up for a live service plan.

    Three additional mutations, all maintaining the cached total cost,
    the per-coalition aggregates, and the Zobrist hash incrementally:

    - :meth:`place` — a *new* device enters an existing coalition or
      founds a singleton (``move`` without a source);
    - :meth:`remove` — a device drops out (deadline expiry);
    - :meth:`retire` — a whole coalition leaves the plan (its session
      departed and is now charging).

    Coverage is the set of currently placed devices, not
    ``range(n_devices)`` — retired indices are tombstones.
    """

    def __init__(self, instance: PlanInstance, scheme: CostSharingScheme):
        super().__init__(instance, scheme)

    def register_device(self, device: int) -> None:
        """Extend the Zobrist token table to cover a newly added index."""
        while len(self._dev_token) <= device:
            self._dev_token.append(_device_token(len(self._dev_token)))

    def _expected_coverage(self) -> Set[int]:
        return set(self._of_device)

    def is_placed(self, device: int) -> bool:
        """True while *device* sits in some live coalition."""
        return device in self._of_device

    def place(self, device: int, target: Optional[int], charger: int):
        """Insert an unplaced *device* (``target=None`` founds a singleton).

        Returns the receiving :class:`~repro.game.coalition.Coalition`.
        """
        if device in self._of_device:
            raise ValueError(f"device {device} already placed")
        if target is None:
            return self._create(charger, {device})
        dest = self._coalitions[target]
        if dest.charger != charger:
            raise ValueError("target coalition is bound to a different charger")
        if not self.instance.chargers[dest.charger].admits(dest.size + 1):
            raise ValueError(
                f"coalition {target} is at capacity on charger {dest.charger}"
            )
        token = self._dev_token[device]
        self._zhash ^= self._key(dest)
        self._total_cost -= dest.group_cost
        # ccs-lint: ignore[CCS004] -- place() extends the refresh discipline:
        # aggregates, total cost, and the Zobrist hash are re-established below.
        dest.members.add(device)
        dest.fingerprint ^= token  # ccs-lint: ignore[CCS004] -- see above
        self._refresh(dest)
        self._total_cost += dest.group_cost
        self._zhash ^= self._key(dest)
        self._of_device[device] = dest.cid
        self._version += 1
        return dest

    def remove(self, device: int) -> int:
        """Drop *device* from its coalition; returns the source cid.

        The coalition is deleted if it empties.  The caller is responsible
        for re-establishing individual rationality of the survivors
        (:meth:`IncrementalPlanner._repair`) — removing a member can raise
        the per-head share of those left behind.
        """
        src = self.coalition_of(device)
        token = self._dev_token[device]
        self._zhash ^= self._key(src)
        self._total_cost -= src.group_cost
        # ccs-lint: ignore[CCS004] -- remove() extends the refresh discipline:
        # aggregates, total cost, and the Zobrist hash are re-established below.
        src.members.discard(device)
        src.fingerprint ^= token  # ccs-lint: ignore[CCS004] -- see above
        del self._of_device[device]
        if src.members:
            self._refresh(src)
            self._total_cost += src.group_cost
            self._zhash ^= self._key(src)
        else:
            del self._coalitions[src.cid]
        self._version += 1
        return src.cid

    def retire(self, cid: int):
        """Remove coalition *cid* wholesale; returns the dead Coalition.

        Other coalitions are untouched (a departure never changes anyone
        else's bill), so no repair is needed afterwards.
        """
        coalition = self._coalitions.pop(cid)
        self._zhash ^= self._key(coalition)
        self._total_cost -= coalition.group_cost
        for i in sorted(coalition.members):
            del self._of_device[i]
        self._version += 1
        return coalition


class IncrementalPlanner:
    """Epoch-based replanner: fold, improve, repair — never re-solve.

    Owns the growable instance + structure pair and the per-device cost
    ceilings (admission quotes).  All mutation entry points keep two
    invariants the kernel's tests assert:

    1. every placed device's comprehensive cost is at most its ceiling
       (individual rationality against the standalone quote);
    2. the structure's cached aggregates are coherent
       (:meth:`~repro.game.coalition.CoalitionStructure.check_invariants`).
    """

    def __init__(
        self,
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        tol: float = DEFAULT_REL_TOL,
        improvement_sweeps: int = 2,
        repair_rounds: int = 3,
        engine: Optional[str] = None,
    ):
        if improvement_sweeps < 0:
            raise ConfigurationError(
                f"improvement_sweeps must be nonnegative, got {improvement_sweeps}"
            )
        if repair_rounds < 0:
            raise ConfigurationError(
                f"repair_rounds must be nonnegative, got {repair_rounds}"
            )
        self.instance = PlanInstance(chargers, mobility)
        self.scheme: CostSharingScheme = (
            scheme if scheme is not None else EgalitarianSharing()
        )
        self.structure = GrowableCoalitionStructure(self.instance, self.scheme)
        self.tol = float(tol)
        self.improvement_sweeps = improvement_sweeps
        self.repair_rounds = repair_rounds
        self._social = SociallyAwareSwitch(tol=self.tol)
        self._selfish = SelfishSwitch(tol=self.tol)
        #: Scan engine (see :func:`repro.core.ccsga.resolve_engine`): the
        #: array engine runs the improvement/repair/insert candidate scans
        #: through a :class:`~repro.game.arraycore.StructureArrayView` —
        #: bit-identical moves, vectorized evaluation.  Structure mutation
        #: and journaling always stay on the object representation.
        self.engine: str = resolve_engine(
            engine, self.instance, self.scheme, self._social
        )
        self._view: Optional[StructureArrayView] = (
            StructureArrayView(self.structure) if self.engine == "array" else None
        )
        self.ceiling: Dict[int, float] = {}
        #: Operation tally for the incremental-work regression tests.
        #: ``full_solves`` stays 0 by construction — there is no code path
        #: that hands the live plan to a batch solver.
        self.ops: Dict[str, int] = {
            "insert_candidates": 0,
            "scan_candidates": 0,
            "moves": 0,
            "repair_moves": 0,
            "full_solves": 0,
        }

    # ------------------------------------------------------------------ #
    # quoting and membership

    def quote(self, device: Device) -> Tuple[float, int]:
        """Standalone quote for a (not yet admitted) device: ``(cost, charger)``.

        Only *available* chargers quote; raises
        :class:`~repro.errors.ServiceError` when none can.
        """
        return self.instance.best_singleton(device)

    # ------------------------------------------------------------------ #
    # charger availability (fault semantics)

    def is_available(self, charger: int) -> bool:
        """True while charger index *charger* is up."""
        return self.instance.charger_available(charger)

    def fail_charger(self, charger: int) -> None:
        """Mark charger index *charger* down (idempotent).

        Only flips the availability flag — evacuating the coalitions
        bound to it is a separate, explicit step
        (:meth:`evacuate_charger`) so the kernel can journal each
        displaced request.
        """
        self.instance.set_available(charger, False)

    def restore_charger(self, charger: int) -> None:
        """Mark charger index *charger* up again (idempotent)."""
        self.instance.set_available(charger, True)

    def available_chargers(self) -> List[int]:
        """Sorted indices of the currently available chargers."""
        return self.instance.available_chargers()

    def evacuate_charger(self, charger: int) -> List[int]:
        """Retire every coalition bound to a (failed) charger.

        Returns the displaced device indices in ascending order.  Their
        ceilings are *kept*: the displaced devices are re-quoted against
        them at the next epoch (re-fold if the original quote still
        holds, reject with ``charger_failed`` otherwise).  No repair is
        needed — other coalitions' bills are untouched by a retirement.
        """
        displaced: List[int] = []
        for cid in self.live_cids():
            coalition = self.structure._coalitions[cid]
            if coalition.charger == charger:
                displaced.extend(sorted(coalition.members))
                self.structure.retire(cid)
        return sorted(displaced)

    def add(self, device: Device, ceiling: float) -> int:
        """Register an admitted device (not yet placed); returns its index."""
        index = self.instance.add_device(device)
        self.structure.register_device(index)
        self.ceiling[index] = float(ceiling)
        return index

    def active_indices(self) -> List[int]:
        """Sorted indices of devices currently placed in the live plan."""
        return sorted(self.structure._of_device)

    def individual_cost(self, device: int) -> float:
        """Current comprehensive cost of a placed device."""
        return self.structure.individual_cost(device)

    # ------------------------------------------------------------------ #
    # the epoch fold

    def _insert(self, device: int) -> int:
        """Place one new device at its own-cost argmin; returns the cid.

        One pass over live coalitions plus the precomputed singleton-cost
        row — ``O(n_coalitions + m)`` candidate evaluations, each a single
        tariff call on cached aggregates.  Tie-breaks mirror the switch
        rules: cheaper first, then joins over singletons, then lower
        charger, then lower cid.
        """
        st, inst = self.structure, self.instance
        if self._view is not None:
            # Same tally as the object scan below: one candidate per live
            # coalition (available or not) plus one per charger.
            self.ops["insert_candidates"] += st.n_coalitions + inst.n_chargers
            choice = self._view.best_insert(device)
            if choice is None:
                raise ServiceError("no feasible placement for admitted device")
            coalition = st.place(device, choice[0], choice[1])
            self.ops["moves"] += 1
            return coalition.cid
        best_key: Optional[Tuple[float, int, int, int]] = None
        best: Optional[Tuple[Optional[int], int]] = None
        for coalition in st.coalitions():
            self.ops["insert_candidates"] += 1
            if not inst.charger_available(coalition.charger):
                continue
            cost = st.cost_if_joined(device, coalition.cid, coalition.charger)
            if cost == float("inf"):
                continue
            key = (cost, 0, coalition.charger, coalition.cid)
            if best_key is None or key < best_key:
                best_key, best = key, (coalition.cid, coalition.charger)
        row = inst.singleton_cost_matrix()[device]
        for j in range(inst.n_chargers):
            self.ops["insert_candidates"] += 1
            if not (inst.charger_available(j) and inst.chargers[j].admits(1)):
                continue
            key = (float(row[j]), 1, j, -1)
            if best_key is None or key < best_key:
                best_key, best = key, (None, j)
        if best is None:
            raise ServiceError("no feasible placement for admitted device")
        target, charger = best
        coalition = st.place(device, target, charger)
        self.ops["moves"] += 1
        return coalition.cid

    def _best_move(self, rule: SwitchRule, device: int) -> Optional[SwitchMove]:
        """Best permitted move via the active engine (bit-identical either way)."""
        if self._view is not None:
            return self._view.best_move(device, rule)
        return rule.best_move(self.structure, device)

    def fold(self, indices: Sequence[int]) -> Tuple[Dict[int, int], List[int]]:
        """Fold a batch of registered devices into the live structure.

        Returns ``(placements, evicted)``: ``placements`` maps each batch
        device to its receiving cid *at insertion time* (improvement moves
        may relocate devices afterwards), and ``evicted`` lists devices
        the repair pass had to remove because no available placement met
        their ceiling (only possible after a charger outage; empty with
        every charger up).  After the fold the individual-rationality
        invariant holds for every device still placed.
        """
        placements: Dict[int, int] = {}
        touched: Set[int] = set()
        for device in sorted(indices):
            cid = self._insert(device)
            placements[device] = cid
            touched |= self.structure._coalitions[cid].members
        touched = self._improve(touched)
        evicted = self._repair(touched)
        return placements, evicted

    def _improve(self, touched: Set[int]) -> Set[int]:
        """Bounded socially-aware best-response sweeps over *touched*.

        Each permitted switch strictly lowers the total comprehensive cost
        (the game's potential), so sweeps cannot cycle; we additionally
        cap them at :attr:`improvement_sweeps`.  Returns the grown touched
        set (destination coalitions join the neighborhood).
        """
        st = self.structure
        for _ in range(self.improvement_sweeps):
            moved = False
            for device in sorted(touched):
                if not st.is_placed(device):
                    continue
                self.ops["scan_candidates"] += st.n_coalitions + self.instance.n_chargers
                move = self._best_move(self._social, device)
                if move is None:
                    continue
                st.move(device, move.target, move.charger)
                self.ops["moves"] += 1
                moved = True
                touched |= st.coalition_of(device).members
            if not moved:
                break
        return touched

    def _repair(self, touched: Set[int]) -> List[int]:
        """Re-establish ``cost <= ceiling`` for every placed device.

        Membership churn can push a bystander above its quote (e.g. a
        base-fee-dominated session losing a member raises everyone's
        per-head share).  Violators take their best selfish move, and
        after :attr:`repair_rounds` rounds any stragglers are *forced*
        into their best available singleton.  With every charger up that
        singleton costs exactly the quote and can never be disturbed by
        other devices leaving, so repair always converges to zero
        violators.  After a charger outage the quote's charger may be
        gone: a violator whose best *available* singleton exceeds its
        ceiling is unrepairable and is **evicted** from the structure
        (ceiling kept — the kernel re-quotes it at the next epoch and
        rejects it with ``charger_failed`` if the ceiling cannot hold).
        Returns the evicted device indices in eviction order.
        """
        st, inst = self.structure, self.instance
        evicted: List[int] = []
        for _ in range(self.repair_rounds):
            violators = [
                d for d in self.active_indices()
                if st.individual_cost(d) > self.ceiling[d] + self.tol
            ]
            if not violators:
                return evicted
            for device in violators:
                self.ops["scan_candidates"] += st.n_coalitions + inst.n_chargers
                move = self._best_move(self._selfish, device)
                if move is None:
                    continue
                st.move(device, move.target, move.charger)
                self.ops["repair_moves"] += 1
        while True:
            violators = [
                d for d in self.active_indices()
                if st.individual_cost(d) > self.ceiling[d] + self.tol
            ]
            if not violators:
                return evicted
            progressed = False
            for device in violators:
                # A force earlier in this pass may have shifted this
                # device's share either way; recheck before acting.
                if st.individual_cost(device) <= self.ceiling[device] + self.tol:
                    continue
                row = inst.singleton_cost_matrix()[device]
                candidates = [
                    j
                    for j in range(inst.n_chargers)
                    if inst.charger_available(j) and inst.chargers[j].admits(1)
                ]
                j = (
                    min(candidates, key=lambda j: (float(row[j]), j))
                    if candidates
                    else None
                )
                if j is not None and float(row[j]) <= self.ceiling[device] + self.tol:
                    src = st.coalition_of(device)
                    if src.size == 1 and src.charger == j:
                        continue
                    st.move(device, None, j)
                    self.ops["repair_moves"] += 1
                    progressed = True
                    continue
                # No available placement can meet this device's ceiling:
                # evict rather than overcharge.  The ceiling survives for
                # the kernel's re-quote.
                st.remove(device)
                evicted.append(device)
                self.ops["repair_moves"] += 1
                progressed = True
            if not progressed:
                # Every remaining "violator" already sits at its best
                # available singleton within tolerance; nothing more can
                # help (and nothing is actually above its ceiling).
                return evicted

    # ------------------------------------------------------------------ #
    # departures and expiries

    def remove(self, device: int) -> List[int]:
        """Drop a placed device out of the plan, then repair survivors.

        Used for expiries, cancellations, and no-shows: the ceiling is
        deleted (the request is gone for good) and the survivors of its
        coalition are repaired — losing a member re-shares the session
        cost and can push a survivor over its own quote.  Returns any
        devices the repair had to evict (see :meth:`_repair`; empty with
        every charger up).
        """
        cid = self.structure.remove(device)
        del self.ceiling[device]
        survivors = (
            set(self.structure._coalitions[cid].members)
            if cid in self.structure._coalitions
            else set()
        )
        return self._repair(survivors)

    def retire(self, cid: int) -> Dict[str, object]:
        """Depart coalition *cid*; returns the frozen session accounting.

        The returned dict carries everything the kernel journals and
        meters: charger index, sorted member indices, session price, the
        per-member price shares (exact, via the scheme), and per-member
        moving costs.
        """
        st, inst = self.structure, self.instance
        coalition = st._coalitions[cid]
        members = sorted(coalition.members)
        shares = self.scheme.shares(inst, members, coalition.charger)
        info = {
            "charger": coalition.charger,
            "members": members,
            "price": coalition.price,
            "demands": [inst._demand_list[i] for i in members],
            "shares": {i: float(shares[i]) for i in members},
            "moving": {i: inst.moving_cost(i, coalition.charger) for i in members},
        }
        st.retire(cid)
        for i in members:
            del self.ceiling[i]
        return info

    def live_cids(self) -> List[int]:
        """Sorted cids of the live coalitions (creation order = cid order)."""
        return sorted(self.structure._coalitions)
