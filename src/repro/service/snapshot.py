"""Checksummed, atomically-written snapshots of kernel state.

A snapshot is one JSON document pinned to a journal seq::

    {"schema": 1, "seq": 1200, "sha": "…16 hex…", "state": {...}}

``seq`` means: this state is what replaying journal records ``0..seq-1``
produces, so recovery can load the snapshot and replay only the suffix
``seq..``.  ``sha`` is a truncated SHA-256 over the canonical JSON of the
document minus the ``sha`` field (the same canonicalization as journal
records), so torn or bit-flipped snapshots are detected, not trusted.

Write discipline is temp + fsync + :func:`os.replace`: a snapshot file
either exists completely or not at all — a crash mid-write leaves only a
``*.tmp`` sibling that readers ignore.  Snapshots live next to their
journal as ``<journal>.snap-<seq:010d>``; the zero-padded seq makes
lexicographic and numeric order agree.

Loading **never repairs**: a bad snapshot raises
:class:`~repro.errors.SnapshotError` and the caller falls back to the
next older snapshot, then to full replay.  Only
:meth:`~repro.service.kernel.ChargingService.recover` decides what a
failed load means.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..errors import SnapshotError
from ..experiments.exec.task import canonical_json

__all__ = [
    "SNAPSHOT_SCHEMA",
    "snapshot_path",
    "list_snapshots",
    "write_snapshot",
    "load_snapshot",
    "prune_snapshots",
]

#: Snapshot document version; bump on state-layout changes.  A mismatch is
#: a :class:`SnapshotError` (fall back to replay), never a best-effort read.
SNAPSHOT_SCHEMA = 1

#: Hex digits of SHA-256 kept per snapshot (matches the journal's).
_SHA_LEN = 16

_SUFFIX = ".snap-"
_SEQ_DIGITS = 10


def snapshot_path(journal_path: Union[str, Path], seq: int) -> Path:
    """Where the snapshot pinned to *seq* lives for this journal."""
    base = Path(journal_path)
    return base.with_name(f"{base.name}{_SUFFIX}{int(seq):0{_SEQ_DIGITS}d}")


def list_snapshots(journal_path: Union[str, Path]) -> List[Tuple[int, Path]]:
    """All snapshot files for this journal, newest (highest seq) first.

    Purely name-based — no file is opened, so a corrupt snapshot still
    lists (the fallback chain needs to *try* it).  Files whose seq suffix
    does not parse (including ``*.tmp`` leftovers) are ignored.
    """
    base = Path(journal_path)
    prefix = base.name + _SUFFIX
    found: List[Tuple[int, Path]] = []
    try:
        entries = sorted(p.name for p in base.parent.iterdir())
    except FileNotFoundError:
        return []
    for name in entries:
        if not name.startswith(prefix):
            continue
        tail = name[len(prefix):]
        if not (tail.isdigit() and len(tail) == _SEQ_DIGITS):
            continue
        found.append((int(tail), base.parent / name))
    found.sort(key=lambda pair: pair[0], reverse=True)
    return found


def write_snapshot(
    journal_path: Union[str, Path], seq: int, state: Dict[str, Any]
) -> Path:
    """Atomically persist *state* pinned to journal seq *seq*.

    Returns the snapshot's path.  The document is fully written and
    fsynced to a ``*.tmp`` sibling before :func:`os.replace` publishes it
    under its real name, so no reader ever sees a half snapshot.
    """
    doc: Dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "seq": int(seq),
        "state": state,
    }
    doc["sha"] = _snapshot_checksum(doc)
    path = snapshot_path(journal_path, seq)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_snapshot(path: Union[str, Path]) -> Tuple[int, Dict[str, Any]]:
    """Read and verify one snapshot; returns ``(seq, state)``.

    Raises :class:`~repro.errors.SnapshotError` on anything short of a
    bit-exact, schema-matching, checksum-passing document — missing file,
    torn JSON, version skew, checksum mismatch.  The caller treats every
    failure identically: skip this snapshot, try the next older one.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"snapshot {path}: unreadable: {exc}") from exc
    try:
        doc = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"snapshot {path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise SnapshotError(f"snapshot {path}: not a JSON object")
    try:
        schema, seq, state, sha = doc["schema"], doc["seq"], doc["state"], doc["sha"]
    except KeyError as exc:
        raise SnapshotError(f"snapshot {path}: missing field {exc}") from exc
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"snapshot {path}: schema version {schema!r} != supported "
            f"{SNAPSHOT_SCHEMA}"
        )
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise SnapshotError(f"snapshot {path}: bad seq {seq!r}")
    if not isinstance(state, dict):
        raise SnapshotError(f"snapshot {path}: state is not an object")
    body = {"schema": schema, "seq": seq, "state": state}
    if sha != _snapshot_checksum(body):
        raise SnapshotError(f"snapshot {path}: checksum mismatch")
    return seq, state


def prune_snapshots(journal_path: Union[str, Path], keep: int) -> int:
    """Delete all but the newest *keep* snapshots; returns the count removed.

    Best-effort on the unlink itself (a vanished file is already pruned),
    strict on the argument: ``keep < 1`` would delete the snapshot that
    compaction depends on, so it is rejected.
    """
    if keep < 1:
        raise ValueError(f"must keep at least one snapshot, got keep={keep}")
    removed = 0
    for _seq, path in list_snapshots(journal_path)[keep:]:
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        removed += 1
    return removed


def _snapshot_checksum(body: Dict[str, Any]) -> str:
    payload = canonical_json(
        {"schema": body["schema"], "seq": body["seq"], "state": body["state"]}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_SHA_LEN]
