"""The admission controller: every request gets an immediate answer.

A production charging service cannot queue unboundedly or accept work it
will provably fail — rejection is a first-class outcome, decided the
moment a request arrives and always with an explicit reason:

- ``duplicate`` — the device (or request id) is already being served;
- ``queue-full`` — the admission queue is at its bound;
- ``capacity`` — the plan is at its configured active-device limit;
- ``deadline`` — even the *fastest* path through the epoch grid (fold at
  the next boundary, depart once the window elapses) misses the deadline;
- ``price`` — the standalone quote already exceeds the customer's cap,
  so no cooperative outcome (which never costs more than the quote) can
  satisfy them either.

Checks run in that order; the first failure wins, so rejection-reason
counters are deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .request import ChargingRequest

__all__ = ["AdmissionDecision", "AdmissionController", "earliest_departure"]


#: Rejection reasons, in check order.
REASON_DUPLICATE = "duplicate"
REASON_QUEUE_FULL = "queue-full"
REASON_CAPACITY = "capacity"
REASON_DEADLINE = "deadline"
REASON_PRICE = "price"
#: Not an admission check: stamped by the *kernel* when no available
#: charger can quote (all down at submit time), or when a charger outage
#: makes an admitted request's re-quote exceed its original ceiling.
REASON_CHARGER_FAILED = "charger_failed"

REASONS = (
    REASON_DUPLICATE,
    REASON_QUEUE_FULL,
    REASON_CAPACITY,
    REASON_DEADLINE,
    REASON_PRICE,
    REASON_CHARGER_FAILED,
)


def earliest_departure(now: float, epoch: float, window: float) -> float:
    """Earliest time a request submitted at *now* could start charging.

    The kernel folds queues at epoch-grid times ``k·epoch`` and departs a
    session at the first grid point at least ``window`` after it opened.
    A submission at exactly a grid time is folded at the *next* boundary
    (the boundary's own fold has already run when the submission is
    processed).
    """
    first_fold = (math.floor(now / epoch) + 1) * epoch
    waits = math.ceil(window / epoch - 1e-12)
    return first_fold + max(waits, 0) * epoch


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: Optional[str] = None

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Stateless policy object: the kernel supplies the current load."""

    def __init__(
        self,
        epoch: float,
        window: float,
        queue_limit: int,
        max_active: Optional[int] = None,
    ):
        self.epoch = float(epoch)
        self.window = float(window)
        self.queue_limit = int(queue_limit)
        self.max_active = max_active

    def decide(
        self,
        request: ChargingRequest,
        now: float,
        queue_depth: int,
        active_devices: int,
        quote: float,
        duplicate: bool = False,
    ) -> AdmissionDecision:
        """Admit or reject *request* given the service's current load.

        *quote* is the standalone (best-singleton) cost the kernel
        computed for the device; *active_devices* counts devices placed in
        the live plan plus those queued ahead of this request.
        """
        if duplicate:
            return AdmissionDecision(False, REASON_DUPLICATE)
        if queue_depth >= self.queue_limit:
            return AdmissionDecision(False, REASON_QUEUE_FULL)
        if self.max_active is not None and active_devices >= self.max_active:
            return AdmissionDecision(False, REASON_CAPACITY)
        if request.deadline is not None:
            if request.deadline < earliest_departure(now, self.epoch, self.window):
                return AdmissionDecision(False, REASON_DEADLINE)
        if request.max_price is not None and quote > request.max_price:
            return AdmissionDecision(False, REASON_PRICE)
        return AdmissionDecision(True)
