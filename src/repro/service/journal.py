"""Append-only durable journal of service state transitions.

One JSON object per line, written append-only::

    {"data": {...}, "event": "submit", "seq": 4, "sha": "…16 hex…", "t": 361.25}

``sha`` is a truncated SHA-256 over the record's canonical JSON (the same
canonicalization as the experiment result cache), and ``seq`` is a dense
counter — so a reader can tell exactly where a ``kill -9`` tore the file:
:func:`Journal.read_records` returns the longest valid prefix and stops at
the first unparsable, checksum-failing, or out-of-sequence line.

Recovery discipline (see :meth:`repro.service.kernel.ChargingService.recover`):
``submit`` and ``drain`` records are the *inputs*; every other event is a
deterministic consequence the kernel re-derives by replaying them.  The
journal still records all transitions, because an auditor (or an operator
tailing the file) should see the full lifecycle without running a replay.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, TextIO, Tuple, Union

from ..errors import JournalError, JournalWriteError
from ..experiments.exec.task import canonical_json

__all__ = ["Journal", "JournalRead", "record_checksum"]

_LOG = logging.getLogger("repro.service.journal")

#: Journal line-format version; bump on layout changes.
JOURNAL_SCHEMA = 1

#: Events that recovery replays; everything else is re-derived.  Fault
#: events (charger outage/recovery, cancellation) are *inputs* like
#: submissions: they originate outside the kernel, so replay must re-feed
#: them to re-derive the evacuations and re-folds they caused.
INPUT_EVENTS = frozenset(
    {"submit", "advance", "drain", "charger_down", "charger_up", "cancel"}
)

#: Hex digits of SHA-256 kept per record (collision-detection, not crypto).
_SHA_LEN = 16


class JournalRead(NamedTuple):
    """Everything :meth:`Journal.read` learns about a journal file.

    ``base_seq`` is the seq of the first retained record (0 unless the
    journal was compacted); ``dropped_bytes`` counts everything after the
    longest valid prefix — 0 on a clean file, > 0 exactly when ``torn``.
    """

    records: List[Dict[str, Any]]
    torn: bool
    dropped_bytes: int
    base_seq: int


def record_checksum(seq: int, t: float, event: str, data: Dict[str, Any]) -> str:
    """Truncated SHA-256 over the record's canonical JSON body."""
    body = canonical_json({"seq": seq, "t": t, "event": event, "data": data})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:_SHA_LEN]


class Journal:
    """An append-only, checksummed JSONL log of kernel transitions."""

    def __init__(
        self,
        path: Union[str, Path],
        truncate: bool = True,
        sync: bool = True,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "w" if truncate else "a"
        self._fh: Optional[TextIO] = open(self.path, mode, encoding="utf-8")
        #: ``fsync`` after every append.  On for the service daemon (a
        #: journaled transition must survive a power cut), off for load
        #: generators and benchmarks that only need process-crash safety.
        self.sync = bool(sync)
        self.seq = 0

    def append(self, event: str, t: float, data: Dict[str, Any]) -> int:
        """Write one record and flush it; returns the record's ``seq``.

        Durability discipline: the file offset is captured before the
        write, and on ``OSError`` (ENOSPC, EIO, …) the file is truncated
        back to it and a typed :class:`~repro.errors.JournalWriteError`
        is raised — the journal on disk stays a valid record prefix, and
        ``seq`` is not consumed, so a caller that frees space can retry
        the same append.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        seq = self.seq
        t = float(t)
        doc = {
            "data": data,
            "event": event,
            "seq": seq,
            "sha": record_checksum(seq, t, event, data),
            "t": t,
        }
        line = json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
        offset = self._fh.tell()
        try:
            self._write(line)
        except OSError as exc:
            self._restore(offset)
            raise JournalWriteError(
                f"journal {self.path}: append of record seq={seq} "
                f"event={event!r} failed: {exc}"
            ) from exc
        self.seq += 1
        return seq

    def _write(self, line: str) -> None:
        """Push one record line to disk (overridden by fault injectors)."""
        assert self._fh is not None
        self._fh.write(line)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def _restore(self, offset: int) -> None:
        """Drop a partially written record so the file ends at *offset*."""
        assert self._fh is not None
        try:
            self._fh.seek(offset)
            self._fh.truncate()
            self._fh.flush()
        except OSError:
            # The file handle itself is broken; close it so further
            # appends fail loudly as "journal closed" rather than
            # silently corrupting the tail.
            fh, self._fh = self._fh, None
            try:
                fh.close()
            except OSError:
                pass

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def commit_to(self, path: Union[str, Path]) -> None:
        """Atomically move this journal's file to *path* and keep appending.

        Used by recovery: the replayed journal is written to a sibling
        temp file and swapped in with :func:`os.replace`, so the on-disk
        journal is never observable half-rewritten.
        """
        self.close()
        os.replace(self.path, path)
        self.path = Path(path)
        self._fh = open(self.path, "a", encoding="utf-8")

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # compaction and recovery seeding

    def seed(self, records: Sequence[Dict[str, Any]]) -> None:
        """Write already-checksummed records verbatim into an empty journal.

        Recovery's snapshot fast path uses this to carry the retained
        journal prefix into the replay journal without re-deriving it;
        appends then continue from the last seeded seq.  Goes through
        :meth:`_write` one record at a time with ``self.seq`` set to the
        record being written, so fault injectors see seeded records
        exactly like appended ones.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        if self.seq != 0 or self._fh.tell() != 0:
            raise JournalError(
                f"journal {self.path}: can only seed an empty journal "
                f"(seq={self.seq})"
            )
        for doc in records:
            self.seq = int(doc["seq"])
            line = json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
            offset = self._fh.tell()
            try:
                self._write(line)
            except OSError as exc:
                self._restore(offset)
                raise JournalWriteError(
                    f"journal {self.path}: seeding record seq={self.seq} "
                    f"failed: {exc}"
                ) from exc
            self.seq += 1

    def truncate_prefix(self, min_seq: int) -> int:
        """Compact: drop records with ``seq < min_seq``; returns the count.

        Rewrites the file to a sibling temp and swaps it in atomically, so
        a crash mid-compaction leaves either the old or the new journal,
        never a hybrid.  Always keeps at least one record — the first
        retained seq is how a reader learns where a compacted journal
        starts, so the file must never go empty.  ``seq`` (the next append)
        is unaffected.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        self._fh.flush()
        read = Journal.read(self.path)
        kept = [r for r in read.records if r["seq"] >= min_seq]
        if not kept and read.records:
            kept = [read.records[-1]]
        dropped = len(read.records) - len(kept)
        if dropped <= 0:
            return 0
        tmp = self.path.with_name(self.path.name + ".compact")
        with open(tmp, "w", encoding="utf-8") as fh:
            for doc in kept:
                fh.write(json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        return dropped

    # ------------------------------------------------------------------ #
    # reading

    @staticmethod
    def read(path: Union[str, Path]) -> JournalRead:
        """Longest valid record prefix plus everything recovery wants to know.

        The first record may carry any seq (a compacted journal starts at
        its compaction point); records after it must be dense.  Anything
        past the valid prefix — truncated line, bad checksum, seq gap —
        is discarded, counted in ``dropped_bytes``, and logged as a
        structured warning so torn tails are observable rather than
        silent.  A missing file reads as an empty journal.
        """
        path = Path(path)
        records: List[Dict[str, Any]] = []
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return JournalRead([], False, 0, 0)

        torn = False
        consumed = 0
        expected_seq: Optional[int] = None
        lines = raw.split(b"\n")
        for k, line in enumerate(lines):
            if line == b"":
                # The final newline leaves one empty tail element; anything
                # else empty mid-file is damage.
                torn = k != len(lines) - 1
                break
            try:
                doc = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                torn = True
                break
            if not isinstance(doc, dict):
                torn = True
                break
            try:
                seq, t, event, data, sha = (
                    doc["seq"], doc["t"], doc["event"], doc["data"], doc["sha"],
                )
            except KeyError:
                torn = True
                break
            if not isinstance(seq, int) or isinstance(seq, bool):
                torn = True
                break
            if expected_seq is None:
                if seq < 0:
                    torn = True
                    break
            elif seq != expected_seq:
                torn = True
                break
            try:
                want = record_checksum(seq, t, event, data)
            except (TypeError, ValueError):
                torn = True
                break
            if sha != want:
                torn = True
                break
            records.append(doc)
            consumed += len(line) + 1
            expected_seq = seq + 1
        # ``max`` guards the no-final-newline edge: a last record whose
        # newline (and nothing else) was chopped still parses, and its
        # ``consumed`` accounting assumes the newline was there.
        dropped = max(0, len(raw) - consumed)
        base_seq = int(records[0]["seq"]) if records else 0
        if torn and dropped > 0:
            _LOG.warning(
                "journal.torn_tail %s",
                json.dumps(
                    {
                        "dropped_bytes": dropped,
                        "kept_records": len(records),
                        "path": str(path),
                    },
                    sort_keys=True,
                ),
            )
        return JournalRead(records, torn, dropped, base_seq)

    @staticmethod
    def read_records(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], bool]:
        """Compatibility wrapper over :meth:`read`: ``(records, torn)``."""
        read = Journal.read(path)
        return read.records, read.torn

    @staticmethod
    def input_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Filter a record list down to the replayable input events."""
        return [r for r in records if r["event"] in INPUT_EVENTS]
