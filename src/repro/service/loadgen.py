"""Synthetic request streams for driving (and benchmarking) the daemon.

Three arrival profiles, all seeded and fully deterministic:

- ``poisson`` — memoryless arrivals at a constant rate, the standard
  open-loop service workload;
- ``burst`` — a low background rate punctuated by periodic bursts in
  which a clump of requests lands within a few seconds (a convoy of
  devices returning from a mission leg together);
- ``diurnal`` — a sinusoidally modulated rate (thinned from a Poisson
  majorant), modelling a day/night duty cycle.

A generated stream is a list of :class:`~repro.service.request.ChargingRequest`
with strictly ordered ids; :func:`write_trace` / :func:`read_trace`
round-trip streams through JSONL files (one ``ChargingRequest.to_dict``
per line) so the CLI can replay a recorded trace instead of generating.

Two further generators exist for the sharded service (docs/SHARDING.md):

- :func:`generate_keyed_requests` draws every attribute of request *k*
  from its own :func:`~repro.rng.derive_seed`-keyed stream, so the
  request is a pure function of ``(seed, k)`` — any subset of the stream
  (e.g. the requests a spatial shard sees) is independent of how the rest
  of the stream is consumed;
- :func:`generate_clustered_requests` places keyed requests in tight
  clusters around given centers — the spatially partitionable workload
  the shard-stability regression tests drive.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..core import Device
from ..energy import uniform_demands
from ..errors import ConfigurationError
from ..geometry import Field, Point, uniform_deployment
from ..rng import RandomState, derive_seed, ensure_rng
from .request import ChargingRequest

__all__ = [
    "PROFILES",
    "generate_requests",
    "generate_keyed_requests",
    "generate_clustered_requests",
    "write_trace",
    "read_trace",
]

#: Supported arrival profiles, in CLI/help order.
PROFILES = ("poisson", "burst", "diurnal")


def _arrival_times(
    profile: str, n: int, rate: float, rng, burst_every: float, burst_size: int
) -> List[float]:
    if profile == "poisson":
        return list(rng.exponential(1.0 / rate, size=n).cumsum())
    if profile == "burst":
        # Background Poisson at rate/2, plus clumps of ``burst_size``
        # requests every ``burst_every`` seconds, each clump spread over
        # a few seconds.  Take the n earliest of the merged stream.
        times: List[float] = []
        t = 0.0
        while len(times) < n:
            t += float(rng.exponential(2.0 / rate))
            times.append(t)
        horizon = times[-1]
        k = 1
        while (k * burst_every) <= horizon and len(times) < 4 * n:
            base = k * burst_every
            times.extend(base + float(d) for d in rng.exponential(1.0, size=burst_size))
            k += 1
        return sorted(times)[:n]
    if profile == "diurnal":
        # Thin a Poisson majorant at ``rate`` down to a sinusoid with a
        # 1-hour period: lambda(t) = rate * (0.55 + 0.45 sin(2 pi t / 3600)).
        times = []
        t = 0.0
        while len(times) < n:
            t += float(rng.exponential(1.0 / rate))
            accept = 0.55 + 0.45 * math.sin(2.0 * math.pi * t / 3600.0)
            if rng.uniform() < accept:
                times.append(t)
        return times
    raise ConfigurationError(
        f"unknown load profile {profile!r}; expected one of {PROFILES}"
    )


def generate_requests(
    n: int,
    rate: float,
    field: Optional[Field] = None,
    profile: str = "poisson",
    demand_low: float = 10e3,
    demand_high: float = 40e3,
    moving_rate: float = 0.05,
    deadline_slack: Optional[float] = None,
    max_price_factor: Optional[float] = None,
    burst_every: float = 600.0,
    burst_size: int = 8,
    rng: RandomState = None,
) -> List[ChargingRequest]:
    """Generate *n* requests under the given arrival *profile*.

    Positions are uniform over *field* (default 100 m x 100 m) and demands
    uniform over ``[demand_low, demand_high]`` joules.  When
    ``deadline_slack`` is set, each request carries a deadline
    ``submitted_at + slack`` seconds out (jittered +-25%); when
    ``max_price_factor`` is set, each carries a price cap of
    ``factor x demand^0.8`` — matched to the default power-law tariff's
    curvature, so factors near 1.2 leave a deliberate unaffordable tail
    that exercises ``price`` rejections.
    """
    if n < 0:
        raise ConfigurationError(f"n must be nonnegative, got {n}")
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    gen = ensure_rng(rng)
    field = field if field is not None else Field(100.0, 100.0)
    times = _arrival_times(profile, n, rate, gen, burst_every, burst_size)
    positions = uniform_deployment(field, n, gen)
    demands = uniform_demands(n, demand_low, demand_high, gen)
    requests: List[ChargingRequest] = []
    for k, (t, p, d) in enumerate(zip(times, positions, demands)):
        deadline = None
        if deadline_slack is not None:
            deadline = float(t) + deadline_slack * float(gen.uniform(0.75, 1.25))
        max_price = None
        if max_price_factor is not None:
            max_price = max_price_factor * d ** 0.8
        requests.append(
            ChargingRequest(
                request_id=f"r{k:06d}",
                device=Device(
                    device_id=f"d{k:06d}",
                    position=p,
                    demand=d,
                    moving_rate=moving_rate,
                ),
                submitted_at=float(t),
                deadline=deadline,
                max_price=max_price,
            )
        )
    return requests


def _keyed_request(
    k: int,
    seed: int,
    t: float,
    position: Point,
    demand_low: float,
    demand_high: float,
    moving_rate: float,
    deadline_slack: Optional[float],
    max_price_factor: Optional[float],
) -> ChargingRequest:
    """Build request *k* from its own ``derive_seed(seed, "request", k)`` stream."""
    gen = ensure_rng(derive_seed(seed, "request", k))
    demand = float(gen.uniform(demand_low, demand_high))
    deadline = None
    if deadline_slack is not None:
        deadline = float(t) + deadline_slack * float(gen.uniform(0.75, 1.25))
    max_price = None
    if max_price_factor is not None:
        max_price = max_price_factor * demand ** 0.8
    return ChargingRequest(
        request_id=f"r{k:06d}",
        device=Device(
            device_id=f"d{k:06d}",
            position=position,
            demand=demand,
            moving_rate=moving_rate,
        ),
        submitted_at=float(t),
        deadline=deadline,
        max_price=max_price,
    )


def _keyed_arrival_times(n: int, rate: float, seed: int) -> List[float]:
    """Poisson arrivals whose *k*-th gap comes from its own keyed stream.

    ``t_k`` is a pure function of ``(seed, k)`` — a deterministic sum of
    per-index gaps — so extending the stream never moves earlier arrivals.
    """
    times: List[float] = []
    t = 0.0
    for k in range(n):
        gap_rng = ensure_rng(derive_seed(seed, "arrival", k))
        t += float(gap_rng.exponential(1.0 / rate))
        times.append(t)
    return times


def generate_keyed_requests(
    n: int,
    rate: float,
    seed: int,
    field: Optional[Field] = None,
    demand_low: float = 10e3,
    demand_high: float = 40e3,
    moving_rate: float = 0.05,
    deadline_slack: Optional[float] = None,
    max_price_factor: Optional[float] = None,
) -> List[ChargingRequest]:
    """Generate *n* Poisson requests with per-request keyed randomness.

    Unlike :func:`generate_requests`, which draws every attribute from one
    shared stream (so consuming the stream differently changes everything
    downstream), request *k* here is a pure function of ``(seed, k)``:
    its gap comes from ``derive_seed(seed, "arrival", k)`` and its
    position/demand/deadline from ``derive_seed(seed, "request", k)``.
    Any subset of the stream — e.g. the requests one spatial shard sees —
    is therefore independent of how the rest is generated or consumed,
    which is what the shard-count stability tests rely on.
    """
    if n < 0:
        raise ConfigurationError(f"n must be nonnegative, got {n}")
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    field = field if field is not None else Field(100.0, 100.0)
    times = _keyed_arrival_times(n, rate, seed)
    requests: List[ChargingRequest] = []
    for k, t in enumerate(times):
        pos_rng = ensure_rng(derive_seed(seed, "position", k))
        position = Point(
            float(pos_rng.uniform(0.0, field.width)),
            float(pos_rng.uniform(0.0, field.height)),
        )
        requests.append(
            _keyed_request(
                k, seed, t, position, demand_low, demand_high,
                moving_rate, deadline_slack, max_price_factor,
            )
        )
    return requests


def generate_clustered_requests(
    n: int,
    rate: float,
    seed: int,
    centers: Sequence[Union[Point, Tuple[float, float]]],
    radius: float = 10.0,
    field: Optional[Field] = None,
    demand_low: float = 10e3,
    demand_high: float = 40e3,
    moving_rate: float = 0.05,
    deadline_slack: Optional[float] = None,
    max_price_factor: Optional[float] = None,
) -> List[ChargingRequest]:
    """Keyed requests clustered tightly around *centers*.

    Request *k* belongs to cluster ``k % len(centers)`` and lands uniformly
    in the disc of *radius* around that center (clamped to *field*), with
    all other attributes drawn exactly as :func:`generate_keyed_requests`
    does.  Because both the cluster assignment and the in-disc jitter are
    pure functions of ``(seed, k, centers)``, the workload decomposes
    cleanly under any spatial partition whose cells contain whole clusters
    — the shape the 2→4 shard-stability regression test needs.
    """
    if n < 0:
        raise ConfigurationError(f"n must be nonnegative, got {n}")
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    if not centers:
        raise ConfigurationError("clustered workload needs at least one center")
    if radius <= 0:
        raise ConfigurationError(f"cluster radius must be positive, got {radius}")
    field = field if field is not None else Field(100.0, 100.0)
    points = [c if isinstance(c, Point) else Point(float(c[0]), float(c[1])) for c in centers]
    times = _keyed_arrival_times(n, rate, seed)
    requests: List[ChargingRequest] = []
    for k, t in enumerate(times):
        center = points[k % len(points)]
        pos_rng = ensure_rng(derive_seed(seed, "position", k))
        # Uniform over the disc: radius ~ sqrt(u), angle ~ uniform.
        r = radius * math.sqrt(float(pos_rng.uniform()))
        theta = float(pos_rng.uniform(0.0, 2.0 * math.pi))
        position = Point(
            min(max(center.x + r * math.cos(theta), 0.0), field.width),
            min(max(center.y + r * math.sin(theta), 0.0), field.height),
        )
        requests.append(
            _keyed_request(
                k, seed, t, position, demand_low, demand_high,
                moving_rate, deadline_slack, max_price_factor,
            )
        )
    return requests


def write_trace(path: Union[str, Path], requests: List[ChargingRequest]) -> None:
    """Write a request stream as JSONL (one ``to_dict`` per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for request in requests:
            fh.write(json.dumps(request.to_dict(), sort_keys=True) + "\n")


def read_trace(path: Union[str, Path]) -> List[ChargingRequest]:
    """Read a JSONL request trace written by :func:`write_trace`."""
    requests: List[ChargingRequest] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                requests.append(ChargingRequest.from_dict(json.loads(line)))
    return requests
