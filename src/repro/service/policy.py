"""Adapter exposing the service daemon as an online scheduling policy.

The online harness (:mod:`repro.online.harness`) benchmarks anything with
a ``name`` and a ``run(arrivals, chargers, mobility) -> (Schedule,
CCSInstance)``.  :class:`ServicePolicy` drives a fresh
:class:`~repro.service.kernel.ChargingService` over the arrival stream
(submit each arrival at its timestamp, then drain) and freezes the
departed sessions into a standard :class:`~repro.core.schedule.Schedule`
— so the daemon's epoch fold/improve/repair loop can be measured with the
same competitive-ratio machinery as :class:`~repro.online.scheduler.GreedyDispatch`
and :class:`~repro.online.scheduler.BatchScheduler`.

Requests carry no deadline or price cap here: the harness contract is
that every arrived device ends up in the schedule, so the adapter runs
the daemon in its always-admit regime.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core import CCSInstance, Schedule, Session
from ..core.costsharing import CostSharingScheme
from ..errors import ConfigurationError
from ..mobility import MobilityModel
from ..online.arrivals import Arrival
from ..wpt import Charger
from .kernel import ChargingService, ServiceConfig
from .request import ChargingRequest

__all__ = ["ServicePolicy"]


class ServicePolicy:
    """Run the charging-service kernel as an online policy."""

    name = "online-service"

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        scheme: Optional[CostSharingScheme] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.scheme = scheme

    def run(
        self,
        arrivals: Sequence[Arrival],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
    ) -> Tuple[Schedule, CCSInstance]:
        """Feed *arrivals* through a fresh daemon; return its schedule."""
        if not arrivals:
            raise ConfigurationError("no arrivals were scheduled")
        service = ChargingService(
            chargers, mobility=mobility, scheme=self.scheme, config=self.config
        )
        for k, arrival in enumerate(arrivals):
            service.submit(
                ChargingRequest(
                    request_id=f"p{k:06d}",
                    device=arrival.device,
                    submitted_at=arrival.time,
                )
            )
        service.drain()
        instance = CCSInstance(
            devices=[a.device for a in arrivals],
            chargers=list(chargers),
            mobility=service.planner.instance.mobility,
        )
        charger_index = {c.charger_id: j for j, c in enumerate(service.chargers)}
        sessions = [
            Session(
                charger=charger_index[s["charger"]],
                members=frozenset(instance.device_index(d) for d in s["members"]),
            )
            for s in service.final_schedule()
        ]
        return Schedule(sessions, solver=self.name), instance
