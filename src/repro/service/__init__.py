"""repro.service — a long-lived charging-as-a-service daemon.

The offline solvers answer "given these n devices, what is the best
coalition structure?"; this package answers the *operational* question
the paper's title poses — charging as a **service**: requests arrive over
time, each gets an immediate admission decision and a price quote, and an
epoch-based replanner folds admitted work into the live plan using the
incremental coalition engine (never a from-scratch re-solve).

Layout:

- :mod:`.clock` / :mod:`.request` — logical time and the request lifecycle;
- :mod:`.admission` — bounded-queue admission with explicit rejection reasons;
- :mod:`.plan` — growable instance + coalition structure + incremental
  replanner (fold / improve / repair);
- :mod:`.kernel` — the :class:`ChargingService` event loop;
- :mod:`.journal` — append-only checksummed JSONL durability, with
  :meth:`ChargingService.recover` crash recovery;
- :mod:`.snapshot` — checksummed, atomically-written state snapshots
  keyed to a journal seq, bounding recovery to the suffix replay (see
  ``docs/RECOVERY.md``);
- :mod:`.metrics` — deterministic counters / gauges / histograms;
- :mod:`.loadgen` — seeded Poisson / burst / diurnal request streams;
- :mod:`.policy` — adapter running the daemon under the online harness.

See ``docs/SERVICE.md`` for the lifecycle, journal format, and recovery
semantics.
"""

from .admission import AdmissionController, AdmissionDecision, earliest_departure
from .clock import ServiceClock
from .journal import Journal, JournalRead, record_checksum
from .kernel import ChargingService, ServiceConfig
from .snapshot import (
    SNAPSHOT_SCHEMA,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    snapshot_path,
    write_snapshot,
)
from .loadgen import (
    PROFILES,
    generate_clustered_requests,
    generate_keyed_requests,
    generate_requests,
    read_trace,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, Metrics, merge_snapshots
from .plan import GrowableCoalitionStructure, IncrementalPlanner, PlanInstance
from .policy import ServicePolicy
from .request import ChargingRequest, RequestRecord, RequestState

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "earliest_departure",
    "ServiceClock",
    "Journal",
    "JournalRead",
    "record_checksum",
    "ChargingService",
    "ServiceConfig",
    "SNAPSHOT_SCHEMA",
    "snapshot_path",
    "list_snapshots",
    "write_snapshot",
    "load_snapshot",
    "prune_snapshots",
    "PROFILES",
    "generate_requests",
    "generate_keyed_requests",
    "generate_clustered_requests",
    "read_trace",
    "write_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "merge_snapshots",
    "GrowableCoalitionStructure",
    "IncrementalPlanner",
    "PlanInstance",
    "ServicePolicy",
    "ChargingRequest",
    "RequestRecord",
    "RequestState",
]
