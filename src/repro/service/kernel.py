"""The charging-service daemon kernel.

:class:`ChargingService` is a deterministic, event-driven state machine:
customers :meth:`submit` requests, the admission controller answers
immediately, and an epoch-grid event loop folds admitted batches into the
live coalition plan (via the PR-1 incremental engine — never a batch
re-solve), departs sessions once their commitment window elapses, expires
requests that miss their deadlines, and completes sessions when the pads
finish transmitting.

Time is *logical* (:class:`~repro.service.clock.ServiceClock`): the kernel
touches no wall clock and no ambient randomness, so a fixed input stream
always produces byte-identical journals, metrics snapshots, and session
logs — the property the crash-recovery tests assert literally.

Epoch timeline (``epoch`` = fold period, ``window`` = commitment window)::

    t=0        e          2e         3e
    |----------|----------|----------|---->
       submit──┤ fold      │ depart (opened + window elapsed)
               └ admitted requests enter the live plan, improve, repair

At each boundary the order is fixed (and pinned by tests): completions →
departures → expirations → fold.  A deadline exactly on a boundary is
therefore *met* if its session departs at that boundary.

Failure semantics (see docs/FAULTS.md).  Three more input events join
``submit``/``advance``/``drain``:

- :meth:`fail_charger` — the charger goes dark: its coalitions are
  *evacuated* (``EVACUATING``) and at the next boundary each displaced
  request is re-quoted over the surviving chargers against its original
  quote (the price ceiling).  Ceiling holds → re-folded; ceiling broken →
  ``REJECTED`` with reason ``charger_failed``.  No full re-solve either
  way.
- :meth:`restore_charger` — the charger is quotable/placeable again.
- :meth:`cancel` — a customer withdraws (or never shows up).  A queued
  request just leaves; a planned one is removed through the blessed
  coalition paths and its session cost re-shares among the survivors,
  who are repaired back under their own ceilings (evicting them to
  ``EVACUATING`` if a concurrent outage makes that impossible).

Request lifecycle with the failure states::

    SUBMITTED ─> ADMITTED ─> GROUPED ─> CHARGING ─> DONE
        │            │          │  ^
        │            │          │  └──────────────┐
        └> REJECTED  ├> EXPIRED ├> EXPIRED        │ re-fold (ceiling holds)
                     └> CANCELLED > CANCELLED     │
                                 └> EVACUATING ───┤
                                       │          └> (next epoch re-quote)
                                       ├> REJECTED (charger_failed)
                                       └> EXPIRED / CANCELLED

Durability: every transition is appended to a checksummed JSONL journal.
``submit``/``advance``/``drain``/``charger_down``/``charger_up``/``cancel``
records are the *inputs*; :meth:`recover` replays them through a fresh
kernel, re-deriving everything else, and atomically rewrites the journal
to the canonical form — after which re-feeding the original stream
(idempotent per request id, per fault-event key) converges on the exact
bytes an uninterrupted run would have produced.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core import Device
from ..core.costsharing import CostSharingScheme, EgalitarianSharing
from ..errors import ConfigurationError, RecoveryError, ServiceError, SnapshotError
from ..geometry import Point
from ..mobility import MobilityModel
from ..wpt import Charger
from .admission import REASON_CHARGER_FAILED, AdmissionController
from .clock import ServiceClock
from .journal import JOURNAL_SCHEMA, Journal
from .metrics import Metrics
from .plan import IncrementalPlanner
from .request import ChargingRequest, RequestRecord, RequestState
from .snapshot import list_snapshots, load_snapshot, prune_snapshots, write_snapshot

__all__ = ["ServiceConfig", "ChargingService"]

#: Fixed histogram buckets (seconds / ratios / sizes) — part of the
#: snapshot contract, so recovery comparisons bin identically.
_LATENCY_BUCKETS = (30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0)
_CHARGE_BUCKETS = (300.0, 600.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0)
_RATIO_BUCKETS = (0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)
_SIZE_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)

_TIME_EPS = 1e-9


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the daemon (all logical-time seconds).

    Parameters
    ----------
    epoch:
        Replanning period: admitted requests buffered since the last grid
        point ``k·epoch`` are folded into the plan at the next one.
    window:
        Commitment window: a coalition departs (freezes and starts
        charging) at the first grid point at least *window* after it was
        opened.
    queue_limit:
        Bound on the admitted-but-not-yet-planned queue; submissions
        beyond it are rejected (``queue-full``), never silently buffered.
    max_active:
        Optional cap on devices concurrently queued or in the live plan
        (``capacity`` rejections); ``None`` = unbounded.
    improvement_sweeps / repair_rounds / tol:
        Replanner bounds, passed to
        :class:`~repro.service.plan.IncrementalPlanner`.
    """

    epoch: float = 60.0
    window: float = 120.0
    queue_limit: int = 256
    max_active: Optional[int] = None
    improvement_sweeps: int = 2
    repair_rounds: int = 3
    tol: float = 1e-9

    def __post_init__(self) -> None:
        if self.epoch <= 0:
            raise ConfigurationError(f"epoch must be positive, got {self.epoch}")
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.max_active is not None and self.max_active < 1:
            raise ConfigurationError(
                f"max_active must be >= 1 or None, got {self.max_active}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form, pinned into the journal's ``open`` record."""
        return {
            "epoch": float(self.epoch),
            "window": float(self.window),
            "queue_limit": int(self.queue_limit),
            "max_active": None if self.max_active is None else int(self.max_active),
            "improvement_sweeps": int(self.improvement_sweeps),
            "repair_rounds": int(self.repair_rounds),
            "tol": float(self.tol),
        }


class ChargingService:
    """A long-lived charging-as-a-service daemon (see module docstring)."""

    def __init__(
        self,
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        config: Optional[ServiceConfig] = None,
        journal_path: Optional[Union[str, Path]] = None,
        journal: Optional[Journal] = None,
        journal_sync: bool = True,
        snapshot_every: Optional[int] = None,
        snapshot_keep: int = 2,
        compact: bool = True,
    ):
        """``journal_path`` opens a fresh journal there; ``journal`` hands
        in a pre-built one instead (fault injection / tests).
        ``journal_sync`` controls fsync-per-append; it is an operational
        knob, deliberately *not* part of :class:`ServiceConfig` (which is
        pinned into the journal header), so a daemon and its recovery can
        differ on it.  ``snapshot_every`` (operational too, same reason)
        turns on automatic state snapshots roughly every that many journal
        records — taken only at quiescent points, i.e. at the end of a
        public input method; ``snapshot_keep`` bounds how many snapshot
        files survive pruning, and ``compact`` lets a successful snapshot
        truncate the journal prefix the oldest retained snapshot covers.
        """
        if snapshot_every is not None and snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1 or None, got {snapshot_every}"
            )
        if snapshot_keep < 1:
            raise ConfigurationError(
                f"snapshot_keep must be >= 1, got {snapshot_keep}"
            )
        if journal is not None and journal_path is not None:
            raise ConfigurationError("pass journal_path or journal, not both")
        self.config = config if config is not None else ServiceConfig()
        self.scheme: CostSharingScheme = (
            scheme if scheme is not None else EgalitarianSharing()
        )
        self.planner = IncrementalPlanner(
            chargers,
            mobility=mobility,
            scheme=self.scheme,
            tol=self.config.tol,
            improvement_sweeps=self.config.improvement_sweeps,
            repair_rounds=self.config.repair_rounds,
        )
        self.chargers = self.planner.instance.chargers
        self._charger_index = {
            c.charger_id: j for j, c in enumerate(self.chargers)
        }
        self.admission = AdmissionController(
            epoch=self.config.epoch,
            window=self.config.window,
            queue_limit=self.config.queue_limit,
            max_active=self.config.max_active,
        )
        self.clock = ServiceClock()
        self.metrics = Metrics()
        self.requests: Dict[str, RequestRecord] = {}
        self._queue: List[str] = []
        self._rid_of_index: Dict[int, str] = {}
        self._opened_at: Dict[int, float] = {}
        self._completions: List[tuple] = []
        self._sessions: List[Dict[str, Any]] = []
        self._session_seq = 0
        self._epoch_index = 0  # boundaries processed so far: epoch * index
        #: Request ids displaced from the plan (charger outage / repair
        #: eviction), awaiting re-quote at the next boundary.
        self._evacuating: List[str] = []
        #: ``(event, target, t)`` keys of fault inputs already applied —
        #: replaying a journaled fault event is a no-op, exactly like
        #: resubmitting a known request id.
        self._fault_keys: Set[Tuple[str, str, float]] = set()
        #: Set when availability shrank since the last fold; queued
        #: requests then get re-validated against their ceilings too.
        self._avail_dirty = False
        if journal is not None:
            self.journal: Optional[Journal] = journal
        else:
            self.journal = (
                Journal(journal_path, sync=journal_sync)
                if journal_path is not None
                else None
            )
        if self.journal is not None:
            self.journal.append("open", 0.0, self._open_payload())
        #: Automatic snapshot cadence (None = off); see :meth:`write_snapshot`.
        self.snapshot_every = snapshot_every
        self.snapshot_keep = int(snapshot_keep)
        self.compact = bool(compact)
        self._last_snapshot_seq = 0
        #: Set during recovery replay: the replay journal lives at a temp
        #: path, so auto-snapshots must wait until it commits home.
        self._snapshots_paused = False
        # Pre-register every metric so empty snapshots are fully shaped.
        for name in (
            "submitted", "admitted", "rejected", "grouped", "expired",
            "completed", "sessions_departed", "cancelled", "evacuated",
            "refolded", "charger_failures", "charger_recoveries",
        ):
            self.metrics.counter(name)
        # Observability-only instruments: fault-history dependent, so they
        # stay out of the deterministic snapshot (see Metrics docstring).
        for name in (
            "journal.recovered_bytes_dropped",
            "journal.compacted_records",
            "snapshots_written",
            "recovery.snapshot_used",
            "recovery.snapshot_fallbacks",
            "recovery.records_replayed",
        ):
            self.metrics.counter(name, operational=True)
        self.metrics.histogram("admission_latency", _LATENCY_BUCKETS)
        self.metrics.histogram("time_to_charge", _CHARGE_BUCKETS)
        self.metrics.histogram("cost_vs_quote", _RATIO_BUCKETS)
        self.metrics.histogram("session_size", _SIZE_BUCKETS)
        self._update_gauges()

    def _open_payload(self) -> Dict[str, Any]:
        return {
            "schema": JOURNAL_SCHEMA,
            "config": self.config.to_dict(),
            "chargers": [c.charger_id for c in self.chargers],
            "scheme": self.scheme.name,
            "mobility": type(self.planner.instance.mobility).__name__,
        }

    def _journal(self, event: str, t: float, data: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(event, t, data)

    # ------------------------------------------------------------------ #
    # input events

    def submit(self, request: ChargingRequest) -> str:
        """Process one submission; returns the request's resulting state.

        Idempotent per ``request_id``: resubmitting a known id is a no-op
        returning the current state (this is what makes re-feeding an
        event stream after crash recovery safe).
        """
        known = self.requests.get(request.request_id)
        if known is not None:
            return known.state
        self._advance_to(request.submitted_at)
        now = self.clock.now
        self._journal("submit", request.submitted_at, request.to_dict())
        self.metrics.counter("submitted").inc()

        record = RequestRecord(request)
        self.requests[request.request_id] = record
        try:
            quote, quote_charger = self.planner.quote(request.device)
        except ServiceError:
            # Every charger is down: nothing can even quote this device.
            record.state = RequestState.REJECTED
            record.reason = REASON_CHARGER_FAILED
            self._journal(
                "reject",
                now,
                {"id": request.request_id, "reason": REASON_CHARGER_FAILED},
            )
            self.metrics.counter("rejected").inc()
            self.metrics.counter(f"rejected.{REASON_CHARGER_FAILED}").inc()
            self._update_gauges()
            self._maybe_snapshot()
            return record.state
        record.quote, record.quote_charger = quote, quote_charger
        duplicate = self._device_in_service(request.device.device_id)
        decision = self.admission.decide(
            request,
            now=now,
            queue_depth=len(self._queue),
            active_devices=len(self._rid_of_index) + len(self._queue),
            quote=quote,
            duplicate=duplicate,
        )
        if not decision:
            record.state = RequestState.REJECTED
            record.reason = decision.reason
            self._journal(
                "reject", now, {"id": request.request_id, "reason": decision.reason}
            )
            self.metrics.counter("rejected").inc()
            self.metrics.counter(f"rejected.{decision.reason}").inc()
        else:
            record.state = RequestState.ADMITTED
            self._queue.append(request.request_id)
            self._journal(
                "admit",
                now,
                {
                    "id": request.request_id,
                    "quote": float(quote),
                    "charger": self.chargers[quote_charger].charger_id,
                },
            )
            self.metrics.counter("admitted").inc()
        self._update_gauges()
        self._maybe_snapshot()
        return record.state

    def advance(self, to: float) -> None:
        """Drive the event loop forward to logical time *to*.

        Time movement is an *input*: the target is journaled (like
        ``submit``/``drain``) so recovery can replay the epoch boundaries
        it triggers.  Targets at or before the current clock are complete
        no-ops — not even journaled — which keeps re-feeding a stream
        after recovery idempotent.
        """
        t = float(to)
        if t <= self.clock.now + _TIME_EPS:
            return
        self._journal("advance", t, {})
        self._advance_to(t)
        self._maybe_snapshot()

    # ------------------------------------------------------------------ #
    # fault inputs (see docs/FAULTS.md)

    def fail_charger(self, charger_id: str, at: Optional[float] = None) -> bool:
        """Charger outage at logical time *at* (default: now); an input event.

        The charger stops quoting and receiving placements, and every
        coalition bound to it is *evacuated*: its members move to
        ``EVACUATING`` and are re-quoted against their original ceilings
        at the next epoch boundary.  Idempotent per ``(charger, at)`` key
        on the *requested* time (the clamped time depends on how far the
        clock has run, so only the raw time is stable across a recovery
        re-feed); the raw time is journaled in ``data["at"]`` so replay
        reconstructs the same key.  A no-op (not journaled) while the
        charger is already down.  Returns whether the outage was applied.
        """
        j = self._charger_of(charger_id)
        raw = self.clock.now if at is None else float(at)
        t = max(raw, self.clock.now)
        key = ("charger_down", charger_id, raw)
        if key in self._fault_keys or not self.planner.is_available(j):
            return False
        self._advance_to(t)
        self._fault_keys.add(key)
        self._journal("charger_down", t, {"charger": charger_id, "at": raw})
        self.metrics.counter("charger_failures").inc()
        self.planner.fail_charger(j)
        self._avail_dirty = True
        for index in self.planner.evacuate_charger(j):
            self._evacuate(index, t, cause=charger_id)
        self._update_gauges()
        self._maybe_snapshot()
        return True

    def restore_charger(self, charger_id: str, at: Optional[float] = None) -> bool:
        """Charger recovery at logical time *at*; an input event.

        The charger quotes and receives placements again from the next
        fold on.  Requests rejected during the outage stay rejected
        (terminal states never un-happen).  Idempotent like
        :meth:`fail_charger`; returns whether the recovery was applied.
        """
        j = self._charger_of(charger_id)
        raw = self.clock.now if at is None else float(at)
        t = max(raw, self.clock.now)
        key = ("charger_up", charger_id, raw)
        if key in self._fault_keys or self.planner.is_available(j):
            return False
        self._advance_to(t)
        self._fault_keys.add(key)
        self._journal("charger_up", t, {"charger": charger_id, "at": raw})
        self.metrics.counter("charger_recoveries").inc()
        self.planner.restore_charger(j)
        self._update_gauges()
        self._maybe_snapshot()
        return True

    def cancel(
        self,
        request_id: str,
        at: Optional[float] = None,
        reason: str = "cancelled",
    ) -> Optional[str]:
        """Customer withdrawal (or no-show) of *request_id*; an input event.

        Queued and evacuating requests simply leave; a planned request is
        removed from its coalition through the blessed incremental paths,
        the session cost re-shares among the survivors, and they are
        repaired back under their own ceilings.  A request that already
        departed (``CHARGING``) or reached a terminal state is past the
        point of no return — the cancel is ignored (and not journaled).
        Idempotent per ``(request, at)`` key on the *requested* time
        (journaled in ``data["at"]``, like :meth:`fail_charger`).
        Returns the request's resulting state, or ``None`` for an
        unknown id.
        """
        record = self.requests.get(request_id)
        if record is None:
            return None
        raw = self.clock.now if at is None else float(at)
        t = max(raw, self.clock.now)
        key = ("cancel", request_id, raw)
        if key in self._fault_keys:
            return record.state
        if record.state == RequestState.CHARGING or (
            record.state in RequestState.TERMINAL
        ):
            return record.state
        self._advance_to(t)
        self._fault_keys.add(key)
        # Journal the input *before* re-checking: the advance above already
        # journaled the boundary events it derived, and replay must re-feed
        # this cancel to re-derive that same advance.
        self._journal("cancel", t, {"id": request_id, "reason": reason, "at": raw})
        # Boundary processing during the advance may have resolved the
        # request (expired, departed); then the cancel came too late and
        # changes nothing.
        if record.state == RequestState.CHARGING or (
            record.state in RequestState.TERMINAL
        ):
            return record.state
        if record.state == RequestState.ADMITTED:
            self._queue.remove(request_id)
        elif record.state == RequestState.EVACUATING:
            self._evacuating.remove(request_id)
            if record.device_index is not None:
                self.planner.ceiling.pop(record.device_index, None)
        elif record.state == RequestState.GROUPED:
            index = record.device_index
            assert index is not None
            del self._rid_of_index[index]
            evicted = self.planner.remove(index)
            for other in evicted:
                self._evacuate(other, t, cause="ceiling")
        record.state = RequestState.CANCELLED
        record.reason = reason
        self.metrics.counter("cancelled").inc()
        self.metrics.counter(f"cancelled.{reason}").inc()
        self._update_gauges()
        self._maybe_snapshot()
        return record.state

    def _charger_of(self, charger_id: str) -> int:
        try:
            return self._charger_index[charger_id]
        except KeyError:
            raise ServiceError(f"unknown charger {charger_id!r}") from None

    def _evacuate(self, index: int, t: float, cause: str) -> None:
        """Move the planned device at *index* to ``EVACUATING``.

        *cause* is the failed charger id, or ``"ceiling"`` when repair
        evicted the device because no available placement met its quote.
        The ceiling is kept for the next boundary's re-quote.
        """
        rid = self._rid_of_index.pop(index)
        record = self.requests[rid]
        record.state = RequestState.EVACUATING
        self._evacuating.append(rid)
        self._journal("evacuate", t, {"id": rid, "cause": cause})
        self.metrics.counter("evacuated").inc()

    def _advance_to(self, to: float) -> None:
        """Advance without journaling (``submit``/``drain`` carry their own
        time; replaying them re-derives the same boundary processing).

        Processes every epoch boundary up to *to* (completions →
        departures → expirations → fold, in that order at each boundary)
        and any session completions due.  Earlier targets are clamped to
        "now" (a no-op): the kernel is lenient at its *input* boundary so
        re-fed streams stay idempotent, while :class:`ServiceClock` itself
        treats a backward move as a hard :class:`~repro.errors.ClockError`.
        """
        t = max(float(to), self.clock.now)
        while (self._epoch_index + 1) * self.config.epoch <= t + _TIME_EPS:
            boundary = (self._epoch_index + 1) * self.config.epoch
            self._run_epoch(boundary)
            self._epoch_index += 1
        self._process_completions(t)
        self.clock.advance(t)
        self._update_gauges()

    def drain(self) -> None:
        """Flush the service: fold the queue, depart everything, complete.

        An input event (journaled) marking end-of-stream: advances to the
        next epoch boundary so queued requests get planned, force-departs
        every live coalition regardless of window age, and runs all
        resulting sessions to completion.  After ``drain`` every request
        is in a terminal state.

        Draining an already-drained service is a complete no-op (not even
        journaled) — the drain analogue of idempotent ``submit``, so
        re-feeding a recovered daemon its original input stream converges
        on the identical journal.
        """
        if not (
            self._queue or self._rid_of_index or self._completions
            or self._evacuating
        ):
            return
        t0 = self.clock.now
        self._journal("drain", t0, {})
        boundary = (self._epoch_index + 1) * self.config.epoch
        self._advance_to(boundary)
        # A fold can evict freshly displaced requests (charger outage);
        # each needs one more boundary to resolve (re-fold or reject), and
        # an eviction chain is at most two boundaries deep — bounded here
        # only as a belt against a livelocking regression.
        extra = 0
        while self._evacuating or self._queue:
            extra += 1
            if extra > 1000:
                raise ServiceError(
                    f"drain did not converge: {len(self._evacuating)} "
                    f"evacuating / {len(self._queue)} queued after {extra} "
                    "extra epochs"
                )
            boundary = (self._epoch_index + 1) * self.config.epoch
            self._advance_to(boundary)
        for cid in self.planner.live_cids():
            self._depart(cid, boundary)
        while self._completions:
            self._process_completions(self._completions[0][0])
        self.clock.advance(max(self.clock.now, t0, boundary))
        self._update_gauges()
        self._maybe_snapshot()

    # ------------------------------------------------------------------ #
    # the epoch machine

    def _run_epoch(self, boundary: float) -> None:
        self._process_completions(boundary)
        self._process_departures(boundary)
        self._process_expirations(boundary)
        self._fold(boundary)
        # Completions can outrun the epoch grid (a drain runs sessions far
        # past the last boundary); catching the grid up must not move the
        # strict clock backwards.
        self.clock.advance(max(boundary, self.clock.now))

    def _process_departures(self, boundary: float) -> None:
        # A coalition can die between boundaries — evacuated by a charger
        # outage, or emptied by cancellations/expiries.  Its window
        # commitment dies with it (cids are never reused, so a stale
        # entry can only ever point at a tombstone).
        live = set(self.planner.live_cids())
        for cid in list(self._opened_at):
            if cid not in live:
                del self._opened_at[cid]
        due = sorted(
            cid
            for cid, opened in self._opened_at.items()
            if boundary - opened >= self.config.window - _TIME_EPS
        )
        for cid in due:
            self._depart(cid, boundary)

    def _depart(self, cid: int, boundary: float) -> None:
        opened = self._opened_at.pop(cid, boundary)
        info = self.planner.retire(cid)
        seq = self._session_seq
        self._session_seq += 1
        charger = self.chargers[info["charger"]]
        completes = boundary + charger.session_duration(info["demands"])
        devices = self.planner.instance.devices
        member_ids = [devices[i].device_id for i in info["members"]]
        request_ids, costs = [], {}
        for i, device_id in zip(info["members"], member_ids):
            rid = self._rid_of_index.pop(i)
            request_ids.append(rid)
            record = self.requests[rid]
            realized = info["shares"][i] + info["moving"][i]
            record.state = RequestState.CHARGING
            record.departed_at = boundary
            record.session_seq = seq
            record.realized_cost = realized
            costs[device_id] = float(realized)
            if record.quote:
                self.metrics.histogram("cost_vs_quote").observe(realized / record.quote)
        session = {
            "seq": seq,
            "charger": charger.charger_id,
            "members": member_ids,
            "requests": request_ids,
            "price": float(info["price"]),
            "costs": costs,
            "opened": float(opened),
            "departed": float(boundary),
            "completes": float(completes),
        }
        self._sessions.append(session)
        heapq.heappush(self._completions, (completes, seq))
        self._journal("depart", boundary, session)
        self.metrics.counter("sessions_departed").inc()
        self.metrics.histogram("session_size").observe(len(member_ids))

    def _process_expirations(self, boundary: float) -> None:
        still_queued: List[str] = []
        for rid in self._queue:
            record = self.requests[rid]
            deadline = record.request.deadline
            if deadline is not None and deadline <= boundary + _TIME_EPS:
                self._expire(record, boundary, where="queue")
            else:
                still_queued.append(rid)
        self._queue = still_queued
        # Planned requests are checked *forward*: departures for this
        # boundary have already run, so the next chance to depart is
        # ``boundary + epoch`` — a member whose deadline falls before that
        # is doomed and expires now (a deadline exactly on a boundary can
        # still be met by departing at that boundary, which happens first).
        horizon = boundary + self.config.epoch - _TIME_EPS
        for index in self.planner.active_indices():
            if index not in self._rid_of_index:
                # Evicted by a repair cascade earlier in this sweep.
                continue
            rid = self._rid_of_index[index]
            record = self.requests[rid]
            deadline = record.request.deadline
            if deadline is not None and deadline < horizon:
                del self._rid_of_index[index]
                evicted = self.planner.remove(index)
                self._expire(record, boundary, where="plan")
                for other in evicted:
                    self._evacuate(other, boundary, cause="ceiling")
        # Evacuated requests wait for the fold below; one that cannot make
        # any future departure is doomed just like a planned one.
        still_evacuating: List[str] = []
        for rid in self._evacuating:
            record = self.requests[rid]
            deadline = record.request.deadline
            if deadline is not None and deadline < horizon:
                if record.device_index is not None:
                    self.planner.ceiling.pop(record.device_index, None)
                self._expire(record, boundary, where="evacuating")
            else:
                still_evacuating.append(rid)
        self._evacuating = still_evacuating

    def _expire(self, record: RequestRecord, boundary: float, where: str) -> None:
        record.state = RequestState.EXPIRED
        record.reason = where
        self._journal(
            "expire", boundary, {"id": record.request.request_id, "where": where}
        )
        self.metrics.counter("expired").inc()
        self.metrics.counter(f"expired.{where}").inc()

    def _requote_holds(self, record: RequestRecord) -> bool:
        """Does a fresh quote still fit under the request's original one?

        The original quote is the binding price ceiling; a re-quote never
        replaces it.  False when no available charger can quote at all.
        """
        if record.quote is None:
            return False
        try:
            quote, _ = self.planner.quote(record.request.device)
        except ServiceError:
            return False
        return quote <= record.quote + self.planner.tol

    def _reject_charger_failed(self, record: RequestRecord, t: float) -> None:
        """Terminal rejection of an admitted request after an outage."""
        if record.device_index is not None:
            self.planner.ceiling.pop(record.device_index, None)
        record.state = RequestState.REJECTED
        record.reason = REASON_CHARGER_FAILED
        self._journal(
            "reject", t,
            {"id": record.request.request_id, "reason": REASON_CHARGER_FAILED},
        )
        self.metrics.counter("rejected").inc()
        self.metrics.counter(f"rejected.{REASON_CHARGER_FAILED}").inc()

    def _fold(self, boundary: float) -> None:
        evacuees, self._evacuating = self._evacuating, []
        queued, self._queue = self._queue, []
        #: ``(rid, refold)`` — evacuated requests keep their device index
        #: and ceiling; fresh ones enter the plan instance here.
        batch: List[Tuple[str, bool]] = []
        for rid in evacuees:
            record = self.requests[rid]
            if self._requote_holds(record):
                batch.append((rid, True))
            else:
                self._reject_charger_failed(record, boundary)
        check_queue = self._avail_dirty
        self._avail_dirty = False
        for rid in queued:
            record = self.requests[rid]
            # Queued quotes only need re-validation when availability
            # shrank since they were issued; recoveries can only make
            # quotes cheaper.
            if check_queue and not self._requote_holds(record):
                self._reject_charger_failed(record, boundary)
            else:
                batch.append((rid, False))
        if batch:
            indices: List[int] = []
            for rid, refold in batch:
                record = self.requests[rid]
                if refold:
                    index = record.device_index
                    assert index is not None
                else:
                    index = self.planner.add(
                        record.request.device, ceiling=record.quote
                    )
                    record.device_index = index
                self._rid_of_index[index] = rid
                indices.append(index)
            _placements, evicted = self.planner.fold(indices)
            for other in evicted:
                self._evacuate(other, boundary, cause="ceiling")
            for rid, refold in batch:
                record = self.requests[rid]
                if not self.planner.structure.is_placed(record.device_index):
                    continue  # evicted again by this very fold's repair
                coalition = self.planner.structure.coalition_of(record.device_index)
                record.state = RequestState.GROUPED
                record.grouped_at = boundary
                self._journal(
                    "plan",
                    boundary,
                    {
                        "id": rid,
                        "charger": self.chargers[coalition.charger].charger_id,
                    },
                )
                if refold:
                    self.metrics.counter("refolded").inc()
                else:
                    self.metrics.counter("grouped").inc()
                    self.metrics.histogram("admission_latency").observe(
                        boundary - record.request.submitted_at
                    )
        # Coalitions born this epoch (fresh folds, or singletons split off
        # by improvement/repair moves) start their commitment window now.
        live = set(self.planner.live_cids())
        for cid in list(self._opened_at):
            if cid not in live:
                del self._opened_at[cid]
        for cid in sorted(live):
            if cid not in self._opened_at:
                self._opened_at[cid] = boundary

    def _process_completions(self, t: float) -> None:
        while self._completions and self._completions[0][0] <= t + _TIME_EPS:
            completes, seq = heapq.heappop(self._completions)
            session = self._sessions[seq]
            self._journal("complete", completes, {"session": seq})
            for rid in session["requests"]:
                record = self.requests[rid]
                record.state = RequestState.DONE
                record.completed_at = completes
                self.metrics.counter("completed").inc()
                self.metrics.histogram("time_to_charge").observe(
                    completes - record.request.submitted_at
                )
            self.clock.advance(max(completes, self.clock.now))

    # ------------------------------------------------------------------ #
    # introspection

    def _device_in_service(self, device_id: str) -> bool:
        for rid in self._queue:
            if self.requests[rid].request.device.device_id == device_id:
                return True
        for rid in self._evacuating:
            if self.requests[rid].request.device.device_id == device_id:
                return True
        return any(
            self.requests[rid].request.device.device_id == device_id
            for rid in self._rid_of_index.values()
        )

    def _update_gauges(self) -> None:
        self.metrics.gauge("queue_depth").set(len(self._queue))
        self.metrics.gauge("active_devices").set(len(self._rid_of_index))
        self.metrics.gauge("live_coalitions").set(self.planner.structure.n_coalitions)
        self.metrics.gauge("charging_sessions").set(len(self._completions))
        self.metrics.gauge("evacuating").set(len(self._evacuating))
        self.metrics.gauge("chargers_available").set(
            len(self.planner.available_chargers())
        )
        self.metrics.gauge("clock").set(self.clock.now)

    def request_state(self, request_id: str) -> str:
        """Current lifecycle state of *request_id*."""
        return self.requests[request_id].state

    def counts(self) -> Dict[str, int]:
        """Requests per lifecycle state (from the records — ground truth).

        At any instant each request is in exactly one state, so
        ``submitted total == sum of every bucket`` — the conservation law
        the property tests check against the metrics counters.
        """
        buckets = {
            RequestState.ADMITTED: 0,
            RequestState.GROUPED: 0,
            RequestState.EVACUATING: 0,
            RequestState.CHARGING: 0,
            RequestState.DONE: 0,
            RequestState.REJECTED: 0,
            RequestState.EXPIRED: 0,
            RequestState.CANCELLED: 0,
        }
        for record in self.requests.values():
            buckets[record.state] += 1
        return buckets

    def final_schedule(self) -> List[Dict[str, Any]]:
        """Departed sessions in departure order — the service's output.

        Plain JSON data; byte-identical across reruns and recovery for a
        fixed input stream.
        """
        return [dict(session) for session in self._sessions]

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-dict snapshot of every metric."""
        return self.metrics.snapshot()

    def observability_snapshot(self) -> Dict[str, Any]:
        """Every metric *including* the operational (fault-history) ones.

        For human-facing reports only — two byte-identical runs can differ
        here (one crashed and recovered, the other did not).
        """
        return self.metrics.snapshot(operational=True)

    # ------------------------------------------------------------------ #
    # state snapshots (see docs/RECOVERY.md)

    def state(self) -> Dict[str, Any]:
        """The kernel's exact deterministic state as plain JSON data.

        Everything replay would reconstruct, captured directly —
        including history-accumulated floats like the structure's running
        total cost, which must be restored bit-exactly because switch
        decisions compare against it (JSON round-trips finite floats
        exactly, so storing them is safe).  Operational metrics are
        excluded; they describe fault history, not kernel state.  Only
        meaningful at a quiescent point (between input events).
        """
        st = self.planner.structure
        inst = self.planner.instance
        return {
            "open": self._open_payload(),
            "clock": self.clock.now,
            "epoch_index": self._epoch_index,
            "session_seq": self._session_seq,
            "avail_dirty": self._avail_dirty,
            "queue": list(self._queue),
            "evacuating": list(self._evacuating),
            "completions": [list(pair) for pair in sorted(self._completions)],
            "sessions": [dict(s) for s in self._sessions],
            "opened_at": [[cid, t] for cid, t in sorted(self._opened_at.items())],
            "rid_of_index": [
                [i, rid] for i, rid in sorted(self._rid_of_index.items())
            ],
            "fault_keys": sorted(list(key) for key in self._fault_keys),
            "requests": [
                {
                    "request": record.request.to_dict(),
                    "state": record.state,
                    "quote": record.quote,
                    "quote_charger": record.quote_charger,
                    "reason": record.reason,
                    "device_index": record.device_index,
                    "grouped_at": record.grouped_at,
                    "departed_at": record.departed_at,
                    "completed_at": record.completed_at,
                    "session_seq": record.session_seq,
                    "realized_cost": record.realized_cost,
                }
                for record in self.requests.values()
            ],
            "planner": {
                "devices": [
                    {
                        "id": d.device_id,
                        "x": float(d.position.x),
                        "y": float(d.position.y),
                        "demand": float(d.demand),
                        "moving_rate": float(d.moving_rate),
                        "speed": float(d.speed),
                    }
                    for d in inst.devices
                ],
                "up": list(inst._up),
                "ceiling": [
                    [i, c] for i, c in sorted(self.planner.ceiling.items())
                ],
                "ops": dict(self.planner.ops),
                "coalitions": [
                    [cid, st._coalitions[cid].charger,
                     sorted(st._coalitions[cid].members)]
                    for cid in sorted(st._coalitions)
                ],
                "next_cid": st._next_cid,
                "total_cost": st._total_cost,
                "version": st._version,
            },
            "metrics": self.metrics.state(),
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        """Overwrite this (freshly constructed) kernel from a :meth:`state`.

        Derived structures — matrix rows, coalition aggregates, Zobrist
        hashes — are *recomputed* through the same deterministic paths the
        live run used (``add_device``, ``_create``); only irreducible
        history is copied verbatim, with the structure's accumulated
        ``_total_cost`` overwritten last because ``+=``/``-=`` history
        makes it bit-different from a fresh recomputation.
        """
        planner_state = state["planner"]
        inst = self.planner.instance
        st = self.planner.structure
        for dev in planner_state["devices"]:
            index = inst.add_device(
                Device(
                    device_id=dev["id"],
                    position=Point(float(dev["x"]), float(dev["y"])),
                    demand=float(dev["demand"]),
                    moving_rate=float(dev["moving_rate"]),
                    speed=float(dev["speed"]),
                )
            )
            st.register_device(index)
        for j, up in enumerate(planner_state["up"]):
            inst.set_available(j, bool(up))
        for cid, charger, members in planner_state["coalitions"]:
            st._next_cid = int(cid)
            st._create(int(charger), set(int(i) for i in members))
        st._next_cid = int(planner_state["next_cid"])
        st._total_cost = float(planner_state["total_cost"])
        st._version = int(planner_state["version"])
        self.planner.ceiling = {
            int(i): float(c) for i, c in planner_state["ceiling"]
        }
        self.planner.ops = {k: int(v) for k, v in planner_state["ops"].items()}
        self.clock = ServiceClock(float(state["clock"]))
        self._epoch_index = int(state["epoch_index"])
        self._session_seq = int(state["session_seq"])
        self._avail_dirty = bool(state["avail_dirty"])
        self._queue = [str(rid) for rid in state["queue"]]
        self._evacuating = [str(rid) for rid in state["evacuating"]]
        self._completions = [
            (float(completes), int(seq)) for completes, seq in state["completions"]
        ]
        heapq.heapify(self._completions)
        self._sessions = [dict(s) for s in state["sessions"]]
        self._opened_at = {int(cid): float(t) for cid, t in state["opened_at"]}
        self._rid_of_index = {int(i): str(rid) for i, rid in state["rid_of_index"]}
        self._fault_keys = {
            (str(event), str(target), float(t))
            for event, target, t in state["fault_keys"]
        }
        self.requests = {}
        for entry in state["requests"]:
            record = RequestRecord(ChargingRequest.from_dict(entry["request"]))
            record.state = entry["state"]
            record.quote = entry["quote"]
            record.quote_charger = entry["quote_charger"]
            record.reason = entry["reason"]
            record.device_index = entry["device_index"]
            record.grouped_at = entry["grouped_at"]
            record.departed_at = entry["departed_at"]
            record.completed_at = entry["completed_at"]
            record.session_seq = entry["session_seq"]
            record.realized_cost = entry["realized_cost"]
            self.requests[record.request.request_id] = record
        self.metrics.restore(state["metrics"])
        self._update_gauges()

    # ccs-lint: ignore[CCS011] -- deliberately unjournaled: a snapshot is an
    # *observation* of kernel state, not an input; `_last_snapshot_seq` only
    # paces the next observation, and recovery rebuilds deterministic state
    # without it (byte-identity is asserted by the recovery tests).
    def write_snapshot(self) -> Path:
        """Persist the current state, prune old snapshots, maybe compact.

        Pins the snapshot to the journal's next append seq (``state ==
        replay of records < seq``), keeps the newest :attr:`snapshot_keep`
        snapshot files, and — when :attr:`compact` — truncates the journal
        prefix the *oldest surviving* snapshot covers, so every retained
        snapshot still has its replay suffix on disk.  Compaction needs at
        least *two* surviving snapshots: the truncated journal's base is
        only replayable from a snapshot, so there must be a second one to
        fall back to when the newest turns out corrupt — one bad snapshot
        must never cost the whole journal (with ``snapshot_keep=1`` the
        journal is simply never compacted).  Pure observability from the
        determinism contract's point of view: nothing here is journaled,
        and the deterministic state is untouched.
        """
        if self.journal is None:
            raise ServiceError("snapshots need a journal to pin against")
        seq = self.journal.seq
        path = write_snapshot(self.journal.path, seq, self.state())
        self._last_snapshot_seq = seq
        self.metrics.counter("snapshots_written", operational=True).inc()
        prune_snapshots(self.journal.path, self.snapshot_keep)
        if self.compact:
            remaining = list_snapshots(self.journal.path)
            if len(remaining) >= 2:
                oldest = min(s for s, _p in remaining)
                dropped = self.journal.truncate_prefix(oldest)
                if dropped:
                    self.metrics.counter(
                        "journal.compacted_records", operational=True
                    ).inc(dropped)
        return path

    def _maybe_snapshot(self) -> None:
        """Auto-snapshot at a quiescent point when the cadence is due."""
        if (
            self.snapshot_every is None
            or self.journal is None
            or self._snapshots_paused
        ):
            return
        if self.journal.seq - self._last_snapshot_seq >= self.snapshot_every:
            self.write_snapshot()

    # ------------------------------------------------------------------ #
    # durability

    @classmethod
    def recover(
        cls,
        journal_path: Union[str, Path],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        config: Optional[ServiceConfig] = None,
        journal_sync: bool = True,
        journal_factory: Optional[Any] = None,
        snapshot_every: Optional[int] = None,
        snapshot_keep: int = 2,
        compact: bool = True,
    ) -> "ChargingService":
        """Rebuild a killed daemon from its journal, exactly.

        Reads the longest valid record prefix (a torn tail from ``kill
        -9`` is dropped and surfaced via the operational
        ``journal.recovered_bytes_dropped`` counter), then takes the
        cheapest sound path back:

        1. **Snapshot fast path** — the newest valid snapshot whose seq
           falls inside the surviving prefix restores the kernel state
           directly; the prefix records below it are carried into the
           replay journal verbatim and only the *suffix* inputs are
           replayed.  Recovery cost is O(events since that snapshot).
        2. **Fallback chain** — a snapshot that fails its checksum,
           schema, or range check is skipped (never trusted, never
           repaired) and the next older one is tried.
        3. **Full replay** — with no usable snapshot, every input record
           replays through a fresh kernel, exactly as before snapshots
           existed.  If the journal was *compacted* (its first record's
           seq is past 0) this rung is gone, and a typed
           :class:`~repro.errors.RecoveryError` says so.

        Whichever path runs, the journal is atomically rewritten to the
        canonical replayed form and the returned service is
        byte-equivalent (journal, metrics snapshot, session log) to one
        that processed the same inputs without interruption.

        Construction arguments are code, not data: pass the same chargers
        and configuration the dead daemon ran with.  The journal's
        ``open`` header (or the snapshot's embedded copy) is checked
        against them and a :class:`~repro.errors.ServiceError` is raised
        on mismatch.

        ``journal_factory`` (``path -> Journal``), when given, builds the
        replay journal at the temp path — the hook the fault harness uses
        to keep injected write failures armed across a recovery (record
        numbering is stable because recovery converges byte-identical).
        """
        read = Journal.read(journal_path)
        records = read.records
        end = read.base_seq + len(records)
        tmp_path = str(journal_path) + ".recover"

        def _make_journal() -> Journal:
            if journal_factory is not None:
                journal: Journal = journal_factory(tmp_path)
                return journal
            return Journal(tmp_path, sync=journal_sync)

        chosen: Optional[Tuple[int, Dict[str, Any]]] = None
        fallbacks = 0
        for sseq, spath in list_snapshots(journal_path):
            if sseq > end or sseq < read.base_seq:
                # Ahead of the surviving prefix (its suffix records are
                # lost for good) or behind the compaction point (its
                # suffix is incomplete): unusable regardless of integrity.
                continue
            try:
                _seq, sstate = load_snapshot(spath)
            except SnapshotError:
                fallbacks += 1
                continue
            chosen = (sseq, sstate)
            break
        if chosen is None and read.base_seq > 0:
            raise RecoveryError(
                f"journal {journal_path} was compacted to seq "
                f"{read.base_seq} and no usable snapshot covers the gap; "
                "full replay is impossible"
            )

        if chosen is not None:
            sseq, sstate = chosen
            service = cls(
                chargers,
                mobility=mobility,
                scheme=scheme,
                config=config,
                snapshot_every=snapshot_every,
                snapshot_keep=snapshot_keep,
                compact=compact,
            )
            ours = service._open_payload()
            if sstate.get("open") != ours:
                raise ServiceError(
                    "snapshot was written by a differently configured "
                    f"service: {sstate.get('open')} != {ours}"
                )
            service._snapshots_paused = True
            service.journal = _make_journal()
            service.journal.seed([r for r in records if r["seq"] < sseq])
            # The seeded prefix can be empty (snapshot at the compaction
            # point); the next append must continue at the snapshot seq
            # either way.
            service.journal.seq = sseq
            service._restore_state(sstate)
            replay = [
                r for r in Journal.input_records(records) if r["seq"] >= sseq
            ]
            service.metrics.counter(
                "recovery.snapshot_used", operational=True
            ).inc()
        else:
            service = cls(
                chargers,
                mobility=mobility,
                scheme=scheme,
                config=config,
                journal=_make_journal(),
                snapshot_every=snapshot_every,
                snapshot_keep=snapshot_keep,
                compact=compact,
            )
            service._snapshots_paused = True
            if records and records[0]["event"] == "open":
                ours = service._open_payload()
                if records[0]["data"] != ours:
                    service.journal.close()
                    raise ServiceError(
                        "journal was written by a differently configured "
                        f"service: {records[0]['data']} != {ours}"
                    )
            replay = Journal.input_records(records)
        for record in replay:
            event = record["event"]
            if event == "submit":
                service.submit(ChargingRequest.from_dict(record["data"]))
            elif event == "advance":
                service.advance(record["t"])
            elif event == "charger_down":
                data = record["data"]
                service.fail_charger(data["charger"], at=data.get("at", record["t"]))
            elif event == "charger_up":
                data = record["data"]
                service.restore_charger(data["charger"], at=data.get("at", record["t"]))
            elif event == "cancel":
                data = record["data"]
                service.cancel(
                    data["id"],
                    at=data.get("at", record["t"]),
                    reason=data.get("reason", "cancelled"),
                )
            else:
                service.drain()
        service.journal.commit_to(journal_path)
        service._snapshots_paused = False
        service._last_snapshot_seq = chosen[0] if chosen is not None else 0
        if read.dropped_bytes:
            service.metrics.counter(
                "journal.recovered_bytes_dropped", operational=True
            ).inc(read.dropped_bytes)
        if fallbacks:
            service.metrics.counter(
                "recovery.snapshot_fallbacks", operational=True
            ).inc(fallbacks)
        service.metrics.counter(
            "recovery.records_replayed", operational=True
        ).inc(len(replay))
        return service
