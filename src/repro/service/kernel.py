"""The charging-service daemon kernel.

:class:`ChargingService` is a deterministic, event-driven state machine:
customers :meth:`submit` requests, the admission controller answers
immediately, and an epoch-grid event loop folds admitted batches into the
live coalition plan (via the PR-1 incremental engine — never a batch
re-solve), departs sessions once their commitment window elapses, expires
requests that miss their deadlines, and completes sessions when the pads
finish transmitting.

Time is *logical* (:class:`~repro.service.clock.ServiceClock`): the kernel
touches no wall clock and no ambient randomness, so a fixed input stream
always produces byte-identical journals, metrics snapshots, and session
logs — the property the crash-recovery tests assert literally.

Epoch timeline (``epoch`` = fold period, ``window`` = commitment window)::

    t=0        e          2e         3e
    |----------|----------|----------|---->
       submit──┤ fold      │ depart (opened + window elapsed)
               └ admitted requests enter the live plan, improve, repair

Durability: every transition is appended to a checksummed JSONL journal.
``submit``/``drain`` records are the *inputs*; :meth:`recover` replays
them through a fresh kernel, re-deriving everything else, and atomically
rewrites the journal to the canonical form — after which re-feeding the
original stream (idempotent per request id) converges on the exact bytes
an uninterrupted run would have produced.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core.costsharing import CostSharingScheme, EgalitarianSharing
from ..errors import ConfigurationError, ServiceError
from ..mobility import MobilityModel
from ..wpt import Charger
from .admission import AdmissionController
from .clock import ServiceClock
from .journal import JOURNAL_SCHEMA, Journal
from .metrics import Metrics
from .plan import IncrementalPlanner
from .request import ChargingRequest, RequestRecord, RequestState

__all__ = ["ServiceConfig", "ChargingService"]

#: Fixed histogram buckets (seconds / ratios / sizes) — part of the
#: snapshot contract, so recovery comparisons bin identically.
_LATENCY_BUCKETS = (30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0)
_CHARGE_BUCKETS = (300.0, 600.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0)
_RATIO_BUCKETS = (0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)
_SIZE_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)

_TIME_EPS = 1e-9


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the daemon (all logical-time seconds).

    Parameters
    ----------
    epoch:
        Replanning period: admitted requests buffered since the last grid
        point ``k·epoch`` are folded into the plan at the next one.
    window:
        Commitment window: a coalition departs (freezes and starts
        charging) at the first grid point at least *window* after it was
        opened.
    queue_limit:
        Bound on the admitted-but-not-yet-planned queue; submissions
        beyond it are rejected (``queue-full``), never silently buffered.
    max_active:
        Optional cap on devices concurrently queued or in the live plan
        (``capacity`` rejections); ``None`` = unbounded.
    improvement_sweeps / repair_rounds / tol:
        Replanner bounds, passed to
        :class:`~repro.service.plan.IncrementalPlanner`.
    """

    epoch: float = 60.0
    window: float = 120.0
    queue_limit: int = 256
    max_active: Optional[int] = None
    improvement_sweeps: int = 2
    repair_rounds: int = 3
    tol: float = 1e-9

    def __post_init__(self) -> None:
        if self.epoch <= 0:
            raise ConfigurationError(f"epoch must be positive, got {self.epoch}")
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.max_active is not None and self.max_active < 1:
            raise ConfigurationError(
                f"max_active must be >= 1 or None, got {self.max_active}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form, pinned into the journal's ``open`` record."""
        return {
            "epoch": float(self.epoch),
            "window": float(self.window),
            "queue_limit": int(self.queue_limit),
            "max_active": None if self.max_active is None else int(self.max_active),
            "improvement_sweeps": int(self.improvement_sweeps),
            "repair_rounds": int(self.repair_rounds),
            "tol": float(self.tol),
        }


class ChargingService:
    """A long-lived charging-as-a-service daemon (see module docstring)."""

    def __init__(
        self,
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        config: Optional[ServiceConfig] = None,
        journal_path: Optional[Union[str, Path]] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.scheme: CostSharingScheme = (
            scheme if scheme is not None else EgalitarianSharing()
        )
        self.planner = IncrementalPlanner(
            chargers,
            mobility=mobility,
            scheme=self.scheme,
            tol=self.config.tol,
            improvement_sweeps=self.config.improvement_sweeps,
            repair_rounds=self.config.repair_rounds,
        )
        self.chargers = self.planner.instance.chargers
        self.admission = AdmissionController(
            epoch=self.config.epoch,
            window=self.config.window,
            queue_limit=self.config.queue_limit,
            max_active=self.config.max_active,
        )
        self.clock = ServiceClock()
        self.metrics = Metrics()
        self.requests: Dict[str, RequestRecord] = {}
        self._queue: List[str] = []
        self._rid_of_index: Dict[int, str] = {}
        self._opened_at: Dict[int, float] = {}
        self._completions: List[tuple] = []
        self._sessions: List[Dict[str, Any]] = []
        self._session_seq = 0
        self._epoch_index = 0  # boundaries processed so far: epoch * index
        self.journal: Optional[Journal] = (
            Journal(journal_path) if journal_path is not None else None
        )
        if self.journal is not None:
            self.journal.append("open", 0.0, self._open_payload())
        # Pre-register every metric so empty snapshots are fully shaped.
        for name in (
            "submitted", "admitted", "rejected", "grouped", "expired",
            "completed", "sessions_departed",
        ):
            self.metrics.counter(name)
        self.metrics.histogram("admission_latency", _LATENCY_BUCKETS)
        self.metrics.histogram("time_to_charge", _CHARGE_BUCKETS)
        self.metrics.histogram("cost_vs_quote", _RATIO_BUCKETS)
        self.metrics.histogram("session_size", _SIZE_BUCKETS)
        self._update_gauges()

    def _open_payload(self) -> Dict[str, Any]:
        return {
            "schema": JOURNAL_SCHEMA,
            "config": self.config.to_dict(),
            "chargers": [c.charger_id for c in self.chargers],
            "scheme": self.scheme.name,
            "mobility": type(self.planner.instance.mobility).__name__,
        }

    def _journal(self, event: str, t: float, data: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(event, t, data)

    # ------------------------------------------------------------------ #
    # input events

    def submit(self, request: ChargingRequest) -> str:
        """Process one submission; returns the request's resulting state.

        Idempotent per ``request_id``: resubmitting a known id is a no-op
        returning the current state (this is what makes re-feeding an
        event stream after crash recovery safe).
        """
        known = self.requests.get(request.request_id)
        if known is not None:
            return known.state
        self._advance_to(request.submitted_at)
        now = self.clock.now
        self._journal("submit", request.submitted_at, request.to_dict())
        self.metrics.counter("submitted").inc()

        record = RequestRecord(request)
        self.requests[request.request_id] = record
        quote, quote_charger = self.planner.quote(request.device)
        record.quote, record.quote_charger = quote, quote_charger
        duplicate = self._device_in_service(request.device.device_id)
        decision = self.admission.decide(
            request,
            now=now,
            queue_depth=len(self._queue),
            active_devices=len(self._rid_of_index) + len(self._queue),
            quote=quote,
            duplicate=duplicate,
        )
        if not decision:
            record.state = RequestState.REJECTED
            record.reason = decision.reason
            self._journal(
                "reject", now, {"id": request.request_id, "reason": decision.reason}
            )
            self.metrics.counter("rejected").inc()
            self.metrics.counter(f"rejected.{decision.reason}").inc()
        else:
            record.state = RequestState.ADMITTED
            self._queue.append(request.request_id)
            self._journal(
                "admit",
                now,
                {
                    "id": request.request_id,
                    "quote": float(quote),
                    "charger": self.chargers[quote_charger].charger_id,
                },
            )
            self.metrics.counter("admitted").inc()
        self._update_gauges()
        return record.state

    def advance(self, to: float) -> None:
        """Drive the event loop forward to logical time *to*.

        Time movement is an *input*: the target is journaled (like
        ``submit``/``drain``) so recovery can replay the epoch boundaries
        it triggers.  Targets at or before the current clock are complete
        no-ops — not even journaled — which keeps re-feeding a stream
        after recovery idempotent.
        """
        t = float(to)
        if t <= self.clock.now + _TIME_EPS:
            return
        self._journal("advance", t, {})
        self._advance_to(t)

    def _advance_to(self, to: float) -> None:
        """Advance without journaling (``submit``/``drain`` carry their own
        time; replaying them re-derives the same boundary processing).

        Processes every epoch boundary up to *to* (completions →
        departures → expirations → fold, in that order at each boundary)
        and any session completions due.  Earlier targets are no-ops.
        """
        t = float(to)
        while (self._epoch_index + 1) * self.config.epoch <= t + _TIME_EPS:
            boundary = (self._epoch_index + 1) * self.config.epoch
            self._run_epoch(boundary)
            self._epoch_index += 1
        self._process_completions(t)
        self.clock.advance(t)
        self._update_gauges()

    def drain(self) -> None:
        """Flush the service: fold the queue, depart everything, complete.

        An input event (journaled) marking end-of-stream: advances to the
        next epoch boundary so queued requests get planned, force-departs
        every live coalition regardless of window age, and runs all
        resulting sessions to completion.  After ``drain`` every request
        is in a terminal state.

        Draining an already-drained service is a complete no-op (not even
        journaled) — the drain analogue of idempotent ``submit``, so
        re-feeding a recovered daemon its original input stream converges
        on the identical journal.
        """
        if not (self._queue or self._rid_of_index or self._completions):
            return
        t0 = self.clock.now
        self._journal("drain", t0, {})
        boundary = (self._epoch_index + 1) * self.config.epoch
        self._advance_to(boundary)
        for cid in self.planner.live_cids():
            self._depart(cid, boundary)
        while self._completions:
            self._process_completions(self._completions[0][0])
        self.clock.advance(max(t0, boundary))
        self._update_gauges()

    # ------------------------------------------------------------------ #
    # the epoch machine

    def _run_epoch(self, boundary: float) -> None:
        self._process_completions(boundary)
        self._process_departures(boundary)
        self._process_expirations(boundary)
        self._fold(boundary)
        self.clock.advance(boundary)

    def _process_departures(self, boundary: float) -> None:
        due = sorted(
            cid
            for cid, opened in self._opened_at.items()
            if boundary - opened >= self.config.window - _TIME_EPS
        )
        for cid in due:
            self._depart(cid, boundary)

    def _depart(self, cid: int, boundary: float) -> None:
        opened = self._opened_at.pop(cid, boundary)
        info = self.planner.retire(cid)
        seq = self._session_seq
        self._session_seq += 1
        charger = self.chargers[info["charger"]]
        completes = boundary + charger.session_duration(info["demands"])
        devices = self.planner.instance.devices
        member_ids = [devices[i].device_id for i in info["members"]]
        request_ids, costs = [], {}
        for i, device_id in zip(info["members"], member_ids):
            rid = self._rid_of_index.pop(i)
            request_ids.append(rid)
            record = self.requests[rid]
            realized = info["shares"][i] + info["moving"][i]
            record.state = RequestState.CHARGING
            record.departed_at = boundary
            record.session_seq = seq
            record.realized_cost = realized
            costs[device_id] = float(realized)
            if record.quote:
                self.metrics.histogram("cost_vs_quote").observe(realized / record.quote)
        session = {
            "seq": seq,
            "charger": charger.charger_id,
            "members": member_ids,
            "requests": request_ids,
            "price": float(info["price"]),
            "costs": costs,
            "opened": float(opened),
            "departed": float(boundary),
            "completes": float(completes),
        }
        self._sessions.append(session)
        heapq.heappush(self._completions, (completes, seq))
        self._journal("depart", boundary, session)
        self.metrics.counter("sessions_departed").inc()
        self.metrics.histogram("session_size").observe(len(member_ids))

    def _process_expirations(self, boundary: float) -> None:
        still_queued: List[str] = []
        for rid in self._queue:
            record = self.requests[rid]
            deadline = record.request.deadline
            if deadline is not None and deadline <= boundary + _TIME_EPS:
                self._expire(record, boundary, where="queue")
            else:
                still_queued.append(rid)
        self._queue = still_queued
        # Planned requests are checked *forward*: departures for this
        # boundary have already run, so the next chance to depart is
        # ``boundary + epoch`` — a member whose deadline falls before that
        # is doomed and expires now (a deadline exactly on a boundary can
        # still be met by departing at that boundary, which happens first).
        horizon = boundary + self.config.epoch - _TIME_EPS
        for index in self.planner.active_indices():
            rid = self._rid_of_index[index]
            record = self.requests[rid]
            deadline = record.request.deadline
            if deadline is not None and deadline < horizon:
                self.planner.remove(index)
                del self._rid_of_index[index]
                self._expire(record, boundary, where="plan")

    def _expire(self, record: RequestRecord, boundary: float, where: str) -> None:
        record.state = RequestState.EXPIRED
        record.reason = where
        self._journal(
            "expire", boundary, {"id": record.request.request_id, "where": where}
        )
        self.metrics.counter("expired").inc()
        self.metrics.counter(f"expired.{where}").inc()

    def _fold(self, boundary: float) -> None:
        if self._queue:
            batch, self._queue = self._queue, []
            indices: List[int] = []
            for rid in batch:
                record = self.requests[rid]
                index = self.planner.add(record.request.device, ceiling=record.quote)
                record.device_index = index
                self._rid_of_index[index] = rid
                indices.append(index)
            self.planner.fold(indices)
            for rid in batch:
                record = self.requests[rid]
                coalition = self.planner.structure.coalition_of(record.device_index)
                record.state = RequestState.GROUPED
                record.grouped_at = boundary
                self._journal(
                    "plan",
                    boundary,
                    {
                        "id": rid,
                        "charger": self.chargers[coalition.charger].charger_id,
                    },
                )
                self.metrics.counter("grouped").inc()
                self.metrics.histogram("admission_latency").observe(
                    boundary - record.request.submitted_at
                )
        # Coalitions born this epoch (fresh folds, or singletons split off
        # by improvement/repair moves) start their commitment window now.
        live = set(self.planner.live_cids())
        for cid in list(self._opened_at):
            if cid not in live:
                del self._opened_at[cid]
        for cid in sorted(live):
            if cid not in self._opened_at:
                self._opened_at[cid] = boundary

    def _process_completions(self, t: float) -> None:
        while self._completions and self._completions[0][0] <= t + _TIME_EPS:
            completes, seq = heapq.heappop(self._completions)
            session = self._sessions[seq]
            self._journal("complete", completes, {"session": seq})
            for rid in session["requests"]:
                record = self.requests[rid]
                record.state = RequestState.DONE
                record.completed_at = completes
                self.metrics.counter("completed").inc()
                self.metrics.histogram("time_to_charge").observe(
                    completes - record.request.submitted_at
                )
            self.clock.advance(completes)

    # ------------------------------------------------------------------ #
    # introspection

    def _device_in_service(self, device_id: str) -> bool:
        queued = any(
            self.requests[rid].request.device.device_id == device_id
            for rid in self._queue
        )
        if queued:
            return True
        return any(
            self.requests[rid].request.device.device_id == device_id
            for rid in self._rid_of_index.values()
        )

    def _update_gauges(self) -> None:
        self.metrics.gauge("queue_depth").set(len(self._queue))
        self.metrics.gauge("active_devices").set(len(self._rid_of_index))
        self.metrics.gauge("live_coalitions").set(self.planner.structure.n_coalitions)
        self.metrics.gauge("charging_sessions").set(len(self._completions))
        self.metrics.gauge("clock").set(self.clock.now)

    def request_state(self, request_id: str) -> str:
        """Current lifecycle state of *request_id*."""
        return self.requests[request_id].state

    def counts(self) -> Dict[str, int]:
        """Requests per lifecycle state (from the records — ground truth).

        At any instant each request is in exactly one state, so
        ``submitted total == sum of every bucket`` — the conservation law
        the property tests check against the metrics counters.
        """
        buckets = {
            RequestState.ADMITTED: 0,
            RequestState.GROUPED: 0,
            RequestState.CHARGING: 0,
            RequestState.DONE: 0,
            RequestState.REJECTED: 0,
            RequestState.EXPIRED: 0,
        }
        for record in self.requests.values():
            buckets[record.state] += 1
        return buckets

    def final_schedule(self) -> List[Dict[str, Any]]:
        """Departed sessions in departure order — the service's output.

        Plain JSON data; byte-identical across reruns and recovery for a
        fixed input stream.
        """
        return [dict(session) for session in self._sessions]

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-dict snapshot of every metric."""
        return self.metrics.snapshot()

    # ------------------------------------------------------------------ #
    # durability

    @classmethod
    def recover(
        cls,
        journal_path: Union[str, Path],
        chargers: Sequence[Charger],
        mobility: Optional[MobilityModel] = None,
        scheme: Optional[CostSharingScheme] = None,
        config: Optional[ServiceConfig] = None,
    ) -> "ChargingService":
        """Rebuild a killed daemon from its journal, exactly.

        Reads the longest valid record prefix (a torn tail from ``kill
        -9`` is dropped), replays the *input* records (``submit`` /
        ``drain``) through a fresh kernel — every other transition is
        re-derived deterministically — and atomically rewrites the journal
        file to the canonical replayed form.  The returned service is
        byte-equivalent (journal, metrics snapshot, session log) to one
        that processed the same inputs without interruption, and keeps
        appending to the same journal path.

        Construction arguments are code, not data: pass the same chargers
        and configuration the dead daemon ran with.  The journal's ``open``
        header is checked against them and a
        :class:`~repro.errors.ServiceError` is raised on mismatch.
        """
        records, _torn = Journal.read_records(journal_path)
        tmp_path = str(journal_path) + ".recover"
        service = cls(
            chargers,
            mobility=mobility,
            scheme=scheme,
            config=config,
            journal_path=tmp_path,
        )
        if records and records[0]["event"] == "open":
            ours = service._open_payload()
            if records[0]["data"] != ours:
                service.journal.close()
                raise ServiceError(
                    "journal was written by a differently configured service: "
                    f"{records[0]['data']} != {ours}"
                )
        for record in Journal.input_records(records):
            if record["event"] == "submit":
                service.submit(ChargingRequest.from_dict(record["data"]))
            elif record["event"] == "advance":
                service.advance(record["t"])
            else:
                service.drain()
        service.journal.commit_to(journal_path)
        return service
